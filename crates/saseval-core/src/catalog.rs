//! Authored catalogs for the paper's two evaluation use cases (§IV).
//!
//! The paper publishes only aggregate numbers and two complete attack
//! descriptions (Tables VI and VII); the full catalogs live in the
//! non-public SECREDAS deliverable D3-10. These modules reconstruct
//! catalogs with **exactly the published structure**:
//!
//! * **Use Case I — Autonomous Driving** ([`use_case_1`]): 3 item
//!   functions, 29 HARA ratings distributed `N/A:5, No ASIL:5, A:7, B:3,
//!   C:7, D:2`, six safety goals SG01(C) SG02(C) SG03(D) SG04(C) SG05(B)
//!   SG06(A), and 23 attack descriptions including AD20 (Table VI,
//!   verbatim) and the replay-of-warnings attack against SG05 named in the
//!   §IV-A prose.
//! * **Use Case II — Keyless Car Opener** ([`use_case_2`]): 2 item
//!   functions, 20 ratings distributed `N/A:7, No ASIL:5, A:2, B:4, C:1,
//!   D:1`, four safety goals SG01(D) SG02(B) SG03(A) SG04(A), and 27
//!   safety attack descriptions plus 2 privacy attacks, including AD08
//!   (Table VII, verbatim), the CAN-flooding-via-BLE attack (SG03) and the
//!   replay-of-opening-command attack named in the §IV-B prose.
//!
//! The HARA excerpt of §III-B (function Rat01, failure mode "No", E3/S3/C3
//! → ASIL C) appears verbatim as rating `Rat01` of Use Case I.

use saseval_hara::{Hara, HazardRating, ItemFunction, SafetyGoal};
use saseval_threat::builtin::{SC_CONSTRUCTION, SC_KEYLESS};
use saseval_types::{
    AttackType, Controllability, Exposure, FailureMode, Ftti, ScenarioId, Severity, ThreatType,
};

use crate::description::{AttackDescription, Justification};

/// A complete use-case dataset: HARA, driving scenarios and the authored
/// attack descriptions with optional justifications.
#[derive(Debug, Clone)]
pub struct UseCaseCatalog {
    /// Human-readable use-case name.
    pub name: String,
    /// The hazard analysis (functions, ratings, safety goals).
    pub hara: Hara,
    /// The driving scenarios the inductive coverage check ranges over.
    pub scenarios: Vec<ScenarioId>,
    /// The authored attack descriptions.
    pub attacks: Vec<AttackDescription>,
    /// Justifications for deliberately untested threats.
    pub justifications: Vec<Justification>,
}

impl UseCaseCatalog {
    /// The safety-relevant attack descriptions (excludes privacy-only).
    pub fn safety_attacks(&self) -> impl Iterator<Item = &AttackDescription> {
        self.attacks.iter().filter(|a| !a.is_privacy_relevant())
    }

    /// The privacy-relevant attack descriptions.
    pub fn privacy_attacks(&self) -> impl Iterator<Item = &AttackDescription> {
        self.attacks.iter().filter(|a| a.is_privacy_relevant())
    }
}

struct RatingSpec {
    id: &'static str,
    function: &'static str,
    failure_mode: FailureMode,
    situation: &'static str,
    hazard: &'static str,
    sec: Option<(Severity, Exposure, Controllability)>,
    na_rationale: &'static str,
}

#[allow(clippy::too_many_arguments)] // one parameter per HARA worksheet column
fn assessed(
    id: &'static str,
    function: &'static str,
    failure_mode: FailureMode,
    situation: &'static str,
    hazard: &'static str,
    s: Severity,
    e: Exposure,
    c: Controllability,
) -> RatingSpec {
    RatingSpec {
        id,
        function,
        failure_mode,
        situation,
        hazard,
        sec: Some((s, e, c)),
        na_rationale: "",
    }
}

fn not_applicable(
    id: &'static str,
    function: &'static str,
    failure_mode: FailureMode,
    rationale: &'static str,
) -> RatingSpec {
    RatingSpec {
        id,
        function,
        failure_mode,
        situation: "",
        hazard: "",
        sec: None,
        na_rationale: rationale,
    }
}

fn install_ratings(hara: &mut Hara, specs: &[RatingSpec]) {
    for spec in specs {
        let builder = HazardRating::builder(spec.id, spec.function, spec.failure_mode);
        let rating = match spec.sec {
            Some((s, e, c)) => builder
                .situation(spec.situation)
                .hazard(spec.hazard)
                .rate(s, e, c)
                .build()
                .expect("catalog rating"),
            None => builder.not_applicable(spec.na_rationale).build().expect("catalog rating"),
        };
        hara.add_rating(rating).expect("catalog rating insert");
    }
}

/// Builds the Use Case I ("Autonomous Driving", §IV-A) catalog.
///
/// # Example
///
/// ```
/// use saseval_core::catalog::use_case_1;
///
/// let uc1 = use_case_1();
/// let dist = uc1.hara.distribution();
/// assert_eq!(
///     dist.to_string(),
///     "29 ratings: 5 N/A, 5 No ASIL, 7 ASIL A, 3 ASIL B, 7 ASIL C, 2 ASIL D"
/// );
/// assert_eq!(uc1.attacks.len(), 23);
/// ```
pub fn use_case_1() -> UseCaseCatalog {
    use Controllability as C;
    use Exposure as E;
    use FailureMode as FM;
    use Severity as S;

    let mut hara = Hara::new("Use Case I - Autonomous Driving (construction site approach)");
    for (id, name) in [
        ("F1", "Hazardous location notifications (Road works warning)"),
        ("F2", "Signage applications (In-vehicle speed limits)"),
        ("F3", "Warning of other traffic participants about hazardous vehicle state"),
    ] {
        hara.add_function(ItemFunction::new(id, name).expect("function")).expect("function insert");
    }

    let specs = [
        // --- F1: road works warning (10 ratings). ---
        // The §III-B HARA excerpt, verbatim.
        assessed(
            "Rat01",
            "F1",
            FM::No,
            "Crash into road works (see Statistics Road Works)",
            "The driver can not be warned and the automated control is not returned",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat02",
            "F1",
            FM::No,
            "Approaching urban road works at low speed",
            "Driver not warned; low-speed contact with site demarcation",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        assessed(
            "Rat03",
            "F1",
            FM::Unintended,
            "Free motorway, no road works present",
            "Unjustified notification triggers an abrupt control hand-over",
            S::S2,
            E::E3,
            C::C3, // ASIL B
        ),
        assessed(
            "Rat04",
            "F1",
            FM::TooEarly,
            "Road works far ahead on route",
            "Very early warning; driver takes over with ample margin",
            S::S1,
            E::E2,
            C::C1, // QM
        ),
        assessed(
            "Rat05",
            "F1",
            FM::TooLate,
            "Short-notice mobile road works",
            "Warning arrives with insufficient take-over margin",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat06",
            "F1",
            FM::TooLate,
            "Following a convoy that obstructs sight of the site entry",
            "Warning too late while the site entry is occluded",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat07",
            "F1",
            FM::Less,
            "Multiple consecutive road-works sites",
            "Only part of the sites is notified; control not returned at the unnotified one",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        assessed(
            "Rat08",
            "F1",
            FM::More,
            "Dense signage corridor",
            "Redundant repeated notifications distract the driver",
            S::S1,
            E::E3,
            C::C1, // QM
        ),
        not_applicable(
            "Rat09",
            "F1",
            FM::Inverted,
            "A location notification has no meaningful inverse",
        ),
        assessed(
            "Rat10",
            "F1",
            FM::Intermittent,
            "Notification state flickers near the site",
            "Control switches repeatedly between automation and driver",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        // --- F2: in-vehicle speed limits (10 ratings). ---
        assessed(
            "Rat11",
            "F2",
            FM::No,
            "Motorway variable speed zone",
            "No in-vehicle limit shown; vehicle keeps inappropriate speed",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat12",
            "F2",
            FM::No,
            "School zone with temporary limit",
            "Temporary limit not communicated near the school",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat13",
            "F2",
            FM::Unintended,
            "No actual limit active",
            "Vehicle applies an arbitrary limit unexpectedly and brakes hard",
            S::S3,
            E::E4,
            C::C3, // ASIL D
        ),
        assessed(
            "Rat14",
            "F2",
            FM::TooEarly,
            "Approaching a limit zone",
            "Limit applied slightly before the zone",
            S::S1,
            E::E2,
            C::C1, // QM
        ),
        assessed(
            "Rat15",
            "F2",
            FM::TooLate,
            "Entering a limit zone",
            "Limit applied after zone entry; speeding inside the zone",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "Rat16",
            "F2",
            FM::Less,
            "Displayed limit below the actual limit",
            "Vehicle obstructs traffic at a too-low speed",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        assessed(
            "Rat17",
            "F2",
            FM::More,
            "Displayed limit above the actual limit in a protected zone",
            "Vehicle speeds through road works with workers present",
            S::S3,
            E::E4,
            C::C3, // ASIL D
        ),
        assessed(
            "Rat18",
            "F2",
            FM::More,
            "City 30 zone shown as 50",
            "Moderate overspeed in an urban area",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        not_applicable(
            "Rat19",
            "F2",
            FM::Inverted,
            "Speed limit values have no meaningful inverse",
        ),
        assessed(
            "Rat20",
            "F2",
            FM::Intermittent,
            "Limit flickers between values",
            "Oscillating speed adaptation irritates following traffic",
            S::S2,
            E::E3,
            C::C3, // ASIL B
        ),
        // --- F3: warning other traffic participants (9 ratings). ---
        assessed(
            "Rat21",
            "F3",
            FM::No,
            "Vehicle broken down on the carriageway",
            "Other participants not warned; they rely on direct perception",
            S::S1,
            E::E3,
            C::C1, // QM
        ),
        assessed(
            "Rat22",
            "F3",
            FM::Unintended,
            "Normal driving, no hazardous state",
            "Too many unintended warnings distract surrounding drivers",
            S::S2,
            E::E3,
            C::C3, // ASIL B
        ),
        not_applicable(
            "Rat23",
            "F3",
            FM::TooEarly,
            "An earlier warning of other participants is not hazardous",
        ),
        assessed(
            "Rat24",
            "F3",
            FM::TooLate,
            "Breakdown behind a curve",
            "Warning reaches others late; warning remains supportive only",
            S::S1,
            E::E2,
            C::C1, // QM
        ),
        not_applicable(
            "Rat25",
            "F3",
            FM::Less,
            "The warning broadcast is discrete; no reduced magnitude exists",
        ),
        assessed(
            "Rat26",
            "F3",
            FM::More,
            "Minor vehicle degradation",
            "Excessive warnings cause surrounding traffic to brake needlessly",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        not_applicable("Rat27", "F3", FM::Inverted, "A hazard warning has no meaningful inverse"),
        assessed(
            "Rat28",
            "F3",
            FM::Intermittent,
            "Intermittent fault detection",
            "Flickering warnings cause erratic reactions of other drivers",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        assessed(
            "Rat29",
            "F3",
            FM::More,
            "Frequent periodic warnings with static identifiers",
            "Warnings allow third parties to build movement profiles",
            S::S1,
            E::E3,
            C::C3, // ASIL A
        ),
    ];
    install_ratings(&mut hara, &specs);

    let goals = [
        SafetyGoal::builder(
            "SG01",
            "Avoid ineffective location notification without returning driving control to human",
        )
        .ftti(Ftti::from_secs(2))
        .safe_state("Driving control returned to the driver; minimum risk manoeuvre prepared")
        .covers("Rat01")
        .covers("Rat02")
        .covers("Rat07"),
        SafetyGoal::builder("SG02", "Avoid intermittent control switches")
            .ftti(Ftti::from_millis(500))
            .safe_state("Control ownership latched to a single owner")
            .covers("Rat03")
            .covers("Rat10"),
        SafetyGoal::builder("SG03", "Communicate Speed Limits safely")
            .ftti(Ftti::from_millis(200))
            .safe_state("Fall back to the last plausible speed limit; flag signage invalid")
            .covers("Rat11")
            .covers("Rat12")
            .covers("Rat13")
            .covers("Rat15")
            .covers("Rat16")
            .covers("Rat17")
            .covers("Rat18")
            .covers("Rat20"),
        SafetyGoal::builder("SG04", "Avoid missing take-over warnings")
            .ftti(Ftti::from_secs(1))
            .safe_state("Escalate the take-over request and start the minimum risk manoeuvre")
            .covers("Rat05")
            .covers("Rat06"),
        SafetyGoal::builder(
            "SG05",
            "Avoid too many unintended warnings about hazardous vehicle states",
        )
        .safe_state("Warnings rate-limited and plausibilized")
        .covers("Rat22")
        .covers("Rat26")
        .covers("Rat28"),
        SafetyGoal::builder("SG06", "Avoid profile building with warnings")
            .safe_state("Warning identifiers pseudonymized and rotated")
            .covers("Rat29"),
    ];
    for goal in goals {
        hara.add_safety_goal(goal.build().expect("goal")).expect("goal insert");
    }

    UseCaseCatalog {
        name: "Use Case I - Autonomous Driving".to_owned(),
        hara,
        scenarios: vec![ScenarioId::new(SC_CONSTRUCTION).expect("scenario id")],
        attacks: use_case_1_attacks(),
        justifications: Vec::new(),
    }
}

/// Compact attack-description constructor used by the catalogs.
#[allow(clippy::too_many_arguments)] // dataset literal helper: 8 fixed table columns
fn ad(
    id: &str,
    description: &str,
    goals: &[&str],
    interface: &str,
    threat: &str,
    threat_type: ThreatType,
    attack_type: AttackType,
    precondition: &str,
    measures: &str,
    success: &str,
    fails: &str,
    comments: &str,
) -> AttackDescription {
    let mut builder = AttackDescription::builder(id, description)
        .interface(interface)
        .threat_scenario(threat)
        .threat_type(threat_type)
        .attack_type(attack_type)
        .precondition(precondition)
        .expected_measures(measures)
        .attack_success(success)
        .attack_fails(fails)
        .impl_comments(comments);
    for goal in goals {
        builder = builder.safety_goal(goal);
    }
    builder.build().expect("catalog attack description")
}

fn use_case_1_attacks() -> Vec<AttackDescription> {
    use AttackType as AT;
    use ThreatType as TT;
    let approach = "Vehicle is approaching the construction site";
    vec![
        ad("AD01", "Attacker broadcasts a forged road-works-cleared message so the warning is suppressed",
            &["SG01"], "OBU_RSU", "TS-V2X-SPOOF", TT::Spoofing, AT::FakeMessages,
            approach,
            "Message authentication; sender certificate validation",
            "OBU accepts the fake cancellation and no take-over request is issued",
            "Fake message rejected; take-over request issued on schedule",
            "Craft a syntactically valid cancellation with a forged sender identity"),
        ad("AD02", "Attacker impersonates the RSU with an invalid certificate to poison the OBU trust store",
            &["SG01"], "OBU_RSU", "TS-V2X-SPOOF", TT::Spoofing, AT::Spoofing,
            approach,
            "Certificate chain validation; trust-store write protection",
            "OBU installs the rogue RSU identity and accepts its messages",
            "Impersonation rejected and logged",
            "Replay the RSU enrolment handshake with attacker keys"),
        ad("AD03", "Attacker alters the location coordinates inside road-works warnings in transit",
            &["SG01"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::Alter,
            approach,
            "Payload integrity protection (MAC over location fields)",
            "Warning is placed at a wrong location; no take-over at the real site",
            "Altered message fails the integrity check and is discarded",
            "Flip coordinate bits between RSU transmission and OBU reception"),
        ad("AD04", "Attacker corrupts warning payloads on the air so the OBU discards them",
            &["SG01"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::CorruptMessages,
            approach,
            "Broken-message counter; retransmission; reception-gap supervision",
            "All warnings discarded as malformed; driver never notified",
            "Reception gap detected; degraded mode with take-over issued",
            "Inject bit errors at a rate that defeats forward error correction"),
        ad("AD05", "Attacker delays road-works warnings beyond the last safe take-over point",
            &["SG01", "SG04"], "OBU_RSU", "TS-V2X-DELAY", TT::Repudiation, AT::Delay,
            approach,
            "Message freshness window based on generation timestamps",
            "Warning accepted although stale; take-over margin insufficient",
            "Stale warning rejected; absence triggers degraded mode",
            "Store-and-forward the RSU frames with a controlled delay"),
        ad("AD06", "Attacker jams the V2X channel while the vehicle approaches the site",
            &["SG01", "SG04"], "OBU_RSU", "TS-V2X-JAM", TT::DenialOfService, AT::Jamming,
            approach,
            "Channel-quality supervision; reception-gap watchdog",
            "No warning received and no degraded mode entered before the site",
            "Jamming detected; vehicle escalates take-over on reception loss",
            "Raise the channel noise floor so frame reception probability drops near zero"),
        ad("AD07", "Attacker replays stale take-over-revocation messages to flip control back to automation",
            &["SG02"], "OBU_RSU", "TS-V2X-REPLAY", TT::Repudiation, AT::Replay,
            "Vehicle has issued a take-over request",
            "Freshness window; sequence-number monotonicity check",
            "Control flips between driver and automation repeatedly",
            "Replayed revocations rejected as stale",
            "Record a genuine revocation and retransmit it cyclically"),
        ad("AD08", "Attacker injects alternating take-over/release commands into the warning stream",
            &["SG02"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::Inject,
            approach,
            "Message authentication; control-switch hysteresis",
            "Repeated control switches within the hysteresis window",
            "Injected commands rejected; control latched",
            "Interleave forged command frames with the legitimate stream"),
        ad("AD09", "Attacker spoofs a rapid warning on/off sequence to provoke control oscillation",
            &["SG02"], "OBU_RSU", "TS-V2X-SPOOF", TT::Spoofing, AT::FakeMessages,
            approach,
            "Message authentication; warning debouncing",
            "Warning state oscillates and control switches intermittently",
            "Spoofed sequence rejected; at most one switch occurs",
            "Alternate forged warning and cancellation frames at 2 Hz"),
        ad("AD10", "Attacker spoofs an in-vehicle speed limit higher than the actual zone limit",
            &["SG03"], "OBU_RSU", "TS-V2X-SPOOF", TT::Spoofing, AT::FakeMessages,
            "Vehicle is inside a reduced-speed zone",
            "Signage authentication; plausibility check against map data",
            "Vehicle adopts the higher limit and speeds through the zone",
            "Forged limit rejected; last plausible limit kept",
            "Forge a signage frame advertising 130 km/h inside a 60 km/h zone"),
        ad("AD11", "Attacker alters the speed-limit value field of genuine signage messages",
            &["SG03"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::Alter,
            "Vehicle is inside a reduced-speed zone",
            "Payload integrity protection over the limit field",
            "Altered limit accepted and applied",
            "Integrity check fails; signage flagged invalid",
            "Modify the limit byte while preserving the frame checksum"),
        ad("AD12", "Attacker replays an old higher speed limit recorded in a different zone",
            &["SG03"], "OBU_RSU", "TS-V2X-REPLAY", TT::Repudiation, AT::Replay,
            "Vehicle is inside a reduced-speed zone",
            "Freshness window; zone identifier binding",
            "Replayed limit from elsewhere accepted",
            "Replay rejected due to stale timestamp or zone mismatch",
            "Capture signage frames on the motorway, replay them in the 30 zone"),
        ad("AD13", "Attacker manipulates the unit encoding of limits (mph vs km/h)",
            &["SG03"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::Manipulate,
            "Vehicle is inside a reduced-speed zone",
            "Schema validation; unit plausibility check",
            "Limit interpreted in the wrong unit; vehicle overspeeds",
            "Malformed unit rejected; signage flagged invalid",
            "Set the unit flag to mph while keeping the numeric value"),
        ad("AD14", "Attacker floods the interface to starve take-over warnings of processing time",
            &["SG04"], "OBU_RSU", "TS-2.1.4", TT::DenialOfService, AT::DenialOfService,
            approach,
            "Ingress rate limiting; priority queue for safety messages",
            "Take-over warning processed too late or dropped",
            "Flood shed at ingress; warning latency within FTTI",
            "Saturate the channel with well-formed low-priority frames"),
        ad("AD15", "Attacker crashes the OBU with malformed packets so warnings stop",
            &["SG04"], "OBU_RSU", "TS-2.1.4", TT::DenialOfService, AT::Disable,
            approach,
            "Robust input validation; watchdog restart with degraded mode",
            "OBU stops processing warnings without entering degraded mode",
            "Malformed input rejected; watchdog keeps service alive",
            "Fuzz length fields of the warning decoder until the service faults"),
        ad("AD16", "Attacker delays take-over warnings just below the detection threshold",
            &["SG04"], "OBU_RSU", "TS-V2X-DELAY", TT::Repudiation, AT::Delay,
            approach,
            "End-to-end latency budget supervision",
            "Warning delivered after the last safe take-over point",
            "Latency violation detected; degraded mode entered",
            "Delay frames by slightly more than the FTTI budget"),
        ad("AD17", "Attacker replays hazard warnings recorded at other locations or from other vehicles",
            &["SG05"], "OBU_RSU", "TS-V2X-REPLAY", TT::Repudiation, AT::Replay,
            "Vehicle drives in normal traffic without nearby hazards",
            "Freshness window; location plausibility against own position",
            "Replayed warnings accepted; driver distracted by false hazards",
            "Replays rejected as stale or implausible for the location",
            "Record warnings at a remote site and retransmit them locally"),
        ad("AD18", "Attacker spoofs hazardous-vehicle-state warnings for healthy vehicles nearby",
            &["SG05"], "OBU_RSU", "TS-V2X-SPOOF", TT::Spoofing, AT::FakeMessages,
            "Vehicle drives in normal traffic without nearby hazards",
            "Sender authentication; cross-validation with own sensors",
            "Stream of false warnings accepted and surfaced to the driver",
            "Forged warnings rejected; warning rate stays nominal",
            "Forge warnings naming random vehicle identifiers"),
        ad("AD19", "Attacker injects bursts of duplicated warnings to exceed the driver's attention budget",
            &["SG05"], "OBU_RSU", "TS-V2X-TAMPER", TT::Tampering, AT::Inject,
            "Vehicle drives in normal traffic",
            "Duplicate suppression; warning rate limiting",
            "Duplicated warnings displayed in bursts",
            "Duplicates suppressed; display rate bounded",
            "Duplicate each observed genuine warning 50 times"),
        // Table VI, verbatim.
        ad("AD20", "Attacker tries to overload the ECU by packet flooding",
            &["SG01", "SG02", "SG03"], "OBU_RSU", "TS-2.1.4", TT::DenialOfService, AT::Disable,
            "Vehicle is approaching the construction side",
            "Message counter for broken messages",
            "Shutdown of service",
            "Security control identifies unwanted sender, enforce change of frequency",
            "Create an authenticated sender as attacker besides the original sender, additionally \
             the attacker sender should send extra messages (with high frequency or in chaotic way)"),
        ad("AD21", "Attacker eavesdrops warnings to build movement profiles of the vehicle",
            &["SG06"], "OBU_RSU", "TS-V2X-EAVESDROP", TT::InformationDisclosure, AT::Eavesdropping,
            "Vehicle participates in V2X communication",
            "Pseudonym rotation; minimal identifying payload",
            "Warnings linkable across sites; movement profile reconstructed",
            "Observed warnings unlinkable across pseudonym changes",
            "Correlate warning identifiers across two road-side observation points"),
        ad("AD22", "Attacker passively listens to hazardous-vehicle-state broadcasts to identify the vehicle",
            &["SG06"], "OBU_RSU", "TS-V2X-EAVESDROP", TT::InformationDisclosure, AT::Listen,
            "Vehicle broadcasts state warnings",
            "Pseudonymized identifiers; payload minimization",
            "Vehicle identity inferred from broadcast content",
            "No stable identifier recoverable from broadcasts",
            "Record broadcasts and cluster them by radio fingerprint and content"),
        ad("AD23", "Attacker jams the channel and spoofs a fallback limit during the reception gap",
            &["SG03", "SG01"], "OBU_RSU", "TS-V2X-JAM", TT::DenialOfService, AT::Jamming,
            "Vehicle is inside a reduced-speed zone near the construction site",
            "Reception-gap supervision; signage plausibility after reacquisition",
            "Vehicle adopts the spoofed limit transmitted right after the jam window",
            "Post-gap signage treated as suspect until revalidated",
            "Jam for 3 s, then transmit the forged limit before the genuine RSU slot"),
    ]
}

/// Builds the Use Case II ("Keyless Car Opener", §IV-B) catalog.
///
/// # Example
///
/// ```
/// use saseval_core::catalog::use_case_2;
///
/// let uc2 = use_case_2();
/// assert_eq!(uc2.hara.rating_count(), 20);
/// assert_eq!(uc2.safety_attacks().count(), 27);
/// assert_eq!(uc2.privacy_attacks().count(), 2);
/// ```
pub fn use_case_2() -> UseCaseCatalog {
    use Controllability as C;
    use Exposure as E;
    use FailureMode as FM;
    use Severity as S;

    let mut hara = Hara::new("Use Case II - Keyless Car Opener (smartphone via BLE)");
    for (id, name) in
        [("K1", "Open vehicle via smartphone"), ("K2", "Close vehicle via smartphone")]
    {
        hara.add_function(ItemFunction::new(id, name).expect("function")).expect("function insert");
    }

    let specs = [
        // --- K1: open (10 ratings). ---
        assessed(
            "KRat01",
            "K1",
            FM::No,
            "Owner at the vehicle on the roadside, needs access",
            "Opening unavailable; owner stranded",
            S::S1,
            E::E4,
            C::C2, // ASIL A
        ),
        assessed(
            "KRat02",
            "K1",
            FM::Unintended,
            "Vehicle in motion",
            "Doors unlock/open without request while driving",
            S::S3,
            E::E4,
            C::C3, // ASIL D
        ),
        assessed(
            "KRat03",
            "K1",
            FM::Unintended,
            "Parked overnight in public",
            "Vehicle unlocks without request; property at risk",
            S::S1,
            E::E4,
            C::C1, // QM
        ),
        assessed(
            "KRat04",
            "K1",
            FM::TooEarly,
            "Owner approaching across a parking lot",
            "Opens well before the owner arrives; intrusion window",
            S::S2,
            E::E3,
            C::C3, // ASIL B
        ),
        not_applicable(
            "KRat05",
            "K1",
            FM::TooLate,
            "Late opening: the user simply retries; no hazardous event arises",
        ),
        not_applicable("KRat06", "K1", FM::Less, "Opening is a discrete command without magnitude"),
        assessed(
            "KRat07",
            "K1",
            FM::More,
            "Open request for the driver door only",
            "All doors and the trunk unlock additionally",
            S::S2,
            E::E3,
            C::C3, // ASIL B
        ),
        not_applicable(
            "KRat08",
            "K1",
            FM::Inverted,
            "The inverse of opening is the closing function, analysed separately",
        ),
        assessed(
            "KRat09",
            "K1",
            FM::Intermittent,
            "Repeated connection instability",
            "Locks cycle open/closed repeatedly",
            S::S2,
            E::E4,
            C::C2, // ASIL B
        ),
        assessed(
            "KRat10",
            "K1",
            FM::Intermittent,
            "Occupant exiting during lock cycling",
            "Cycling while the occupant operates the door",
            S::S1,
            E::E3,
            C::C2, // QM
        ),
        // --- K2: close (10 ratings). ---
        assessed(
            "KRat11",
            "K2",
            FM::No,
            "Owner walks away believing the vehicle closed",
            "Vehicle remains open unnoticed",
            S::S3,
            E::E3,
            C::C3, // ASIL C
        ),
        assessed(
            "KRat12",
            "K2",
            FM::No,
            "Driver moves off assuming the vehicle closed",
            "Drives with a door unlatched",
            S::S1,
            E::E3,
            C::C2, // QM
        ),
        assessed(
            "KRat13",
            "K2",
            FM::Unintended,
            "Person entering the vehicle",
            "Vehicle closes/locks while a person is entering",
            S::S2,
            E::E3,
            C::C2, // ASIL A
        ),
        assessed(
            "KRat14",
            "K2",
            FM::Unintended,
            "Loading cargo through the door",
            "Close command arrives while loading",
            S::S1,
            E::E3,
            C::C1, // QM
        ),
        assessed(
            "KRat15",
            "K2",
            FM::TooEarly,
            "Passenger not yet clear of the door",
            "Closes before the passenger is clear",
            S::S1,
            E::E3,
            C::C2, // QM
        ),
        not_applicable(
            "KRat16",
            "K2",
            FM::TooLate,
            "Close executes on a confirmed command; lateness is bounded by the protocol timeout",
        ),
        not_applicable(
            "KRat17",
            "K2",
            FM::Less,
            "Closing is discrete; partial closing is prevented mechanically",
        ),
        not_applicable("KRat18", "K2", FM::More, "The vehicle cannot close more than fully closed"),
        not_applicable(
            "KRat19",
            "K2",
            FM::Inverted,
            "The inverse of closing is the opening function, analysed separately",
        ),
        assessed(
            "KRat20",
            "K2",
            FM::Intermittent,
            "Lock state flaps during closing",
            "Open/close oscillation of the locks",
            S::S2,
            E::E4,
            C::C2, // ASIL B
        ),
    ];
    install_ratings(&mut hara, &specs);

    let goals = [
        SafetyGoal::builder("SG01", "Keep vehicle closed")
            .ftti(Ftti::from_millis(500))
            .safe_state("Vehicle locked; unauthorized opening rejected")
            .covers("KRat02")
            .covers("KRat04")
            .covers("KRat07")
            .covers("KRat11"),
        SafetyGoal::builder("SG02", "Avoid intermittent open/close")
            .ftti(Ftti::from_millis(500))
            .safe_state("Lock state latched until a fresh authenticated command arrives")
            .covers("KRat09")
            .covers("KRat20"),
        SafetyGoal::builder("SG03", "Prevent non-availability of opening")
            .ftti(Ftti::from_secs(5))
            .safe_state(
                "Opening served within the availability budget or mechanical fallback offered",
            )
            .covers("KRat01"),
        SafetyGoal::builder("SG04", "Prevent unintended closing")
            .ftti(Ftti::from_millis(500))
            .safe_state("Closing inhibited while an obstacle or person is detected")
            .covers("KRat13"),
    ];
    for goal in goals {
        hara.add_safety_goal(goal.build().expect("goal")).expect("goal insert");
    }

    UseCaseCatalog {
        name: "Use Case II - Keyless Car Opener".to_owned(),
        hara,
        scenarios: vec![ScenarioId::new(SC_KEYLESS).expect("scenario id")],
        attacks: use_case_2_attacks(),
        justifications: Vec::new(),
    }
}

fn use_case_2_attacks() -> Vec<AttackDescription> {
    use AttackType as AT;
    use ThreatType as TT;
    let paired = "Vehicle is closed; attacker is within BLE range";
    vec![
        ad("AD01", "Attacker replays a captured opening command",
            &["SG01"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Replay,
            paired,
            "Timestamps resp. challenge-response patterns within the communication",
            "Vehicle opens on the replayed command",
            "Replay rejected as stale; vehicle stays closed",
            "Record a genuine open exchange and retransmit it after the owner leaves"),
        ad("AD02", "Attacker replays opening commands with shifted timestamps",
            &["SG01"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Replay,
            paired,
            "Freshness window with clock-skew bound",
            "Time-shifted replay accepted inside the window",
            "Replay rejected; skew anomaly logged",
            "Rewrite the timestamp field to now() before replaying; sweep the window size"),
        ad("AD03", "Attacker relays the challenge-response between the distant phone and the car",
            &["SG01"], "BLE_PHONE", "TS-3.1.4", TT::Spoofing, AT::Spoofing,
            "Vehicle closed; owner's phone out of range but reachable by a second relay node",
            "Round-trip-time bounding; distance bounding protocol",
            "Vehicle opens although the owner is far away",
            "Relay detected by RTT bound; opening rejected",
            "Two cooperating radios forward frames between phone and vehicle verbatim"),
        ad("AD04", "Attacker brute-forces session tokens of the opening protocol",
            &["SG01"], "BLE_PHONE", "TS-BLE-VULN", TT::ElevationOfPrivilege, AT::GainUnauthorizedAccess,
            paired,
            "Token entropy; retry rate limiting with lockout",
            "A guessed token opens the vehicle",
            "Lockout after N failures; opening rejected",
            "Iterate the token space at the maximum rate the link allows"),
        ad("AD05", "Attacker exploits a pairing-protocol overflow in the BLE stack",
            &["SG01"], "BLE_PHONE", "TS-BLE-VULN", TT::ElevationOfPrivilege, AT::GainElevatedAccess,
            paired,
            "Memory-safe parsing; fuzz-tested pairing state machine",
            "Attacker gains code execution on the gateway and opens the vehicle",
            "Malformed pairing input rejected; stack survives",
            "Send oversized pairing feature exchanges; observe gateway health"),
        ad("AD06", "Attacker social-engineers the owner into pairing an attacker-controlled device",
            &["SG01"], "BLE_PHONE", "TS-BLE-SOCIAL", TT::Spoofing, AT::FakeMessages,
            "Owner uses the official app; attacker can message the owner",
            "Out-of-band pairing confirmation with vehicle-displayed code",
            "Attacker device paired and able to open the vehicle",
            "Pairing requires the in-vehicle confirmation; attempt fails",
            "Send a counterfeit OEM notification asking the owner to accept a pairing"),
        ad("AD07", "Attacker uses key material extracted from a stolen smartphone",
            &["SG01"], "BLE_PHONE", "TS-KEY-THEFT", TT::ElevationOfPrivilege, AT::IllegalAcquisition,
            "Phone reported stolen; vehicle closed",
            "Remote key revocation via the backend; hardware-bound keys",
            "Stolen key still opens the vehicle after revocation",
            "Revoked key rejected; event logged",
            "Extract the key store from the device image and replay it from another phone"),
        // Table VII, verbatim.
        ad("AD08", "The attacker uses modified keys to gain access to the vehicle",
            &["SG01"], "ECU_GW", "TS-3.1.4", TT::Spoofing, AT::Spoofing,
            "Vehicle is closed. Attacker has an authenticated communication link",
            "Check received vehicles electronic ID with list of allowed IDs",
            "Open the vehicle",
            "Opening is rejected",
            "a) Randomly replace IDs of keys and b) test against increasing IDs (if a valid ID is known)"),
        ad("AD09", "Attacker injects a forged open frame on the CAN bus via a compromised gateway port",
            &["SG01"], "CAN_GW", "TS-LIFE-3", TT::Tampering, AT::Inject,
            "Vehicle closed; attacker has access to an exposed CAN stub",
            "Gateway filtering of body-control frames from untrusted segments",
            "Lock actuator executes the injected open frame",
            "Frame filtered at the gateway; vehicle stays closed",
            "Inject the body-control open frame with the correct CAN identifier"),
        ad("AD10", "Attacker manipulates lock-state reporting so the vehicle shows locked while open",
            &["SG01"], "CAN_GW", "TS-LIFE-3", TT::Tampering, AT::Manipulate,
            "Owner closes the vehicle and checks the app status",
            "End-to-end protection of status messages; actuator read-back",
            "App shows locked while the doors remain open",
            "Status mismatch detected; owner alerted",
            "Spoof the status frame while suppressing the actuator acknowledgment"),
        ad("AD11", "Attacker replays alternating open and close commands",
            &["SG02"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Replay,
            "Owner near vehicle; attacker recorded both commands earlier",
            "Freshness window; command sequence monotonicity",
            "Locks cycle open/closed repeatedly",
            "Replays rejected; lock state latched",
            "Alternate the two recorded exchanges at 1 Hz"),
        ad("AD12", "Attacker injects rapid open/close toggling frames behind the gateway",
            &["SG02"], "CAN_GW", "TS-LIFE-3", TT::Tampering, AT::Inject,
            "Attacker has access to an exposed CAN stub",
            "Gateway rate limiting; actuator command debouncing",
            "Actuator oscillates between open and closed",
            "Toggling debounced; at most one transition executed",
            "Inject alternating lock frames at the bus rate limit"),
        ad("AD13", "Attacker floods the BLE link to force connection flapping",
            &["SG02"], "BLE_PHONE", "TS-BLE-FLOOD", TT::DenialOfService, AT::DenialOfService,
            "Owner's phone connected to the vehicle",
            "Connection supervision with hold-last-state policy",
            "Lock state follows the flapping connection",
            "State held; flapping reported",
            "Alternate connect/disconnect storms against the peripheral"),
        ad("AD14", "Attacker floods the CAN bus with forwarded Bluetooth requests, reducing availability of the opening function",
            &["SG03"], "CAN_GW", "TS-BLE-FLOOD", TT::DenialOfService, AT::DenialOfService,
            "Owner attempts to open; attacker within BLE range",
            "Gateway rate limiting of BLE-originated frames; CAN priority scheme",
            "Opening command starved; function unavailable",
            "Flood shed at the gateway; opening served within the availability budget",
            "Issue BLE requests that each fan out into CAN traffic; sweep the request rate"),
        ad("AD15", "Attacker jams the BLE channel while the owner tries to open",
            &["SG03"], "BLE_PHONE", "TS-BLE-FLOOD", TT::DenialOfService, AT::Jamming,
            "Owner attempts to open from BLE range",
            "Channel hopping; mechanical key fallback",
            "Opening unavailable during the jam",
            "Connection re-established via hopping or fallback offered",
            "Jam the advertising channels continuously"),
        ad("AD16", "Attacker disables the gateway with malformed BLE frames",
            &["SG03"], "BLE_PHONE", "TS-BLE-FLOOD", TT::DenialOfService, AT::Disable,
            "Owner attempts to open; attacker within BLE range",
            "Robust input validation; gateway watchdog",
            "Gateway crashes; opening unavailable until manual reset",
            "Malformed frames rejected; watchdog keeps service alive",
            "Send length-field-corrupted GATT requests in a loop"),
        ad("AD17", "Attacker drains the vehicle battery with continuous connection requests",
            &["SG03"], "BLE_PHONE", "TS-BLE-FLOOD", TT::DenialOfService, AT::DenialOfService,
            "Vehicle parked for an extended period",
            "Duty-cycle limiting of the BLE peripheral; quiescent-current budget",
            "Battery depleted; opening (and starting) unavailable",
            "Connection attempts throttled; battery drain bounded",
            "Issue connection requests at the protocol maximum for hours"),
        ad("AD18", "Attacker spoofs a close command while an occupant is entering",
            &["SG04"], "BLE_PHONE", "TS-3.1.4", TT::Spoofing, AT::FakeMessages,
            "Door open; person entering the vehicle",
            "Command authentication; obstacle detection interlock",
            "Vehicle closes on the spoofed command while the person enters",
            "Spoofed command rejected; interlock holds the door",
            "Forge the close command with a guessed session context"),
        ad("AD19", "Attacker replays a close command while the owner loads cargo",
            &["SG04"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Replay,
            "Door open; owner loading cargo",
            "Freshness window; closing interlock",
            "Replayed close executes during loading",
            "Replay rejected as stale",
            "Replay the last genuine close exchange"),
        ad("AD20", "Attacker injects a close frame on the CAN bus during entry",
            &["SG04"], "CAN_GW", "TS-LIFE-3", TT::Tampering, AT::Inject,
            "Door open; person entering; attacker on an exposed CAN stub",
            "Gateway filtering; obstacle detection interlock",
            "Actuator closes while the person enters",
            "Frame filtered or interlock prevents motion",
            "Inject the body-control close frame directly"),
        ad("AD21", "Attacker delays the close command so the vehicle stays open after the owner leaves",
            &["SG01"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Delay,
            "Owner closes the vehicle and walks away",
            "Close acknowledgment surfaced to the app; timeout alarm",
            "Close executes late or never; vehicle open unnoticed",
            "Missing acknowledgment alerts the owner within the timeout",
            "Hold the close frame in a store-and-forward buffer"),
        ad("AD22", "Attacker spoofs the close confirmation while suppressing the actual close",
            &["SG01"], "BLE_PHONE", "TS-3.1.4", TT::Spoofing, AT::FakeMessages,
            "Owner closes the vehicle and checks the confirmation",
            "End-to-end protected confirmations bound to actuator state",
            "App shows closed while the vehicle stays open",
            "Confirmation validation fails; owner warned",
            "Drop the close frame and forge the acknowledgment"),
        ad("AD23", "Attacker corrupts close commands in transit so closing silently fails",
            &["SG01"], "BLE_PHONE", "TS-LIFE-3", TT::Tampering, AT::CorruptMessages,
            "Owner closes the vehicle from short distance",
            "Integrity protection with retry; failure surfaced to the app",
            "Corrupted close dropped without user-visible failure",
            "Corruption detected; retry succeeds or user alerted",
            "Flip bits in the close frame payload at the radio layer"),
        ad("AD24", "Attacker tampers with the allow-list of authorized key IDs",
            &["SG01"], "ECU_GW", "TS-LIFE-3", TT::Tampering, AT::ConfigChange,
            "Attacker has a diagnostic session on the gateway",
            "Write protection and authentication of configuration changes",
            "Attacker key added to the allow-list; vehicle opens for it",
            "Configuration write rejected; tamper event logged",
            "Attempt a UDS write to the allow-list data identifier"),
        ad("AD25", "Attacker gains elevated gateway access through an unauthenticated diagnostic service",
            &["SG01"], "ECU_GW", "TS-BLE-VULN", TT::ElevationOfPrivilege, AT::GainElevatedAccess,
            "Attacker reaches the diagnostic interface via the BLE bridge",
            "Diagnostic authentication (security access); service minimization",
            "Elevated session opened; locks controllable",
            "Security access denied; attempt logged",
            "Enumerate UDS services reachable through the BLE bridge"),
        ad("AD26", "Attacker delays open acknowledgments to cause a retry storm oscillating the locks",
            &["SG02"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::Delay,
            "Owner opens the vehicle; attacker relays traffic",
            "Idempotent command handling keyed by command identifier",
            "Retries execute as repeated open/close transitions",
            "Retries recognized as duplicates; single transition",
            "Delay acknowledgments beyond the app retry timeout"),
        ad("AD27", "Attacker suppresses transmission acknowledgments so the phone retries indefinitely",
            &["SG03"], "BLE_PHONE", "TS-BLE-REPLAY", TT::Repudiation, AT::RepudiationOfTransmission,
            "Owner attempts to open from BLE range",
            "Bounded retry with user-visible failure; link supervision",
            "App spins on retries; opening effectively unavailable",
            "Failure surfaced after bounded retries; fallback offered",
            "Selectively drop acknowledgment frames at the radio layer"),
        // The two privacy attacks of §IV-B.
        AttackDescription::builder("AD28", "Attacker tracks BLE advertisements to build a usage profile of the vehicle")
            .privacy_relevant()
            .interface("BLE_PHONE")
            .threat_scenario("TS-BLE-TRACK")
            .threat_type(TT::InformationDisclosure)
            .attack_type(AT::Eavesdropping)
            .precondition("Vehicle parked in public; attacker observes over days")
            .expected_measures("Resolvable private addresses; advertisement rotation")
            .attack_success("Open/close times and presence patterns reconstructed")
            .attack_fails("Advertisements unlinkable across rotations")
            .impl_comments("Correlate advertising addresses and timing across observation sessions")
            .build()
            .expect("catalog attack description"),
        AttackDescription::builder("AD29", "Attacker intercepts open/close events to infer owner presence")
            .privacy_relevant()
            .interface("BLE_PHONE")
            .threat_scenario("TS-BLE-TRACK")
            .threat_type(TT::InformationDisclosure)
            .attack_type(AT::Intercept)
            .precondition("Attacker within BLE range of the parked vehicle")
            .expected_measures("Encrypted events; traffic padding")
            .attack_success("Event types distinguishable from traffic patterns")
            .attack_fails("Event traffic indistinguishable from padding")
            .impl_comments("Classify encrypted frames by length and timing")
            .build()
            .expect("catalog attack description"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use saseval_types::{AsilLevel, RatingClass};

    #[test]
    fn uc1_distribution_matches_paper() {
        let uc1 = use_case_1();
        let d = uc1.hara.distribution();
        assert_eq!(d.total(), 29);
        assert_eq!(d.count(RatingClass::NotApplicable), 5);
        assert_eq!(d.count(RatingClass::Qm), 5);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::A)), 7);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::B)), 3);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::C)), 7);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::D)), 2);
    }

    #[test]
    fn uc1_has_three_functions_and_six_goals() {
        let uc1 = use_case_1();
        assert_eq!(uc1.hara.function_count(), 3);
        assert_eq!(uc1.hara.safety_goal_count(), 6);
    }

    #[test]
    fn uc1_goal_asils_match_paper() {
        let uc1 = use_case_1();
        let expect = [
            ("SG01", AsilLevel::C),
            ("SG02", AsilLevel::C),
            ("SG03", AsilLevel::D),
            ("SG04", AsilLevel::C),
            ("SG05", AsilLevel::B),
            ("SG06", AsilLevel::A),
        ];
        for (id, asil) in expect {
            let goal = uc1.hara.safety_goal(id).expect(id);
            assert_eq!(uc1.hara.goal_asil(goal), Some(asil), "goal {id}");
        }
    }

    #[test]
    fn uc1_hara_is_complete() {
        let uc1 = use_case_1();
        let report = uc1.hara.completeness();
        assert!(report.is_complete(), "{report:?}");
    }

    #[test]
    fn uc1_has_23_attacks_with_ad20_verbatim() {
        let uc1 = use_case_1();
        assert_eq!(uc1.attacks.len(), 23);
        let ad20 = uc1.attacks.iter().find(|a| a.id().as_str() == "AD20").expect("AD20");
        assert_eq!(ad20.interface().unwrap().as_str(), "OBU_RSU");
        assert_eq!(ad20.threat_scenario().as_str(), "TS-2.1.4");
        assert_eq!(ad20.threat_type(), ThreatType::DenialOfService);
        assert_eq!(ad20.attack_type(), AttackType::Disable);
        assert_eq!(ad20.attack_success(), "Shutdown of service");
        assert_eq!(ad20.safety_goals().len(), 3);
    }

    #[test]
    fn uc1_replay_attack_against_sg05_present() {
        // §IV-A prose: "Repudiation - Replay ... warnings are replayed from
        // other locations ... violation of SG05".
        let uc1 = use_case_1();
        let ad = uc1
            .attacks
            .iter()
            .find(|a| {
                a.attack_type() == AttackType::Replay
                    && a.safety_goals().iter().any(|g| g.as_str() == "SG05")
            })
            .expect("replay attack on SG05");
        assert_eq!(ad.threat_type(), ThreatType::Repudiation);
    }

    #[test]
    fn uc1_rat01_matches_paper_excerpt() {
        let uc1 = use_case_1();
        let rat01 = uc1.hara.rating("Rat01").expect("Rat01");
        assert_eq!(rat01.rating_class(), RatingClass::Asil(AsilLevel::C));
        assert!(rat01.hazard().contains("can not be warned"));
    }

    #[test]
    fn uc2_distribution_matches_paper() {
        let uc2 = use_case_2();
        let d = uc2.hara.distribution();
        assert_eq!(d.total(), 20);
        assert_eq!(d.count(RatingClass::NotApplicable), 7);
        assert_eq!(d.count(RatingClass::Qm), 5);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::A)), 2);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::B)), 4);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::C)), 1);
        assert_eq!(d.count(RatingClass::Asil(AsilLevel::D)), 1);
    }

    #[test]
    fn uc2_goal_asils_match_paper() {
        let uc2 = use_case_2();
        let expect = [
            ("SG01", AsilLevel::D),
            ("SG02", AsilLevel::B),
            ("SG03", AsilLevel::A),
            ("SG04", AsilLevel::A),
        ];
        for (id, asil) in expect {
            let goal = uc2.hara.safety_goal(id).expect(id);
            assert_eq!(uc2.hara.goal_asil(goal), Some(asil), "goal {id}");
        }
    }

    #[test]
    fn uc2_hara_is_complete() {
        let uc2 = use_case_2();
        assert!(uc2.hara.completeness().is_complete());
    }

    #[test]
    fn uc2_attack_counts_match_paper() {
        let uc2 = use_case_2();
        assert_eq!(uc2.attacks.len(), 29);
        assert_eq!(uc2.safety_attacks().count(), 27);
        assert_eq!(uc2.privacy_attacks().count(), 2);
    }

    #[test]
    fn uc2_ad08_matches_table_vii() {
        let uc2 = use_case_2();
        let ad08 = uc2.attacks.iter().find(|a| a.id().as_str() == "AD08").expect("AD08");
        assert_eq!(ad08.safety_goals()[0].as_str(), "SG01");
        assert_eq!(ad08.interface().unwrap().as_str(), "ECU_GW");
        assert_eq!(ad08.threat_scenario().as_str(), "TS-3.1.4");
        assert_eq!(ad08.threat_type(), ThreatType::Spoofing);
        assert_eq!(ad08.attack_type(), AttackType::Spoofing);
        assert_eq!(ad08.attack_success(), "Open the vehicle");
        assert_eq!(ad08.attack_fails(), "Opening is rejected");
    }

    #[test]
    fn uc2_named_prose_attacks_present() {
        let uc2 = use_case_2();
        // CAN flooding via forwarded BLE → SG03.
        assert!(uc2.attacks.iter().any(|a| {
            a.attack_type() == AttackType::DenialOfService
                && a.threat_scenario().as_str() == "TS-BLE-FLOOD"
                && a.safety_goals().iter().any(|g| g.as_str() == "SG03")
        }));
        // Replay of the opening command.
        assert!(uc2.attacks.iter().any(|a| {
            a.attack_type() == AttackType::Replay && a.description().contains("opening command")
        }));
    }

    #[test]
    fn attack_ids_unique_within_each_catalog() {
        for catalog in [use_case_1(), use_case_2()] {
            let mut ids: Vec<_> = catalog.attacks.iter().map(|a| a.id().as_str()).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), before, "{}", catalog.name);
        }
    }
}
