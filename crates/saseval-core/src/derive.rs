//! Step 3 — systematic derivation of candidate attacks (paper §III,
//! §III-C).
//!
//! "For each combination of safety goal and attack type the potential
//! attacks and the safety and/or security measures to be active are
//! identified." This module enumerates those combinations: for every
//! safety concern and every threat scenario applicable to the SUT's
//! scenarios (optionally filtered by asset priority — RQ2 — and attacker
//! profile), it proposes one candidate per Table IV attack type. The test
//! engineer (or the authored catalogs in [`crate::catalog`]) turns
//! candidates into full [`crate::AttackDescription`]s.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use saseval_threat::ThreatLibrary;
use saseval_types::{
    AttackType, AttackerProfile, SafetyGoalId, ScenarioId, ThreatScenarioId, ThreatType,
};

use crate::concern::SafetyConcern;

/// Configuration of the candidate derivation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DerivationConfig {
    /// Restrict to threats identified in these driving scenarios
    /// (empty = all scenarios).
    pub scenarios: Vec<ScenarioId>,
    /// Minimum asset priority (RQ2); 0 = no filtering.
    pub min_asset_priority: u8,
    /// Restrict to threats mountable by this attacker profile.
    pub attacker: Option<AttackerProfile>,
    /// Skip passive (information-disclosure-only) attack types, which
    /// cannot violate safety goals directly (§IV-B separates privacy
    /// attacks).
    pub active_attacks_only: bool,
}

impl DerivationConfig {
    /// Creates the default configuration (no filtering).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts derivation to one driving scenario (repeatable).
    ///
    /// # Panics
    ///
    /// Panics if `scenario` is not a valid identifier (dataset bug).
    pub fn scenario(mut self, scenario: &str) -> Self {
        self.scenarios.push(ScenarioId::new(scenario).expect("valid scenario id"));
        self
    }

    /// Sets the minimum asset priority (RQ2 test-space reduction).
    pub fn min_priority(mut self, priority: u8) -> Self {
        self.min_asset_priority = priority;
        self
    }

    /// Restricts to threats mountable by `attacker`.
    pub fn attacker_profile(mut self, attacker: AttackerProfile) -> Self {
        self.attacker = Some(attacker);
        self
    }

    /// Skips passive attack types.
    pub fn active_only(mut self) -> Self {
        self.active_attacks_only = true;
        self
    }
}

/// A derived candidate: one (safety goal × threat scenario × attack type)
/// combination the validation should consider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateAttack {
    /// The safety goal at stake.
    pub safety_goal: SafetyGoalId,
    /// The threat-library entry to exploit.
    pub threat_scenario: ThreatScenarioId,
    /// The STRIDE threat type.
    pub threat_type: ThreatType,
    /// The attack type to implement.
    pub attack_type: AttackType,
    /// Situation variations to test, scaled by the concern's ASIL (RQ2).
    pub situation_variations: u32,
}

/// Enumerates candidate attacks for the given safety concerns against the
/// threat library.
///
/// # Example
///
/// ```
/// use saseval_core::derive::{derive_candidates, DerivationConfig};
/// use saseval_core::identify_safety_concerns;
/// use saseval_core::catalog::use_case_1;
/// use saseval_threat::builtin::{automotive_library, SC_CONSTRUCTION};
///
/// let uc1 = use_case_1();
/// let concerns = identify_safety_concerns(&uc1.hara);
/// let lib = automotive_library();
/// let config = DerivationConfig::new().scenario(SC_CONSTRUCTION).active_only();
/// let candidates = derive_candidates(&concerns, &lib, &config);
/// // 6 concerns × threats of the construction scenario × their attack types.
/// assert!(candidates.len() > 100);
/// ```
pub fn derive_candidates(
    concerns: &[SafetyConcern],
    library: &ThreatLibrary,
    config: &DerivationConfig,
) -> Vec<CandidateAttack> {
    let scenario_filter: BTreeSet<&ScenarioId> = config.scenarios.iter().collect();
    let mut candidates = Vec::new();
    for concern in concerns {
        for threat in library.threat_scenarios() {
            if !scenario_filter.is_empty() {
                match threat.scenario() {
                    Some(sc) if scenario_filter.contains(sc) => {}
                    _ => continue,
                }
            }
            if config.min_asset_priority > 0 {
                let reaches = threat
                    .assets()
                    .iter()
                    .filter_map(|a| library.asset(a.as_str()))
                    .any(|a| a.priority() >= config.min_asset_priority);
                if !reaches {
                    continue;
                }
            }
            if let Some(profile) = config.attacker {
                if !threat.allows_attacker(profile) {
                    continue;
                }
            }
            for attack_type in threat.attack_types() {
                if config.active_attacks_only && !attack_type.is_active() {
                    continue;
                }
                candidates.push(CandidateAttack {
                    safety_goal: concern.goal().clone(),
                    threat_scenario: threat.id().clone(),
                    threat_type: threat.threat_type(),
                    attack_type: *attack_type,
                    situation_variations: concern.test_effort(),
                });
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::use_case_1;
    use crate::concern::identify_safety_concerns;
    use saseval_threat::builtin::{automotive_library, SC_CONSTRUCTION, SC_KEYLESS};

    fn setup() -> (Vec<SafetyConcern>, ThreatLibrary) {
        let uc1 = use_case_1();
        (identify_safety_concerns(&uc1.hara), automotive_library())
    }

    #[test]
    fn unfiltered_derivation_covers_all_threats() {
        let (concerns, lib) = setup();
        let candidates = derive_candidates(&concerns, &lib, &DerivationConfig::new());
        let threats: BTreeSet<_> = candidates.iter().map(|c| &c.threat_scenario).collect();
        assert_eq!(threats.len(), lib.stats().threat_scenarios);
    }

    #[test]
    fn scenario_filter_limits_threats() {
        let (concerns, lib) = setup();
        let config = DerivationConfig::new().scenario(SC_CONSTRUCTION);
        let candidates = derive_candidates(&concerns, &lib, &config);
        for c in &candidates {
            let threat = lib.threat_scenario(c.threat_scenario.as_str()).unwrap();
            assert_eq!(threat.scenario().unwrap().as_str(), SC_CONSTRUCTION);
        }
        assert!(!candidates.is_empty());
    }

    #[test]
    fn active_only_drops_passive_types() {
        let (concerns, lib) = setup();
        let config = DerivationConfig::new().active_only();
        let candidates = derive_candidates(&concerns, &lib, &config);
        assert!(candidates.iter().all(|c| c.attack_type.is_active()));
    }

    #[test]
    fn attacker_filter_respects_restrictions() {
        let (concerns, lib) = setup();
        let config = DerivationConfig::new().attacker_profile(AttackerProfile::RemoteAttacker);
        let candidates = derive_candidates(&concerns, &lib, &config);
        // TS-GW-INSIDER and TS-LIFE-2/TS-KEY-THEFT are restricted to
        // physical-access profiles and must not appear.
        assert!(candidates.iter().all(|c| c.threat_scenario.as_str() != "TS-GW-INSIDER"));
    }

    #[test]
    fn priority_filter_reduces_candidates() {
        let (concerns, lib) = setup();
        let all = derive_candidates(&concerns, &lib, &DerivationConfig::new()).len();
        let high =
            derive_candidates(&concerns, &lib, &DerivationConfig::new().min_priority(4)).len();
        assert!(high < all);
        assert!(high > 0);
    }

    #[test]
    fn variations_scale_with_asil() {
        let (concerns, lib) = setup();
        let config = DerivationConfig::new().scenario(SC_KEYLESS);
        let candidates = derive_candidates(&concerns, &lib, &config);
        // UC1 concerns: SG03 is ASIL D (weight 8), SG06 is A (weight 1).
        let sg03 = candidates.iter().find(|c| c.safety_goal.as_str() == "SG03").unwrap();
        let sg06 = candidates.iter().find(|c| c.safety_goal.as_str() == "SG06").unwrap();
        assert_eq!(sg03.situation_variations, 8);
        assert_eq!(sg06.situation_variations, 1);
    }

    #[test]
    fn empty_concerns_yield_no_candidates() {
        let (_, lib) = setup();
        assert!(derive_candidates(&[], &lib, &DerivationConfig::new()).is_empty());
    }
}
