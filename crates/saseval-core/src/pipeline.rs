//! The end-to-end SaSeVAL pipeline (paper Fig. 1).
//!
//! [`run_pipeline`] executes the four process steps against a use-case
//! dataset and a threat library, validating cross-artifact consistency and
//! recording a per-stage trace — the executable counterpart of the
//! process-overview figure.

use saseval_obs::Obs;
use serde::{Deserialize, Serialize};

use saseval_threat::ThreatLibrary;

use crate::catalog::UseCaseCatalog;
use crate::concern::{identify_safety_concerns, SafetyConcern};
use crate::coverage::{deductive_coverage, inductive_coverage, DeductiveReport, InductiveReport};
use crate::description::AttackDescription;
use crate::error::CoreError;

/// Trace record for one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTrace {
    /// Stage number (1–4) as in the paper's Fig. 1.
    pub stage: u8,
    /// Stage title.
    pub title: String,
    /// What the stage produced.
    pub summary: String,
}

/// Result of running the full pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The use-case name.
    pub use_case: String,
    /// Per-stage trace in execution order.
    pub stages: Vec<StageTrace>,
    /// The identified safety concerns (stage 2 output).
    pub concerns: Vec<SafetyConcern>,
    /// Deductive coverage (safety goals → attacks).
    pub deductive: DeductiveReport,
    /// Inductive coverage (threats → attacks/justifications).
    pub inductive: InductiveReport,
    /// Number of validated attack descriptions.
    pub attack_count: usize,
}

impl PipelineReport {
    /// Whether both completeness arguments of RQ1 hold.
    pub fn is_complete(&self) -> bool {
        self.deductive.is_complete() && self.inductive.is_complete()
    }
}

/// Validates one attack description against the HARA and the threat
/// library.
///
/// # Errors
///
/// * Any [`CoreError`] from [`AttackDescription::validate`] (the builder
///   invariants, re-checked so descriptions deserialized from external
///   data cannot bypass them).
/// * [`CoreError::UnknownSafetyGoal`] if the description references a goal
///   the HARA does not define.
/// * [`CoreError::UnknownThreatScenario`] if it references a threat the
///   library does not contain.
/// * [`CoreError::AttackTypeMismatch`] if its declared threat type differs
///   from the library entry's STRIDE classification.
pub fn validate_attack(
    attack: &AttackDescription,
    catalog: &UseCaseCatalog,
    library: &ThreatLibrary,
) -> Result<(), CoreError> {
    attack.validate()?;
    for goal in attack.safety_goals() {
        if catalog.hara.safety_goal(goal.as_str()).is_none() {
            return Err(CoreError::UnknownSafetyGoal {
                attack: attack.id().clone(),
                goal: goal.clone(),
            });
        }
    }
    match library.threat_scenario(attack.threat_scenario().as_str()) {
        None => Err(CoreError::UnknownThreatScenario {
            attack: attack.id().clone(),
            threat: attack.threat_scenario().clone(),
        }),
        Some(threat) if threat.threat_type() != attack.threat_type() => {
            Err(CoreError::AttackTypeMismatch {
                attack: attack.id().clone(),
                threat: attack.threat_scenario().clone(),
            })
        }
        Some(_) => Ok(()),
    }
}

/// Runs the four-stage SaSeVAL pipeline for a use case.
///
/// Stages (paper Fig. 1):
///
/// 1. **Threat library creation** — takes stock of the library contents.
/// 2. **Safety concern identification** — extracts concerns from the HARA.
/// 3. **Attack description** — validates every authored attack description
///    against HARA and library, then checks deductive and inductive
///    coverage.
/// 4. **Attack implementation** — reported as a hand-off (the executable
///    side lives in `attack-engine`/`saseval-dsl`).
///
/// # Errors
///
/// Returns the first [`CoreError`] found while validating attack
/// descriptions; duplicate attack IDs are also rejected.
///
/// # Example
///
/// ```
/// use saseval_core::catalog::use_case_2;
/// use saseval_core::pipeline::run_pipeline;
/// use saseval_threat::builtin::automotive_library;
///
/// let report = run_pipeline(&use_case_2(), &automotive_library())?;
/// assert!(report.is_complete());
/// assert_eq!(report.attack_count, 29);
/// # Ok::<(), saseval_core::CoreError>(())
/// ```
pub fn run_pipeline(
    catalog: &UseCaseCatalog,
    library: &ThreatLibrary,
) -> Result<PipelineReport, CoreError> {
    run_pipeline_with_obs(catalog, library, &Obs::noop())
}

/// [`run_pipeline`] with metrics: each Fig. 1 stage is timed into its own
/// `pipeline.stage*_seconds` histogram, the whole run into
/// `pipeline.run_seconds`.
pub fn run_pipeline_with_obs(
    catalog: &UseCaseCatalog,
    library: &ThreatLibrary,
    obs: &Obs,
) -> Result<PipelineReport, CoreError> {
    let run_span = obs.span("pipeline.run_seconds");
    let mut stages = Vec::new();

    let stage1 = obs.span("pipeline.stage1_threat_library_seconds");
    let stats = library.stats();
    stages.push(StageTrace {
        stage: 1,
        title: "Threat Library Creation".to_owned(),
        summary: format!(
            "{} scenarios, {} assets, {} threat scenarios classified by STRIDE",
            stats.scenarios, stats.assets, stats.threat_scenarios
        ),
    });
    stage1.finish();

    let stage2 = obs.span("pipeline.stage2_safety_concerns_seconds");
    let concerns = identify_safety_concerns(&catalog.hara);
    stages.push(StageTrace {
        stage: 2,
        title: "Safety Concern Identification".to_owned(),
        summary: format!(
            "{} ratings ({}), {} safety concerns",
            catalog.hara.rating_count(),
            catalog.hara.distribution(),
            concerns.len()
        ),
    });
    stage2.finish();

    let stage3 = obs.span("pipeline.stage3_attack_description_seconds");
    let mut seen = std::collections::BTreeSet::new();
    for attack in &catalog.attacks {
        if !seen.insert(attack.id().clone()) {
            return Err(CoreError::DuplicateAttack(attack.id().clone()));
        }
        validate_attack(attack, catalog, library)?;
    }
    let deductive = deductive_coverage(&catalog.hara, &catalog.attacks);
    let inductive =
        inductive_coverage(library, &catalog.scenarios, &catalog.attacks, &catalog.justifications);
    stages.push(StageTrace {
        stage: 3,
        title: "Attack Description".to_owned(),
        summary: format!(
            "{} attack descriptions validated; deductive coverage {}; inductive coverage {:.0}%",
            catalog.attacks.len(),
            if deductive.is_complete() { "complete" } else { "INCOMPLETE" },
            inductive.coverage_ratio() * 100.0
        ),
    });
    stage3.finish();

    let stage4 = obs.span("pipeline.stage4_attack_implementation_seconds");
    stages.push(StageTrace {
        stage: 4,
        title: "Attack Implementation".to_owned(),
        summary: format!(
            "{} descriptions ready for compilation to executable test cases",
            catalog.attacks.len()
        ),
    });
    stage4.finish();

    obs.counter("pipeline.attacks_validated", catalog.attacks.len() as u64);
    run_span.finish();
    Ok(PipelineReport {
        use_case: catalog.name.clone(),
        stages,
        concerns,
        deductive,
        inductive,
        attack_count: catalog.attacks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{use_case_1, use_case_2};
    use saseval_threat::builtin::automotive_library;

    #[test]
    fn uc1_pipeline_complete() {
        let report = run_pipeline(&use_case_1(), &automotive_library()).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.attack_count, 23);
        assert_eq!(report.concerns.len(), 6);
        assert_eq!(report.stages.len(), 4);
        // All six safety goals are attacked (deductive).
        for goal in ["SG01", "SG02", "SG03", "SG04", "SG05", "SG06"] {
            assert!(report.deductive.attacks_for(goal) > 0, "goal {goal} uncovered");
        }
        // All construction-site threats are covered (inductive).
        assert_eq!(report.inductive.coverage_ratio(), 1.0);
    }

    #[test]
    fn uc2_pipeline_complete() {
        let report = run_pipeline(&use_case_2(), &automotive_library()).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.attack_count, 29);
        assert_eq!(report.concerns.len(), 4);
        assert_eq!(report.inductive.coverage_ratio(), 1.0);
    }

    #[test]
    fn asil_scales_attack_counts_uc2() {
        // RQ2: the ASIL D goal (SG01) receives the most attacks.
        let report = run_pipeline(&use_case_2(), &automotive_library()).unwrap();
        let sg01 = report.deductive.attacks_for("SG01");
        for goal in ["SG02", "SG03", "SG04"] {
            assert!(sg01 > report.deductive.attacks_for(goal));
        }
    }

    #[test]
    fn unknown_goal_rejected() {
        let mut catalog = use_case_1();
        let bad = AttackDescription::builder("AD99", "bad")
            .safety_goal("SG99")
            .threat_scenario("TS-2.1.4")
            .threat_type(saseval_types::ThreatType::DenialOfService)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap();
        catalog.attacks.push(bad);
        let err = run_pipeline(&catalog, &automotive_library()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownSafetyGoal { .. }));
    }

    #[test]
    fn unknown_threat_rejected() {
        let mut catalog = use_case_1();
        let bad = AttackDescription::builder("AD99", "bad")
            .safety_goal("SG01")
            .threat_scenario("TS-NOPE")
            .threat_type(saseval_types::ThreatType::DenialOfService)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap();
        catalog.attacks.push(bad);
        let err = run_pipeline(&catalog, &automotive_library()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownThreatScenario { .. }));
    }

    #[test]
    fn threat_type_mismatch_rejected() {
        let mut catalog = use_case_1();
        // TS-2.1.4 is DenialOfService; declare it Spoofing.
        let bad = AttackDescription::builder("AD99", "bad")
            .safety_goal("SG01")
            .threat_scenario("TS-2.1.4")
            .threat_type(saseval_types::ThreatType::Spoofing)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap();
        catalog.attacks.push(bad);
        let err = run_pipeline(&catalog, &automotive_library()).unwrap_err();
        assert!(matches!(err, CoreError::AttackTypeMismatch { .. }));
    }

    #[test]
    fn duplicate_attack_id_rejected() {
        let mut catalog = use_case_1();
        let dup = catalog.attacks[0].clone();
        catalog.attacks.push(dup);
        let err = run_pipeline(&catalog, &automotive_library()).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateAttack(_)));
    }

    #[test]
    fn pipeline_stages_timed() {
        let (obs, recorder) = Obs::memory();
        run_pipeline_with_obs(&use_case_1(), &automotive_library(), &obs).unwrap();
        let snapshot = recorder.snapshot();
        for stage in [
            "pipeline.stage1_threat_library_seconds",
            "pipeline.stage2_safety_concerns_seconds",
            "pipeline.stage3_attack_description_seconds",
            "pipeline.stage4_attack_implementation_seconds",
            "pipeline.run_seconds",
        ] {
            assert_eq!(snapshot.histogram(stage).map(|h| h.count), Some(1), "{stage}");
        }
        assert_eq!(snapshot.counter("pipeline.attacks_validated"), Some(23));
    }

    #[test]
    fn stage_trace_describes_fig1() {
        let report = run_pipeline(&use_case_1(), &automotive_library()).unwrap();
        let titles: Vec<&str> = report.stages.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(
            titles,
            [
                "Threat Library Creation",
                "Safety Concern Identification",
                "Attack Description",
                "Attack Implementation"
            ]
        );
        assert!(report.stages[1].summary.contains("29 ratings"));
    }
}
