//! Validation-report export: renders a use case's complete SaSeVAL
//! work products as a Markdown document — the deliverable a project would
//! hand to assessors (the paper's evaluation cites SECREDAS deliverable
//! D3-10, which is exactly this kind of document).

use std::fmt::Write as _;

use saseval_hara::render_worksheet;
use saseval_threat::ThreatLibrary;

use crate::catalog::UseCaseCatalog;
use crate::coverage::ThreatCoverage;
use crate::description::AttackDescription;
use crate::error::CoreError;
use crate::pipeline::run_pipeline;
use crate::report::TraceMatrix;

fn render_attack_card(out: &mut String, ad: &AttackDescription) {
    writeln!(out, "### {} — {}", ad.id(), ad.description()).expect("write");
    writeln!(out).expect("write");
    let goals: Vec<&str> = ad.safety_goals().iter().map(|g| g.as_str()).collect();
    writeln!(out, "| Field | Value |").expect("write");
    writeln!(out, "|---|---|").expect("write");
    if !goals.is_empty() {
        writeln!(out, "| SG IDs | {} |", goals.join(", ")).expect("write");
    }
    if let Some(interface) = ad.interface() {
        writeln!(out, "| Interface / ECU | {interface} |").expect("write");
    }
    writeln!(out, "| Link to Threat Library | {} |", ad.threat_scenario()).expect("write");
    writeln!(out, "| Types | Threat: {} - Attack: {} |", ad.threat_type(), ad.attack_type())
        .expect("write");
    writeln!(out, "| Precondition | {} |", ad.precondition()).expect("write");
    writeln!(out, "| Expected Measures | {} |", ad.expected_measures()).expect("write");
    writeln!(out, "| Attack Success | {} |", ad.attack_success()).expect("write");
    writeln!(out, "| Attack Fails | {} |", ad.attack_fails()).expect("write");
    if !ad.impl_comments().is_empty() {
        writeln!(out, "| Attack impl. comments | {} |", ad.impl_comments()).expect("write");
    }
    if let Some(attacker) = ad.attacker() {
        writeln!(out, "| Attacker profile | {attacker} |").expect("write");
    }
    if ad.is_privacy_relevant() {
        writeln!(out, "| Privacy relevant | yes |").expect("write");
    }
    writeln!(out).expect("write");
}

/// Renders the complete validation report for a use case: pipeline trace,
/// HARA worksheet, traceability matrix, inductive coverage and one
/// Table VI/VII-style card per attack description.
///
/// # Errors
///
/// Returns a [`CoreError`] if the catalog fails pipeline validation.
pub fn render_validation_report(
    catalog: &UseCaseCatalog,
    library: &ThreatLibrary,
) -> Result<String, CoreError> {
    let report = run_pipeline(catalog, library)?;
    let mut out = String::new();
    writeln!(out, "# SaSeVAL validation report — {}", catalog.name).expect("write");
    writeln!(out).expect("write");

    writeln!(out, "## Process trace (Fig. 1)").expect("write");
    writeln!(out).expect("write");
    for stage in &report.stages {
        writeln!(out, "{}. **{}** — {}", stage.stage, stage.title, stage.summary).expect("write");
    }
    writeln!(out).expect("write");
    writeln!(
        out,
        "RQ1 completeness: **{}** (deductive: {}, inductive: {:.0}%)",
        if report.is_complete() { "PASS" } else { "FAIL" },
        if report.deductive.is_complete() { "complete" } else { "incomplete" },
        report.inductive.coverage_ratio() * 100.0
    )
    .expect("write");
    writeln!(out).expect("write");

    out.push_str(&render_worksheet(&catalog.hara));
    writeln!(out).expect("write");

    writeln!(out, "## Traceability matrix").expect("write");
    writeln!(out).expect("write");
    let matrix = TraceMatrix::from_catalog(catalog);
    writeln!(out, "| Attack | Safety goals | Threat | Threat type | Attack type |").expect("write");
    writeln!(out, "|---|---|---|---|---|").expect("write");
    for row in &matrix.rows {
        let goals: Vec<&str> = row.safety_goals.iter().map(|g| g.as_str()).collect();
        writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            row.attack,
            if goals.is_empty() { "(privacy)".to_owned() } else { goals.join(", ") },
            row.threat_scenario,
            row.threat_type,
            row.attack_type
        )
        .expect("write");
    }
    writeln!(out).expect("write");

    writeln!(out, "## Safety goal × attack type combinations").expect("write");
    writeln!(out).expect("write");
    out.push_str(&matrix.render_goal_attack_type_matrix());
    writeln!(out).expect("write");

    writeln!(out, "## Inductive threat coverage").expect("write");
    writeln!(out).expect("write");
    for (threat, coverage) in &report.inductive.threats {
        let status = match coverage {
            ThreatCoverage::Attacked(attacks) => {
                let ids: Vec<&str> = attacks.iter().map(|a| a.as_str()).collect();
                format!("attacked by {}", ids.join(", "))
            }
            ThreatCoverage::Justified(rationale) => format!("justified: {rationale}"),
            ThreatCoverage::Uncovered => "UNCOVERED".to_owned(),
        };
        writeln!(out, "- `{threat}` — {status}").expect("write");
    }
    writeln!(out).expect("write");

    writeln!(out, "## Attack descriptions").expect("write");
    writeln!(out).expect("write");
    for ad in &catalog.attacks {
        render_attack_card(&mut out, ad);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{use_case_1, use_case_2};
    use saseval_threat::builtin::automotive_library;

    #[test]
    fn uc1_report_renders_completely() {
        let report = render_validation_report(&use_case_1(), &automotive_library()).unwrap();
        assert!(report.contains("# SaSeVAL validation report — Use Case I"));
        assert!(report.contains("RQ1 completeness: **PASS**"));
        // Worksheet, matrix and cards all present.
        assert!(report.contains("| Rat01 |"));
        assert!(report.contains("| AD20 | SG01, SG02, SG03 | TS-2.1.4 |"));
        assert!(report.contains("### AD20 — Attacker tries to overload the ECU"));
        assert!(report.contains("| Attack Success | Shutdown of service |"));
        // All 23 cards rendered.
        assert_eq!(report.matches("### AD").count(), 23);
        assert!(!report.contains("UNCOVERED"));
    }

    #[test]
    fn uc2_report_marks_privacy_attacks() {
        let report = render_validation_report(&use_case_2(), &automotive_library()).unwrap();
        assert_eq!(report.matches("### AD").count(), 29);
        assert_eq!(report.matches("| Privacy relevant | yes |").count(), 2);
        assert!(report.contains("| AD28 | (privacy) |"));
    }

    #[test]
    fn invalid_catalog_propagates_error() {
        let mut catalog = use_case_1();
        catalog.attacks.push(catalog.attacks[0].clone()); // duplicate ID
        assert!(render_validation_report(&catalog, &automotive_library()).is_err());
    }
}
