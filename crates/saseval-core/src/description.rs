//! Attack descriptions — the central artifact of SaSeVAL (paper §III-C).

use serde::{Deserialize, Serialize};

use saseval_types::{
    AttackDescriptionId, AttackType, AttackerProfile, InterfaceId, SafetyGoalId, ThreatScenarioId,
    ThreatType,
};

use crate::error::CoreError;

/// A structured attack description on the concept level.
///
/// Per §III-C an attack description must contain: the **attack
/// description** text (with attacker motivation and goal), the
/// **precondition** (the situation in which the attack can start), the
/// **expected measures** (security controls or safety fallbacks), the
/// **attack success** criteria, the **attack fails** criteria, and
/// **attack implementation comments** — plus the explicit links to the
/// safety goal(s) and the threat scenario it addresses, and the targeted
/// interface/ECU (Tables VI and VII).
///
/// The builder validates all of this so that a constructed description is
/// precise and reproducible (RQ3).
///
/// # Example — paper Table VI, attack AD20
///
/// ```
/// use saseval_core::AttackDescription;
/// use saseval_types::{AttackType, ThreatType};
///
/// let ad20 = AttackDescription::builder(
///     "AD20",
///     "Attacker tries to overload the ECU by packet flooding",
/// )
/// .safety_goal("SG01")
/// .safety_goal("SG02")
/// .safety_goal("SG03")
/// .interface("OBU_RSU")
/// .threat_scenario("TS-2.1.4")
/// .threat_type(ThreatType::DenialOfService)
/// .attack_type(AttackType::Disable)
/// .precondition("Vehicle is approaching the construction site")
/// .expected_measures("Message counter for broken messages")
/// .attack_success("Shutdown of service")
/// .attack_fails("Security control identifies unwanted sender, enforces change of frequency")
/// .impl_comments(
///     "Create an authenticated sender as attacker besides the original sender; the attacker \
///      sender should send extra messages with high frequency or in a chaotic way",
/// )
/// .build()?;
/// assert_eq!(ad20.safety_goals().len(), 3);
/// # Ok::<(), saseval_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackDescription {
    id: AttackDescriptionId,
    description: String,
    safety_goals: Vec<SafetyGoalId>,
    interface: Option<InterfaceId>,
    threat_scenario: ThreatScenarioId,
    threat_type: ThreatType,
    attack_type: AttackType,
    precondition: String,
    expected_measures: String,
    attack_success: String,
    attack_fails: String,
    impl_comments: String,
    attacker: Option<AttackerProfile>,
    privacy_relevant: bool,
}

impl AttackDescription {
    /// Starts building an attack description.
    pub fn builder(
        id: impl AsRef<str>,
        description: impl Into<String>,
    ) -> AttackDescriptionBuilder {
        AttackDescriptionBuilder {
            id: id.as_ref().to_owned(),
            description: description.into(),
            safety_goals: Vec::new(),
            interface: None,
            threat_scenario: None,
            threat_type: None,
            attack_type: None,
            precondition: String::new(),
            expected_measures: String::new(),
            attack_success: String::new(),
            attack_fails: String::new(),
            impl_comments: String::new(),
            attacker: None,
            privacy_relevant: false,
        }
    }

    /// The attack description's identifier (e.g. `AD20`).
    pub fn id(&self) -> &AttackDescriptionId {
        &self.id
    }

    /// The concept-level attack description text.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The safety goals whose violation this attack attempts.
    pub fn safety_goals(&self) -> &[SafetyGoalId] {
        &self.safety_goals
    }

    /// The targeted interface/ECU (e.g. `OBU_RSU`), if specified.
    pub fn interface(&self) -> Option<&InterfaceId> {
        self.interface.as_ref()
    }

    /// The linked threat-library entry.
    pub fn threat_scenario(&self) -> &ThreatScenarioId {
        &self.threat_scenario
    }

    /// The STRIDE threat type (the "Threat:" half of the Types row).
    pub fn threat_type(&self) -> ThreatType {
        self.threat_type
    }

    /// The attack type (the "Attack:" half of the Types row).
    pub fn attack_type(&self) -> AttackType {
        self.attack_type
    }

    /// The situation in which the attack can get started.
    pub fn precondition(&self) -> &str {
        &self.precondition
    }

    /// The security controls or safety measures expected to react.
    pub fn expected_measures(&self) -> &str {
        &self.expected_measures
    }

    /// The criteria under which the attack counts as successful (safety
    /// goal violated).
    pub fn attack_success(&self) -> &str {
        &self.attack_success
    }

    /// The criteria by which a failed (mitigated) attack is detected.
    pub fn attack_fails(&self) -> &str {
        &self.attack_fails
    }

    /// Comments for the upcoming attack implementation.
    pub fn impl_comments(&self) -> &str {
        &self.impl_comments
    }

    /// The assumed attacker profile, if restricted.
    pub fn attacker(&self) -> Option<AttackerProfile> {
        self.attacker
    }

    /// Whether this attack addresses privacy rather than (only) safety —
    /// Use Case II reports "additionally two attacks, which deal with
    /// privacy issues" (§IV-B).
    pub fn is_privacy_relevant(&self) -> bool {
        self.privacy_relevant
    }

    /// Re-validates the builder invariants — required after deserializing
    /// a description from external data, since serde bypasses
    /// [`AttackDescriptionBuilder::build`]'s checks. The pipeline calls
    /// this on every catalog attack.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`CoreError`].
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.safety_goals.is_empty() && !self.privacy_relevant {
            return Err(CoreError::NoSafetyGoal(self.id.clone()));
        }
        if self.precondition.trim().is_empty() {
            return Err(CoreError::MissingPrecondition(self.id.clone()));
        }
        if self.attack_success.trim().is_empty() {
            return Err(CoreError::MissingSuccessCriteria(self.id.clone()));
        }
        if self.attack_fails.trim().is_empty() {
            return Err(CoreError::MissingFailCriteria(self.id.clone()));
        }
        if !saseval_types::attack_types_for(self.threat_type).contains(&self.attack_type) {
            return Err(CoreError::AttackTypeMismatch {
                attack: self.id.clone(),
                threat: self.threat_scenario.clone(),
            });
        }
        Ok(())
    }
}

/// Builder for [`AttackDescription`] (see [`AttackDescription::builder`]).
#[derive(Debug, Clone)]
pub struct AttackDescriptionBuilder {
    id: String,
    description: String,
    safety_goals: Vec<String>,
    interface: Option<String>,
    threat_scenario: Option<String>,
    threat_type: Option<ThreatType>,
    attack_type: Option<AttackType>,
    precondition: String,
    expected_measures: String,
    attack_success: String,
    attack_fails: String,
    impl_comments: String,
    attacker: Option<AttackerProfile>,
    privacy_relevant: bool,
}

impl AttackDescriptionBuilder {
    /// Links a safety goal (repeatable).
    pub fn safety_goal(mut self, goal: impl AsRef<str>) -> Self {
        self.safety_goals.push(goal.as_ref().to_owned());
        self
    }

    /// Sets the targeted interface/ECU.
    pub fn interface(mut self, interface: impl AsRef<str>) -> Self {
        self.interface = Some(interface.as_ref().to_owned());
        self
    }

    /// Links the threat-library entry.
    pub fn threat_scenario(mut self, threat: impl AsRef<str>) -> Self {
        self.threat_scenario = Some(threat.as_ref().to_owned());
        self
    }

    /// Sets the STRIDE threat type.
    pub fn threat_type(mut self, threat_type: ThreatType) -> Self {
        self.threat_type = Some(threat_type);
        self
    }

    /// Sets the attack type.
    pub fn attack_type(mut self, attack_type: AttackType) -> Self {
        self.attack_type = Some(attack_type);
        self
    }

    /// Sets the precondition.
    pub fn precondition(mut self, precondition: impl Into<String>) -> Self {
        self.precondition = precondition.into();
        self
    }

    /// Sets the expected measures.
    pub fn expected_measures(mut self, measures: impl Into<String>) -> Self {
        self.expected_measures = measures.into();
        self
    }

    /// Sets the attack-success criteria.
    pub fn attack_success(mut self, criteria: impl Into<String>) -> Self {
        self.attack_success = criteria.into();
        self
    }

    /// Sets the attack-fails criteria.
    pub fn attack_fails(mut self, criteria: impl Into<String>) -> Self {
        self.attack_fails = criteria.into();
        self
    }

    /// Sets the implementation comments.
    pub fn impl_comments(mut self, comments: impl Into<String>) -> Self {
        self.impl_comments = comments.into();
        self
    }

    /// Sets the assumed attacker profile.
    pub fn attacker(mut self, attacker: AttackerProfile) -> Self {
        self.attacker = Some(attacker);
        self
    }

    /// Marks the attack as privacy-relevant (it may then omit safety-goal
    /// links).
    pub fn privacy_relevant(mut self) -> Self {
        self.privacy_relevant = true;
        self
    }

    /// Builds and validates the attack description.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Id`] for malformed identifiers.
    /// * [`CoreError::NoSafetyGoal`] if no goal is linked and the attack is
    ///   not privacy-relevant.
    /// * [`CoreError::NoThreatScenario`] if no threat scenario is linked.
    /// * [`CoreError::MissingPrecondition`] /
    ///   [`CoreError::MissingSuccessCriteria`] /
    ///   [`CoreError::MissingFailCriteria`] if the RQ3 reproducibility
    ///   fields are empty.
    /// * [`CoreError::AttackTypeMismatch`] if the attack type is not a
    ///   Table IV manifestation of the declared threat type.
    pub fn build(self) -> Result<AttackDescription, CoreError> {
        let id = AttackDescriptionId::new(self.id)?;
        if self.safety_goals.is_empty() && !self.privacy_relevant {
            return Err(CoreError::NoSafetyGoal(id));
        }
        let threat_scenario = match self.threat_scenario {
            Some(t) => ThreatScenarioId::new(t)?,
            None => return Err(CoreError::NoThreatScenario(id)),
        };
        if self.precondition.trim().is_empty() {
            return Err(CoreError::MissingPrecondition(id));
        }
        if self.attack_success.trim().is_empty() {
            return Err(CoreError::MissingSuccessCriteria(id));
        }
        if self.attack_fails.trim().is_empty() {
            return Err(CoreError::MissingFailCriteria(id));
        }
        // Threat/attack types default from each other where unambiguous.
        let (threat_type, attack_type) = match (self.threat_type, self.attack_type) {
            (Some(tt), Some(at)) => (tt, at),
            (Some(tt), None) => (tt, saseval_types::attack_types_for(tt)[0]),
            (None, Some(at)) => (at.threat_types()[0], at),
            (None, None) => {
                return Err(CoreError::AttackTypeMismatch { attack: id, threat: threat_scenario })
            }
        };
        if !saseval_types::attack_types_for(threat_type).contains(&attack_type) {
            return Err(CoreError::AttackTypeMismatch { attack: id, threat: threat_scenario });
        }
        let safety_goals =
            self.safety_goals.into_iter().map(SafetyGoalId::new).collect::<Result<Vec<_>, _>>()?;
        let interface = self.interface.map(InterfaceId::new).transpose()?;
        Ok(AttackDescription {
            id,
            description: self.description,
            safety_goals,
            interface,
            threat_scenario,
            threat_type,
            attack_type,
            precondition: self.precondition,
            expected_measures: self.expected_measures,
            attack_success: self.attack_success,
            attack_fails: self.attack_fails,
            impl_comments: self.impl_comments,
            attacker: self.attacker,
            privacy_relevant: self.privacy_relevant,
        })
    }
}

/// A written justification for a threat that is deliberately *not* covered
/// by any attack description (paper §III: "the test engineer should
/// consider either creating an additional attack description or writing a
/// justification on why the threat is not applied for the given SUT").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Justification {
    threat_scenario: ThreatScenarioId,
    rationale: String,
    #[serde(default)]
    superseded_by: Option<ThreatScenarioId>,
}

impl Justification {
    /// Creates a justification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Id`] if the threat-scenario ID is malformed.
    pub fn new(
        threat_scenario: impl AsRef<str>,
        rationale: impl Into<String>,
    ) -> Result<Self, CoreError> {
        Ok(Justification {
            threat_scenario: ThreatScenarioId::new(threat_scenario.as_ref())?,
            rationale: rationale.into(),
            superseded_by: None,
        })
    }

    /// Marks this justification as superseded by the justification
    /// covering `threat_scenario` (catalog revisions retire a rationale
    /// by pointing at its replacement instead of deleting history).
    /// Supersession chains must be acyclic; the trace-graph analyzer
    /// reports cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Id`] if the threat-scenario ID is malformed.
    pub fn superseded_by(mut self, threat_scenario: impl AsRef<str>) -> Result<Self, CoreError> {
        self.superseded_by = Some(ThreatScenarioId::new(threat_scenario.as_ref())?);
        Ok(self)
    }

    /// The justified (deliberately untested) threat scenario.
    pub fn threat_scenario(&self) -> &ThreatScenarioId {
        &self.threat_scenario
    }

    /// Why the threat is not applied for the given SUT.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }

    /// The threat scenario whose justification replaces this one, if
    /// this rationale has been retired.
    pub fn superseding(&self) -> Option<&ThreatScenarioId> {
        self.superseded_by.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> AttackDescriptionBuilder {
        AttackDescription::builder("AD01", "attack")
            .safety_goal("SG01")
            .threat_scenario("TS-1")
            .threat_type(ThreatType::DenialOfService)
            .attack_type(AttackType::DenialOfService)
            .precondition("vehicle driving")
            .attack_success("service down")
            .attack_fails("sender isolated")
    }

    #[test]
    fn minimal_builds() {
        let ad = minimal().build().unwrap();
        assert_eq!(ad.id().as_str(), "AD01");
        assert_eq!(ad.threat_type(), ThreatType::DenialOfService);
        assert!(!ad.is_privacy_relevant());
        assert_eq!(ad.attacker(), None);
    }

    #[test]
    fn missing_fields_rejected() {
        let err = AttackDescription::builder("AD02", "x")
            .threat_scenario("TS-1")
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::NoSafetyGoal(_)));

        let err = AttackDescription::builder("AD02", "x")
            .safety_goal("SG01")
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::NoThreatScenario(_)));

        let err = minimal().precondition("  ").build().unwrap_err();
        assert!(matches!(err, CoreError::MissingPrecondition(_)));
        let err = minimal().attack_success("").build().unwrap_err();
        assert!(matches!(err, CoreError::MissingSuccessCriteria(_)));
        let err = minimal().attack_fails("").build().unwrap_err();
        assert!(matches!(err, CoreError::MissingFailCriteria(_)));
    }

    #[test]
    fn privacy_attack_may_omit_goals() {
        let ad = AttackDescription::builder("AD28", "profile building")
            .privacy_relevant()
            .threat_scenario("TS-BLE-TRACK")
            .threat_type(ThreatType::InformationDisclosure)
            .attack_type(AttackType::Eavesdropping)
            .precondition("vehicle parked in public")
            .attack_success("usage profile reconstructed")
            .attack_fails("advertisements unlinkable")
            .build()
            .unwrap();
        assert!(ad.is_privacy_relevant());
        assert!(ad.safety_goals().is_empty());
    }

    #[test]
    fn attack_type_must_match_threat_type() {
        let err = minimal().attack_type(AttackType::Replay).build().unwrap_err();
        assert!(matches!(err, CoreError::AttackTypeMismatch { .. }));
    }

    #[test]
    fn attack_type_defaults_from_threat_type() {
        let ad = AttackDescription::builder("AD03", "x")
            .safety_goal("SG01")
            .threat_scenario("TS-1")
            .threat_type(ThreatType::Spoofing)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap();
        assert_eq!(ad.attack_type(), AttackType::FakeMessages);
    }

    #[test]
    fn threat_type_defaults_from_attack_type() {
        let ad = AttackDescription::builder("AD04", "x")
            .safety_goal("SG01")
            .threat_scenario("TS-1")
            .attack_type(AttackType::Jamming)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap();
        assert_eq!(ad.threat_type(), ThreatType::DenialOfService);
    }

    #[test]
    fn neither_type_rejected() {
        let err = AttackDescription::builder("AD05", "x")
            .safety_goal("SG01")
            .threat_scenario("TS-1")
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::AttackTypeMismatch { .. }));
    }

    #[test]
    fn validate_catches_serde_bypass() {
        let ad = minimal().build().unwrap();
        assert!(ad.validate().is_ok());
        // Deserialize a JSON blob the builder would reject: Replay is not
        // a Table IV manifestation of Denial of service, and the
        // precondition is blank.
        let json = serde_json::to_string(&ad).unwrap();
        let tampered =
            json.replace("\"attack_type\":\"DenialOfService\"", "\"attack_type\":\"Replay\"");
        let bypassed: AttackDescription = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(bypassed.validate(), Err(CoreError::AttackTypeMismatch { .. })));
        let blank = json.replace("\"precondition\":\"vehicle driving\"", "\"precondition\":\"\"");
        let bypassed: AttackDescription = serde_json::from_str(&blank).unwrap();
        assert!(matches!(bypassed.validate(), Err(CoreError::MissingPrecondition(_))));
    }

    #[test]
    fn justification_round_trip() {
        let j = Justification::new("TS-9", "asset not present in this SUT variant").unwrap();
        assert_eq!(j.threat_scenario().as_str(), "TS-9");
        assert!(j.rationale().contains("variant"));
        assert!(Justification::new("bad id", "x").is_err());
    }

    #[test]
    fn attacker_profile_recorded() {
        let ad = minimal().attacker(AttackerProfile::RemoteAttacker).build().unwrap();
        assert_eq!(ad.attacker(), Some(AttackerProfile::RemoteAttacker));
    }
}
