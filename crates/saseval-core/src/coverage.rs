//! Coverage analysis — SaSeVAL's completeness argument (RQ1, paper §III).
//!
//! Two complementary checks:
//!
//! * **Deductive** ([`deductive_coverage`]): top-down from safety. Every
//!   safety concern (ASIL-rated safety goal) must be addressed by at least
//!   one attack description. "This deductive approach guarantees that the
//!   system is tested against critical unwanted effects."
//! * **Inductive** ([`inductive_coverage`]): bottom-up from threats. Every
//!   threat in the library (restricted to the SUT's scenarios) must be
//!   covered by an attack description or carry a written justification.
//!   "This inductive approach contributes to addressing all threats."

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use saseval_hara::Hara;
use saseval_threat::ThreatLibrary;
use saseval_types::{AttackDescriptionId, SafetyGoalId, ScenarioId, ThreatScenarioId};

use crate::description::{AttackDescription, Justification};

/// Result of the deductive (safety-goal-driven) coverage check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeductiveReport {
    /// Safety goals with at least one attack description, and which.
    pub covered: BTreeMap<SafetyGoalId, Vec<AttackDescriptionId>>,
    /// ASIL-rated safety goals without any attack description.
    pub uncovered: Vec<SafetyGoalId>,
}

impl DeductiveReport {
    /// Whether every ASIL-rated safety goal traces to at least one attack.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// Number of attack descriptions addressing `goal` (0 if none).
    ///
    /// Accepts the typed [`SafetyGoalId`] or anything string-like, so
    /// callers holding a typed ID need not round-trip through `&str`.
    pub fn attacks_for(&self, goal: impl AsRef<str>) -> usize {
        self.covered.get(goal.as_ref()).map_or(0, Vec::len)
    }

    /// The attack descriptions addressing `goal`, if it is covered.
    pub fn attacks_addressing(&self, goal: impl AsRef<str>) -> Option<&[AttackDescriptionId]> {
        self.covered.get(goal.as_ref()).map(Vec::as_slice)
    }
}

/// Checks that every ASIL-rated safety goal of `hara` is addressed by at
/// least one of `attacks`.
///
/// Goals with only QM coverage need no security validation and are
/// excluded, matching [`crate::identify_safety_concerns`].
pub fn deductive_coverage(hara: &Hara, attacks: &[AttackDescription]) -> DeductiveReport {
    let mut covered: BTreeMap<SafetyGoalId, Vec<AttackDescriptionId>> = BTreeMap::new();
    let mut uncovered = Vec::new();
    for goal in hara.safety_goals() {
        if hara.goal_asil(goal).is_none() {
            continue;
        }
        let addressing: Vec<AttackDescriptionId> = attacks
            .iter()
            .filter(|ad| ad.safety_goals().contains(goal.id()))
            .map(|ad| ad.id().clone())
            .collect();
        if addressing.is_empty() {
            uncovered.push(goal.id().clone());
        } else {
            covered.insert(goal.id().clone(), addressing);
        }
    }
    DeductiveReport { covered, uncovered }
}

/// Coverage status of one threat scenario in the inductive check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreatCoverage {
    /// Covered by these attack descriptions.
    Attacked(Vec<AttackDescriptionId>),
    /// Deliberately not attacked, with a written justification.
    Justified(String),
    /// Neither attacked nor justified — a completeness gap.
    Uncovered,
}

/// Result of the inductive (threat-driven) coverage check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InductiveReport {
    /// Per-threat coverage status, in threat-ID order.
    pub threats: BTreeMap<ThreatScenarioId, ThreatCoverage>,
    /// Threats that are attacked *and* carry a justification — the
    /// justification predates the attacks and should be retired.
    #[serde(default)]
    pub stale_justifications: Vec<ThreatScenarioId>,
    /// Justifications referencing threats the library does not contain.
    #[serde(default)]
    pub dangling_justifications: Vec<ThreatScenarioId>,
}

impl InductiveReport {
    /// Whether every threat is attacked or justified.
    pub fn is_complete(&self) -> bool {
        !self.threats.values().any(|c| matches!(c, ThreatCoverage::Uncovered))
    }

    /// Coverage status of one threat, by typed ID or anything string-like.
    pub fn coverage_of(&self, threat: impl AsRef<str>) -> Option<&ThreatCoverage> {
        self.threats.get(threat.as_ref())
    }

    /// The uncovered threats.
    pub fn uncovered(&self) -> impl Iterator<Item = &ThreatScenarioId> {
        self.threats
            .iter()
            .filter(|(_, c)| matches!(c, ThreatCoverage::Uncovered))
            .map(|(id, _)| id)
    }

    /// Counts of (attacked, justified, uncovered) threats.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for cov in self.threats.values() {
            match cov {
                ThreatCoverage::Attacked(_) => c.0 += 1,
                ThreatCoverage::Justified(_) => c.1 += 1,
                ThreatCoverage::Uncovered => c.2 += 1,
            }
        }
        c
    }

    /// Fraction of threats covered (attacked or justified); 1.0 for an
    /// empty threat set.
    pub fn coverage_ratio(&self) -> f64 {
        if self.threats.is_empty() {
            return 1.0;
        }
        let (a, j, _) = self.counts();
        (a + j) as f64 / self.threats.len() as f64
    }
}

/// Checks that every threat scenario of `library` belonging to one of
/// `scenarios` (all threats if `scenarios` is empty) is covered by an
/// attack description or a justification.
///
/// Beyond the per-threat classification, the report records two artifact
/// hygiene findings the diagnostics tooling builds on: justifications for
/// threats that are *also* attacked (stale) and justifications for
/// threats the library does not contain (dangling).
pub fn inductive_coverage(
    library: &ThreatLibrary,
    scenarios: &[ScenarioId],
    attacks: &[AttackDescription],
    justifications: &[Justification],
) -> InductiveReport {
    let scenario_filter: BTreeSet<&ScenarioId> = scenarios.iter().collect();
    let mut threats = BTreeMap::new();
    let mut stale_justifications = Vec::new();
    for threat in library.threat_scenarios() {
        if !scenario_filter.is_empty() {
            match threat.scenario() {
                Some(sc) if scenario_filter.contains(sc) => {}
                _ => continue,
            }
        }
        let attacking: Vec<AttackDescriptionId> = attacks
            .iter()
            .filter(|ad| ad.threat_scenario() == threat.id())
            .map(|ad| ad.id().clone())
            .collect();
        let justified = justifications.iter().find(|j| j.threat_scenario() == threat.id());
        let coverage = if !attacking.is_empty() {
            if justified.is_some() {
                stale_justifications.push(threat.id().clone());
            }
            ThreatCoverage::Attacked(attacking)
        } else if let Some(j) = justified {
            ThreatCoverage::Justified(j.rationale().to_owned())
        } else {
            ThreatCoverage::Uncovered
        };
        threats.insert(threat.id().clone(), coverage);
    }
    let dangling_justifications: Vec<ThreatScenarioId> = justifications
        .iter()
        .map(Justification::threat_scenario)
        .filter(|ts| library.threat_scenario(ts.as_str()).is_none())
        .cloned()
        .collect();
    InductiveReport { threats, stale_justifications, dangling_justifications }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::AttackDescription;
    use saseval_hara::{HazardRating, ItemFunction, SafetyGoal};
    use saseval_threat::builtin::{automotive_library, SC_KEYLESS};
    use saseval_types::{AttackType, Controllability, Exposure, FailureMode, Severity, ThreatType};

    fn tiny_hara() -> Hara {
        let mut hara = Hara::new("item");
        hara.add_function(ItemFunction::new("F1", "f").unwrap()).unwrap();
        hara.add_rating(
            HazardRating::builder("R1", "F1", FailureMode::No)
                .hazard("h")
                .rate(Severity::S3, Exposure::E4, Controllability::C3)
                .build()
                .unwrap(),
        )
        .unwrap();
        hara.add_rating(
            HazardRating::builder("R2", "F1", FailureMode::More)
                .hazard("h")
                .rate(Severity::S1, Exposure::E1, Controllability::C1)
                .build()
                .unwrap(),
        )
        .unwrap();
        hara.add_safety_goal(SafetyGoal::builder("SG01", "g1").covers("R1").build().unwrap())
            .unwrap();
        hara.add_safety_goal(SafetyGoal::builder("SG02", "g2 (qm)").covers("R2").build().unwrap())
            .unwrap();
        hara
    }

    fn attack(
        id: &str,
        goal: &str,
        threat: &str,
        at: AttackType,
        tt: ThreatType,
    ) -> AttackDescription {
        AttackDescription::builder(id, "attack")
            .safety_goal(goal)
            .threat_scenario(threat)
            .threat_type(tt)
            .attack_type(at)
            .precondition("p")
            .attack_success("s")
            .attack_fails("f")
            .build()
            .unwrap()
    }

    #[test]
    fn deductive_detects_gap_and_coverage() {
        let hara = tiny_hara();
        let report = deductive_coverage(&hara, &[]);
        assert!(!report.is_complete());
        assert_eq!(report.uncovered, ["SG01".parse().unwrap()]);

        let ads = [attack(
            "AD1",
            "SG01",
            "TS-X",
            AttackType::DenialOfService,
            ThreatType::DenialOfService,
        )];
        let report = deductive_coverage(&hara, &ads);
        assert!(report.is_complete());
        assert_eq!(report.attacks_for("SG01"), 1);
        assert_eq!(report.attacks_for("SG02"), 0); // QM goal, excluded
    }

    #[test]
    fn inductive_classifies_all_three_states() {
        let lib = automotive_library();
        let scenarios = [ScenarioId::new(SC_KEYLESS).unwrap()];
        let ads =
            [attack("AD1", "SG01", "TS-BLE-REPLAY", AttackType::Replay, ThreatType::Repudiation)];
        let justs = [Justification::new("TS-BLE-TRACK", "privacy handled separately").unwrap()];
        let report = inductive_coverage(&lib, &scenarios, &ads, &justs);
        assert!(!report.is_complete());
        let (attacked, justified, uncovered) = report.counts();
        assert_eq!(attacked, 1);
        assert_eq!(justified, 1);
        assert!(uncovered >= 4);
        assert!(report.coverage_ratio() < 1.0);
        assert!(report.uncovered().any(|t| t.as_str() == "TS-BLE-FLOOD"));
    }

    #[test]
    fn empty_scenario_filter_means_whole_library() {
        let lib = automotive_library();
        let report = inductive_coverage(&lib, &[], &[], &[]);
        assert_eq!(report.threats.len(), lib.stats().threat_scenarios);
        assert_eq!(report.coverage_ratio(), 0.0);
    }

    #[test]
    fn empty_threat_set_is_fully_covered() {
        let lib = ThreatLibrary::new();
        let report = inductive_coverage(&lib, &[], &[], &[]);
        assert!(report.is_complete());
        assert_eq!(report.coverage_ratio(), 1.0);
    }

    #[test]
    fn attacks_for_accepts_typed_and_borrowed_ids() {
        let hara = tiny_hara();
        let ads = [attack(
            "AD1",
            "SG01",
            "TS-X",
            AttackType::DenialOfService,
            ThreatType::DenialOfService,
        )];
        let report = deductive_coverage(&hara, &ads);
        let typed = SafetyGoalId::new("SG01").unwrap();
        assert_eq!(report.attacks_for(&typed), 1);
        assert_eq!(report.attacks_for("SG01"), 1);
        assert_eq!(report.attacks_addressing(&typed).map(<[_]>::len), Some(1));
        assert!(report.attacks_addressing("SG02").is_none());
    }

    #[test]
    fn stale_justification_detected() {
        let lib = automotive_library();
        let scenarios = [ScenarioId::new(SC_KEYLESS).unwrap()];
        let ads =
            [attack("AD1", "SG01", "TS-BLE-REPLAY", AttackType::Replay, ThreatType::Repudiation)];
        let justs = [Justification::new("TS-BLE-REPLAY", "covered elsewhere").unwrap()];
        let report = inductive_coverage(&lib, &scenarios, &ads, &justs);
        assert_eq!(report.stale_justifications, ["TS-BLE-REPLAY".parse().unwrap()]);
        assert!(matches!(
            report.coverage_of("TS-BLE-REPLAY"),
            Some(ThreatCoverage::Attacked(ids)) if ids.len() == 1
        ));
        assert!(report.dangling_justifications.is_empty());
    }

    #[test]
    fn dangling_justification_detected() {
        let lib = automotive_library();
        let justs = [Justification::new("TS-NO-SUCH-THREAT", "never existed").unwrap()];
        let report = inductive_coverage(&lib, &[], &[], &justs);
        assert_eq!(report.dangling_justifications, ["TS-NO-SUCH-THREAT".parse().unwrap()]);
        assert!(report.stale_justifications.is_empty());
        assert!(report.coverage_of("TS-NO-SUCH-THREAT").is_none());
    }
}
