//! Traceability reporting — the explicit safety-goal → threat → attack
//! links SaSeVAL maintains ("It traces safety goals to threats and to
//! attacks explicitly", paper abstract).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use saseval_types::{AttackDescriptionId, AttackType, SafetyGoalId, ThreatScenarioId, ThreatType};

use crate::catalog::UseCaseCatalog;

/// One row of the traceability matrix: an attack description with its
/// resolved links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// The attack description.
    pub attack: AttackDescriptionId,
    /// The safety goals it targets.
    pub safety_goals: Vec<SafetyGoalId>,
    /// The threat-library entry it exploits.
    pub threat_scenario: ThreatScenarioId,
    /// STRIDE classification.
    pub threat_type: ThreatType,
    /// Concrete attack type.
    pub attack_type: AttackType,
    /// Whether the attack is privacy-relevant.
    pub privacy: bool,
}

/// The full traceability matrix of a use case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMatrix {
    /// The use-case name.
    pub use_case: String,
    /// One row per attack description, in catalog order.
    pub rows: Vec<TraceRow>,
}

impl TraceMatrix {
    /// Builds the matrix from a use-case catalog.
    pub fn from_catalog(catalog: &UseCaseCatalog) -> Self {
        let rows = catalog
            .attacks
            .iter()
            .map(|a| TraceRow {
                attack: a.id().clone(),
                safety_goals: a.safety_goals().to_vec(),
                threat_scenario: a.threat_scenario().clone(),
                threat_type: a.threat_type(),
                attack_type: a.attack_type(),
                privacy: a.is_privacy_relevant(),
            })
            .collect();
        TraceMatrix { use_case: catalog.name.clone(), rows }
    }

    /// Attack counts per safety goal, in goal-ID order.
    pub fn attacks_per_goal(&self) -> BTreeMap<SafetyGoalId, usize> {
        let mut counts = BTreeMap::new();
        for row in &self.rows {
            for goal in &row.safety_goals {
                *counts.entry(goal.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Attack counts per STRIDE threat type.
    pub fn attacks_per_threat_type(&self) -> BTreeMap<ThreatType, usize> {
        let mut counts = BTreeMap::new();
        for row in &self.rows {
            *counts.entry(row.threat_type).or_insert(0) += 1;
        }
        counts
    }

    /// The (safety goal × attack type) combination matrix — the paper's
    /// §IV-A derivation grid ("We identified for each combination of
    /// safety goal and attack type the potential attacks").
    pub fn goal_attack_type_matrix(&self) -> BTreeMap<(SafetyGoalId, AttackType), usize> {
        let mut matrix = BTreeMap::new();
        for row in &self.rows {
            for goal in &row.safety_goals {
                *matrix.entry((goal.clone(), row.attack_type)).or_insert(0) += 1;
            }
        }
        matrix
    }

    /// Renders the combination matrix as a Markdown table (goals as rows,
    /// the attack types that occur as columns).
    pub fn render_goal_attack_type_matrix(&self) -> String {
        use std::collections::BTreeSet;
        let matrix = self.goal_attack_type_matrix();
        let goals: BTreeSet<&SafetyGoalId> = matrix.keys().map(|(g, _)| g).collect();
        let types: BTreeSet<AttackType> = matrix.keys().map(|(_, t)| *t).collect();
        let mut out = String::new();
        out.push_str("| goal \\ attack type |");
        for t in &types {
            out.push_str(&format!(" {t} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &types {
            out.push_str("---|");
        }
        out.push('\n');
        for goal in goals {
            out.push_str(&format!("| {goal} |"));
            for t in &types {
                let count = matrix.get(&(goal.clone(), *t)).copied().unwrap_or(0);
                if count == 0 {
                    out.push_str(" |");
                } else {
                    out.push_str(&format!(" {count} |"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TraceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Traceability matrix: {}", self.use_case)?;
        for row in &self.rows {
            let goals: Vec<&str> = row.safety_goals.iter().map(|g| g.as_str()).collect();
            writeln!(
                f,
                "  {} -> goals [{}] threat {} ({} / {}){}",
                row.attack,
                goals.join(" "),
                row.threat_scenario,
                row.threat_type,
                row.attack_type,
                if row.privacy { " [privacy]" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{use_case_1, use_case_2};

    #[test]
    fn matrix_covers_all_attacks() {
        let uc1 = use_case_1();
        let matrix = TraceMatrix::from_catalog(&uc1);
        assert_eq!(matrix.rows.len(), 23);
    }

    #[test]
    fn per_goal_counts_sum_to_goal_links() {
        let uc2 = use_case_2();
        let matrix = TraceMatrix::from_catalog(&uc2);
        let per_goal = matrix.attacks_per_goal();
        let total_links: usize = per_goal.values().sum();
        let expected: usize = uc2.attacks.iter().map(|a| a.safety_goals().len()).sum();
        assert_eq!(total_links, expected);
        // SG01 (ASIL D) dominates.
        assert!(per_goal["SG01"] > per_goal["SG04"]);
    }

    #[test]
    fn per_threat_type_counts() {
        let matrix = TraceMatrix::from_catalog(&use_case_1());
        let per_type = matrix.attacks_per_threat_type();
        let total: usize = per_type.values().sum();
        assert_eq!(total, 23);
        assert!(per_type[&ThreatType::DenialOfService] >= 3);
    }

    #[test]
    fn display_contains_links() {
        let matrix = TraceMatrix::from_catalog(&use_case_1());
        let text = matrix.to_string();
        assert!(text.contains("AD20"));
        assert!(text.contains("TS-2.1.4"));
    }

    #[test]
    fn goal_attack_type_matrix_counts() {
        let matrix = TraceMatrix::from_catalog(&use_case_1());
        let grid = matrix.goal_attack_type_matrix();
        // AD20 alone links {SG01, SG02, SG03} x Disable.
        let disable_cells: usize = grid
            .iter()
            .filter(|((_, t), _)| *t == saseval_types::AttackType::Disable)
            .map(|(_, c)| *c)
            .sum();
        assert!(disable_cells >= 3);
        // Total cells equal total goal links.
        let total: usize = grid.values().sum();
        let links: usize = matrix.rows.iter().map(|r| r.safety_goals.len()).sum();
        assert_eq!(total, links);
    }

    #[test]
    fn matrix_renders_markdown() {
        let matrix = TraceMatrix::from_catalog(&use_case_1());
        let table = matrix.render_goal_attack_type_matrix();
        assert!(table.starts_with("| goal \\ attack type |"));
        assert!(table.contains("| SG01 |"));
        assert!(table.contains("Disable"));
    }

    #[test]
    fn privacy_rows_flagged() {
        let matrix = TraceMatrix::from_catalog(&use_case_2());
        assert_eq!(matrix.rows.iter().filter(|r| r.privacy).count(), 2);
    }
}
