//! Step 2 — safety concern identification (paper §III-B).

use serde::{Deserialize, Serialize};

use saseval_hara::Hara;
use saseval_types::{AsilLevel, Ftti, SafetyGoalId};

/// A safety concern: the validation test objective extracted from a safety
/// goal.
///
/// "The safety concern is determined via safety analysis. It expresses
/// which kind of accident may happen, if it is not fulfilled. It serves as
/// test objective that the validation should address." (§III-B)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyConcern {
    goal: SafetyGoalId,
    statement: String,
    asil: AsilLevel,
    ftti: Option<Ftti>,
    safe_state: String,
}

impl SafetyConcern {
    /// The underlying safety goal.
    pub fn goal(&self) -> &SafetyGoalId {
        &self.goal
    }

    /// The goal statement (what accident happens if violated).
    pub fn statement(&self) -> &str {
        &self.statement
    }

    /// The ASIL determining the test effort (RQ2).
    pub fn asil(&self) -> AsilLevel {
        self.asil
    }

    /// The reaction deadline for the SUT's measures, if assigned.
    pub fn ftti(&self) -> Option<Ftti> {
        self.ftti
    }

    /// The safe state the SUT must reach under attack.
    pub fn safe_state(&self) -> &str {
        &self.safe_state
    }

    /// The number of situation variations the validation should exercise
    /// for this concern — the paper justifies greater testing effort by
    /// higher ASIL (RQ2).
    pub fn test_effort(&self) -> u32 {
        self.asil.test_effort_weight()
    }
}

/// Extracts the safety concerns from a HARA: one per safety goal that
/// carries an ASIL, ordered by descending ASIL (highest integrity first),
/// ties broken by goal ID.
///
/// Goals covering only QM ratings yield no concern — they need no
/// safety-driven security validation.
///
/// # Example
///
/// ```
/// use saseval_core::identify_safety_concerns;
/// use saseval_core::catalog::use_case_1;
///
/// let uc1 = use_case_1();
/// let concerns = identify_safety_concerns(&uc1.hara);
/// assert_eq!(concerns.len(), 6);
/// // SG03 "Communicate Speed Limits safely" is ASIL D and sorts first.
/// assert_eq!(concerns[0].goal().as_str(), "SG03");
/// ```
pub fn identify_safety_concerns(hara: &Hara) -> Vec<SafetyConcern> {
    let mut concerns: Vec<SafetyConcern> = hara
        .safety_goals()
        .filter_map(|goal| {
            hara.goal_asil(goal).map(|asil| SafetyConcern {
                goal: goal.id().clone(),
                statement: goal.name().to_owned(),
                asil,
                ftti: goal.ftti(),
                safe_state: goal.safe_state().to_owned(),
            })
        })
        .collect();
    concerns.sort_by(|a, b| b.asil.cmp(&a.asil).then_with(|| a.goal.cmp(&b.goal)));
    concerns
}

#[cfg(test)]
mod tests {
    use super::*;
    use saseval_hara::{HazardRating, ItemFunction, SafetyGoal};
    use saseval_types::{Controllability, Exposure, FailureMode, Severity};

    fn hara() -> Hara {
        let mut hara = Hara::new("item");
        hara.add_function(ItemFunction::new("F1", "f").unwrap()).unwrap();
        let specs = [
            ("R1", FailureMode::No, Severity::S3, Exposure::E4, Controllability::C3), // D
            ("R2", FailureMode::More, Severity::S2, Exposure::E3, Controllability::C2), // A
            ("R3", FailureMode::Less, Severity::S1, Exposure::E1, Controllability::C1), // QM
        ];
        for (id, fm, s, e, c) in specs {
            hara.add_rating(
                HazardRating::builder(id, "F1", fm)
                    .hazard("h")
                    .situation(id)
                    .rate(s, e, c)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        hara.add_safety_goal(
            SafetyGoal::builder("SG-A", "minor goal")
                .covers("R2")
                .ftti(Ftti::from_millis(100))
                .build()
                .unwrap(),
        )
        .unwrap();
        hara.add_safety_goal(
            SafetyGoal::builder("SG-D", "major goal").covers("R1").build().unwrap(),
        )
        .unwrap();
        hara.add_safety_goal(SafetyGoal::builder("SG-QM", "qm goal").covers("R3").build().unwrap())
            .unwrap();
        hara
    }

    #[test]
    fn concerns_sorted_by_descending_asil() {
        let concerns = identify_safety_concerns(&hara());
        assert_eq!(concerns.len(), 2); // QM goal excluded
        assert_eq!(concerns[0].goal().as_str(), "SG-D");
        assert_eq!(concerns[0].asil(), AsilLevel::D);
        assert_eq!(concerns[1].goal().as_str(), "SG-A");
    }

    #[test]
    fn qm_goal_yields_no_concern() {
        let concerns = identify_safety_concerns(&hara());
        assert!(concerns.iter().all(|c| c.goal().as_str() != "SG-QM"));
    }

    #[test]
    fn effort_scales_with_asil() {
        let concerns = identify_safety_concerns(&hara());
        assert_eq!(concerns[0].test_effort(), 8);
        assert_eq!(concerns[1].test_effort(), 1);
    }

    #[test]
    fn ftti_propagated() {
        let concerns = identify_safety_concerns(&hara());
        assert_eq!(concerns[1].ftti(), Some(Ftti::from_millis(100)));
        assert_eq!(concerns[0].ftti(), None);
    }
}
