//! The [`ThreatLibrary`] container and its queries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use saseval_types::{AssetId, AttackType, ScenarioId, ThreatScenarioId, ThreatType};

use crate::asset::Asset;
use crate::error::ThreatLibraryError;
use crate::scenario::Scenario;
use crate::threat::ThreatScenario;

/// The threat library of SaSeVAL Step 1 (paper §III-A): scenarios, assets
/// and threat scenarios with referential integrity.
///
/// Mutators validate all cross-references at insertion time, so a library
/// is always internally consistent: every asset's scenarios exist, every
/// threat scenario's assets exist.
///
/// Queries support the derivation step of `saseval-core`
/// ([`threats_for_asset`](Self::threats_for_asset),
/// [`threats_by_type`](Self::threats_by_type),
/// [`threats_with_attack_type`](Self::threats_with_attack_type)) and the
/// RQ2 prioritization ([`threats_with_min_priority`](Self::threats_with_min_priority)).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThreatLibrary {
    scenarios: BTreeMap<ScenarioId, Scenario>,
    assets: BTreeMap<AssetId, Asset>,
    threats: BTreeMap<ThreatScenarioId, ThreatScenario>,
}

impl ThreatLibrary {
    /// Creates an empty threat library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a driving scenario.
    ///
    /// # Errors
    ///
    /// * [`ThreatLibraryError::DuplicateScenario`] on ID collision.
    /// * [`ThreatLibraryError::DuplicateSubScenario`] if the scenario
    ///   contains two sub-scenarios with the same ID.
    pub fn add_scenario(&mut self, scenario: Scenario) -> Result<(), ThreatLibraryError> {
        if self.scenarios.contains_key(scenario.id()) {
            return Err(ThreatLibraryError::DuplicateScenario(scenario.id().clone()));
        }
        for (i, sub) in scenario.sub_scenarios().iter().enumerate() {
            if scenario.sub_scenarios()[..i].iter().any(|s| s.id() == sub.id()) {
                return Err(ThreatLibraryError::DuplicateSubScenario(sub.id().clone()));
            }
        }
        self.scenarios.insert(scenario.id().clone(), scenario);
        Ok(())
    }

    /// Registers an asset.
    ///
    /// # Errors
    ///
    /// * [`ThreatLibraryError::DuplicateAsset`] on ID collision.
    /// * [`ThreatLibraryError::UnknownScenario`] if the asset references an
    ///   unregistered scenario.
    pub fn add_asset(&mut self, asset: Asset) -> Result<(), ThreatLibraryError> {
        if self.assets.contains_key(asset.id()) {
            return Err(ThreatLibraryError::DuplicateAsset(asset.id().clone()));
        }
        for scenario in asset.scenarios() {
            if !self.scenarios.contains_key(scenario) {
                return Err(ThreatLibraryError::UnknownScenario(scenario.clone()));
            }
        }
        self.assets.insert(asset.id().clone(), asset);
        Ok(())
    }

    /// Registers a threat scenario.
    ///
    /// # Errors
    ///
    /// * [`ThreatLibraryError::DuplicateThreatScenario`] on ID collision.
    /// * [`ThreatLibraryError::UnknownAsset`] if it endangers an
    ///   unregistered asset.
    /// * [`ThreatLibraryError::UnknownScenario`] if it references an
    ///   unregistered driving scenario.
    pub fn add_threat_scenario(
        &mut self,
        threat: ThreatScenario,
    ) -> Result<(), ThreatLibraryError> {
        if self.threats.contains_key(threat.id()) {
            return Err(ThreatLibraryError::DuplicateThreatScenario(threat.id().clone()));
        }
        for asset in threat.assets() {
            if !self.assets.contains_key(asset) {
                return Err(ThreatLibraryError::UnknownAsset(asset.clone()));
            }
        }
        if let Some(scenario) = threat.scenario() {
            if !self.scenarios.contains_key(scenario) {
                return Err(ThreatLibraryError::UnknownScenario(scenario.clone()));
            }
        }
        self.threats.insert(threat.id().clone(), threat);
        Ok(())
    }

    /// Looks up a scenario by ID.
    pub fn scenario(&self, id: &str) -> Option<&Scenario> {
        self.scenarios.get(id)
    }

    /// Looks up an asset by ID.
    pub fn asset(&self, id: &str) -> Option<&Asset> {
        self.assets.get(id)
    }

    /// Looks up a threat scenario by ID.
    pub fn threat_scenario(&self, id: &str) -> Option<&ThreatScenario> {
        self.threats.get(id)
    }

    /// Iterates over all scenarios in ID order.
    pub fn scenarios(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.values()
    }

    /// Iterates over all assets in ID order.
    pub fn assets(&self) -> impl Iterator<Item = &Asset> {
        self.assets.values()
    }

    /// Iterates over all threat scenarios in ID order.
    pub fn threat_scenarios(&self) -> impl Iterator<Item = &ThreatScenario> {
        self.threats.values()
    }

    /// All threat scenarios endangering the given asset.
    pub fn threats_for_asset<'a>(
        &'a self,
        asset: &'a str,
    ) -> impl Iterator<Item = &'a ThreatScenario> + 'a {
        self.threats.values().filter(move |t| t.assets().iter().any(|a| a.as_str() == asset))
    }

    /// All threat scenarios of the given STRIDE threat type.
    pub fn threats_by_type(
        &self,
        threat_type: ThreatType,
    ) -> impl Iterator<Item = &ThreatScenario> {
        self.threats.values().filter(move |t| t.threat_type() == threat_type)
    }

    /// All threat scenarios whose Table IV attack-type row contains the
    /// given attack type — the lookup the attack-description step uses to
    /// select "corresponding threats of the threat library" (§III, step 3).
    pub fn threats_with_attack_type(
        &self,
        attack_type: AttackType,
    ) -> impl Iterator<Item = &ThreatScenario> {
        self.threats.values().filter(move |t| t.attack_types().contains(&attack_type))
    }

    /// All threat scenarios whose endangered assets include at least one
    /// with priority ≥ `min_priority` (RQ2 test-space reduction, §III-A2).
    pub fn threats_with_min_priority(
        &self,
        min_priority: u8,
    ) -> impl Iterator<Item = &ThreatScenario> {
        self.threats.values().filter(move |t| {
            t.assets()
                .iter()
                .filter_map(|a| self.assets.get(a))
                .any(|a| a.priority() >= min_priority)
        })
    }

    /// Re-validates the library's referential integrity — required after
    /// deserializing a library from external data, since serde bypasses
    /// the insertion-time checks.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ThreatLibraryError`].
    pub fn validate(&self) -> Result<(), ThreatLibraryError> {
        for scenario in self.scenarios.values() {
            for (i, sub) in scenario.sub_scenarios().iter().enumerate() {
                if scenario.sub_scenarios()[..i].iter().any(|s| s.id() == sub.id()) {
                    return Err(ThreatLibraryError::DuplicateSubScenario(sub.id().clone()));
                }
            }
        }
        for asset in self.assets.values() {
            for scenario in asset.scenarios() {
                if !self.scenarios.contains_key(scenario) {
                    return Err(ThreatLibraryError::UnknownScenario(scenario.clone()));
                }
            }
            if asset.groups().is_empty() {
                return Err(ThreatLibraryError::AssetWithoutGroup(asset.id().clone()));
            }
        }
        for threat in self.threats.values() {
            if threat.assets().is_empty() {
                return Err(ThreatLibraryError::ThreatWithoutAsset(threat.id().clone()));
            }
            for asset in threat.assets() {
                if !self.assets.contains_key(asset) {
                    return Err(ThreatLibraryError::UnknownAsset(asset.clone()));
                }
            }
            if let Some(scenario) = threat.scenario() {
                if !self.scenarios.contains_key(scenario) {
                    return Err(ThreatLibraryError::UnknownScenario(scenario.clone()));
                }
            }
        }
        Ok(())
    }

    /// Merges another library into this one. Artifacts are inserted in ID
    /// order with full validation; the first conflict (duplicate ID) or
    /// dangling reference aborts the merge, leaving `self` partially
    /// extended up to that point — merge into a clone when atomicity
    /// matters.
    ///
    /// # Errors
    ///
    /// Returns the first [`ThreatLibraryError`] raised by the insertions.
    pub fn merge(&mut self, other: ThreatLibrary) -> Result<(), ThreatLibraryError> {
        for (_, scenario) in other.scenarios {
            self.add_scenario(scenario)?;
        }
        for (_, asset) in other.assets {
            self.add_asset(asset)?;
        }
        for (_, threat) in other.threats {
            self.add_threat_scenario(threat)?;
        }
        Ok(())
    }

    /// Summary statistics of the library contents.
    pub fn stats(&self) -> LibraryStats {
        let mut by_type = BTreeMap::new();
        for t in self.threats.values() {
            *by_type.entry(t.threat_type()).or_insert(0usize) += 1;
        }
        LibraryStats {
            scenarios: self.scenarios.len(),
            sub_scenarios: self.scenarios.values().map(|s| s.sub_scenarios().len()).sum(),
            assets: self.assets.len(),
            threat_scenarios: self.threats.len(),
            threats_by_type: by_type,
        }
    }
}

/// Summary counts of a [`ThreatLibrary`] (see [`ThreatLibrary::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LibraryStats {
    /// Number of driving scenarios.
    pub scenarios: usize,
    /// Total number of sub-scenarios across all scenarios.
    pub sub_scenarios: usize,
    /// Number of assets.
    pub assets: usize,
    /// Number of threat scenarios.
    pub threat_scenarios: usize,
    /// Threat scenarios per STRIDE threat type.
    pub threats_by_type: BTreeMap<ThreatType, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SubScenario;
    use saseval_types::AssetGroup;

    fn seeded() -> ThreatLibrary {
        let mut lib = ThreatLibrary::new();
        let mut sc = Scenario::new("SC1", "Road intersection").unwrap();
        sc.push_sub_scenario(SubScenario::new("SUB1", "hijacked AV").unwrap());
        lib.add_scenario(sc).unwrap();
        lib.add_asset(
            Asset::builder("GATEWAY", "Gateway")
                .group(AssetGroup::Hardware)
                .scenario("SC1")
                .build()
                .unwrap(),
        )
        .unwrap();
        lib.add_threat_scenario(
            ThreatScenario::builder("TS1", "flooding", ThreatType::DenialOfService)
                .asset("GATEWAY")
                .scenario("SC1")
                .build()
                .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn referential_integrity_enforced() {
        let mut lib = ThreatLibrary::new();
        // Asset referencing unknown scenario.
        let asset =
            Asset::builder("A", "a").group(AssetGroup::Hardware).scenario("SC404").build().unwrap();
        assert!(matches!(lib.add_asset(asset), Err(ThreatLibraryError::UnknownScenario(_))));
        // Threat referencing unknown asset.
        let threat =
            ThreatScenario::builder("T", "d", ThreatType::Spoofing).asset("A404").build().unwrap();
        assert!(matches!(
            lib.add_threat_scenario(threat),
            Err(ThreatLibraryError::UnknownAsset(_))
        ));
    }

    #[test]
    fn duplicate_detection() {
        let mut lib = seeded();
        assert!(matches!(
            lib.add_scenario(Scenario::new("SC1", "again").unwrap()),
            Err(ThreatLibraryError::DuplicateScenario(_))
        ));
        let dup_asset =
            Asset::builder("GATEWAY", "again").group(AssetGroup::Hardware).build().unwrap();
        assert!(matches!(lib.add_asset(dup_asset), Err(ThreatLibraryError::DuplicateAsset(_))));
        let dup_threat = ThreatScenario::builder("TS1", "again", ThreatType::Tampering)
            .asset("GATEWAY")
            .build()
            .unwrap();
        assert!(matches!(
            lib.add_threat_scenario(dup_threat),
            Err(ThreatLibraryError::DuplicateThreatScenario(_))
        ));
    }

    #[test]
    fn duplicate_sub_scenarios_rejected() {
        let mut lib = ThreatLibrary::new();
        let mut sc = Scenario::new("SC2", "x").unwrap();
        sc.push_sub_scenario(SubScenario::new("SUB", "a").unwrap());
        sc.push_sub_scenario(SubScenario::new("SUB", "b").unwrap());
        assert!(matches!(lib.add_scenario(sc), Err(ThreatLibraryError::DuplicateSubScenario(_))));
    }

    #[test]
    fn queries() {
        let lib = seeded();
        assert_eq!(lib.threats_for_asset("GATEWAY").count(), 1);
        assert_eq!(lib.threats_for_asset("NOPE").count(), 0);
        assert_eq!(lib.threats_by_type(ThreatType::DenialOfService).count(), 1);
        assert_eq!(lib.threats_by_type(ThreatType::Spoofing).count(), 0);
        assert_eq!(lib.threats_with_attack_type(AttackType::Jamming).count(), 1);
        assert_eq!(lib.threats_with_attack_type(AttackType::Replay).count(), 0);
    }

    #[test]
    fn priority_filter() {
        let mut lib = seeded();
        lib.add_asset(
            Asset::builder("OBU", "On-board unit")
                .group(AssetGroup::Hardware)
                .class(saseval_types::AssetClass::GenericCurrentVehicles)
                .build()
                .unwrap(),
        )
        .unwrap();
        lib.add_threat_scenario(
            ThreatScenario::builder("TS2", "spoof", ThreatType::Spoofing)
                .asset("OBU")
                .build()
                .unwrap(),
        )
        .unwrap();
        // GATEWAY is unclassified (priority 0); OBU has max priority.
        assert_eq!(lib.threats_with_min_priority(4).count(), 1);
        assert_eq!(lib.threats_with_min_priority(0).count(), 2);
    }

    #[test]
    fn validate_accepts_consistent_and_rejects_tampered() {
        let lib = seeded();
        assert!(lib.validate().is_ok());
        // Round-trip through JSON and re-validate: still consistent.
        let json = serde_json::to_string(&lib).unwrap();
        let back: ThreatLibrary = serde_json::from_str(&json).unwrap();
        assert!(back.validate().is_ok());
        // Tamper: rewrite the asset reference inside the threats section
        // only, leaving the asset map untouched — a dangling reference.
        let threats_at = json.find("\"threats\"").expect("threats key");
        let tampered =
            format!("{}{}", &json[..threats_at], json[threats_at..].replace("GATEWAY", "GHOST"));
        let broken: ThreatLibrary = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(broken.validate(), Err(ThreatLibraryError::UnknownAsset(_))));
    }

    #[test]
    fn validate_rejects_duplicate_sub_scenarios() {
        let lib = seeded();
        let json = serde_json::to_string(&lib).unwrap();
        // Duplicate the sub-scenario entry inside the scenario list.
        let tampered = json.replace(
            "\"sub_scenarios\":[{",
            "\"sub_scenarios\":[{\"id\":\"SUB1\",\"description\":\"dup\"},{",
        );
        let broken: ThreatLibrary = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(broken.validate(), Err(ThreatLibraryError::DuplicateSubScenario(_))));
    }

    #[test]
    fn merge_combines_disjoint_libraries() {
        let mut base = seeded();
        let mut extra = ThreatLibrary::new();
        extra.add_scenario(Scenario::new("SC9", "extra").unwrap()).unwrap();
        extra
            .add_asset(
                Asset::builder("NEW", "new asset")
                    .group(AssetGroup::Software)
                    .scenario("SC9")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        extra
            .add_threat_scenario(
                ThreatScenario::builder("TS9", "new threat", ThreatType::Tampering)
                    .asset("NEW")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        base.merge(extra).unwrap();
        assert_eq!(base.stats().scenarios, 2);
        assert_eq!(base.stats().threat_scenarios, 2);
        assert!(base.validate().is_ok());
    }

    #[test]
    fn merge_rejects_conflicts() {
        let mut base = seeded();
        let conflicting = seeded();
        assert!(matches!(base.merge(conflicting), Err(ThreatLibraryError::DuplicateScenario(_))));
    }

    #[test]
    fn stats() {
        let lib = seeded();
        let stats = lib.stats();
        assert_eq!(stats.scenarios, 1);
        assert_eq!(stats.sub_scenarios, 1);
        assert_eq!(stats.assets, 1);
        assert_eq!(stats.threat_scenarios, 1);
        assert_eq!(stats.threats_by_type[&ThreatType::DenialOfService], 1);
    }
}
