//! Error type for threat-library operations.

use std::fmt;

use saseval_types::{AssetId, IdError, ScenarioId, SubScenarioId, ThreatScenarioId};

/// Error returned by [`crate::ThreatLibrary`] mutators and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreatLibraryError {
    /// An identifier string was malformed.
    Id(IdError),
    /// A scenario with this ID is already registered.
    DuplicateScenario(ScenarioId),
    /// A sub-scenario with this ID already exists in the scenario.
    DuplicateSubScenario(SubScenarioId),
    /// An asset with this ID is already registered.
    DuplicateAsset(AssetId),
    /// A threat scenario with this ID is already registered.
    DuplicateThreatScenario(ThreatScenarioId),
    /// The asset references a scenario the library does not contain.
    UnknownScenario(ScenarioId),
    /// The threat scenario references an asset the library does not contain.
    UnknownAsset(AssetId),
    /// The threat scenario references no assets at all.
    ThreatWithoutAsset(ThreatScenarioId),
    /// An asset belongs to no asset group.
    AssetWithoutGroup(AssetId),
}

impl fmt::Display for ThreatLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatLibraryError::Id(e) => write!(f, "invalid identifier: {e}"),
            ThreatLibraryError::DuplicateScenario(id) => write!(f, "duplicate scenario {id}"),
            ThreatLibraryError::DuplicateSubScenario(id) => {
                write!(f, "duplicate sub-scenario {id}")
            }
            ThreatLibraryError::DuplicateAsset(id) => write!(f, "duplicate asset {id}"),
            ThreatLibraryError::DuplicateThreatScenario(id) => {
                write!(f, "duplicate threat scenario {id}")
            }
            ThreatLibraryError::UnknownScenario(id) => {
                write!(f, "reference to unknown scenario {id}")
            }
            ThreatLibraryError::UnknownAsset(id) => write!(f, "reference to unknown asset {id}"),
            ThreatLibraryError::ThreatWithoutAsset(id) => {
                write!(f, "threat scenario {id} references no assets")
            }
            ThreatLibraryError::AssetWithoutGroup(id) => {
                write!(f, "asset {id} belongs to no asset group")
            }
        }
    }
}

impl std::error::Error for ThreatLibraryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThreatLibraryError::Id(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IdError> for ThreatLibraryError {
    fn from(e: IdError) -> Self {
        ThreatLibraryError::Id(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_artifact() {
        let id = ThreatScenarioId::new("TS-1").unwrap();
        assert!(ThreatLibraryError::ThreatWithoutAsset(id).to_string().contains("TS-1"));
    }
}
