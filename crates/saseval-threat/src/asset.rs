//! Assets — the targets an attacker can act on (paper Table II, §III-A1).

use serde::{Deserialize, Serialize};

use saseval_types::{AssetClass, AssetGroup, AssetId, InterfaceId, ScenarioId};

use crate::error::ThreatLibraryError;

/// An asset of a scenario, e.g. the *Gateway*, the *ECU* or the *V2X
/// communications* of paper Table II.
///
/// An asset belongs to one or more [`AssetGroup`]s ("ECU" is
/// Hardware **and** Software in Table II), is classified into
/// [`AssetClass`]es for prioritization (§III-A2, RQ2) and exposes zero or
/// more attackable interfaces (used by attack descriptions, e.g. `OBU_RSU`
/// in Table VI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Asset {
    id: AssetId,
    name: String,
    groups: Vec<AssetGroup>,
    classes: Vec<AssetClass>,
    scenarios: Vec<ScenarioId>,
    interfaces: Vec<InterfaceId>,
}

impl Asset {
    /// Starts building an asset.
    ///
    /// # Example
    ///
    /// ```
    /// use saseval_threat::Asset;
    /// use saseval_types::{AssetClass, AssetGroup};
    ///
    /// let ecu = Asset::builder("ECU", "Electronic control unit")
    ///     .group(AssetGroup::Hardware)
    ///     .group(AssetGroup::Software)
    ///     .class(AssetClass::GenericCurrentVehicles)
    ///     .interface("ECU_GW")
    ///     .build()?;
    /// assert_eq!(ecu.groups().len(), 2);
    /// # Ok::<(), saseval_threat::ThreatLibraryError>(())
    /// ```
    pub fn builder(id: impl AsRef<str>, name: impl Into<String>) -> AssetBuilder {
        AssetBuilder {
            id: id.as_ref().to_owned(),
            name: name.into(),
            groups: Vec::new(),
            classes: Vec::new(),
            scenarios: Vec::new(),
            interfaces: Vec::new(),
        }
    }

    /// The asset's identifier.
    pub fn id(&self) -> &AssetId {
        &self.id
    }

    /// The asset's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The asset groups this asset belongs to (at least one).
    pub fn groups(&self) -> &[AssetGroup] {
        &self.groups
    }

    /// The prioritization classes of this asset (may be empty).
    pub fn classes(&self) -> &[AssetClass] {
        &self.classes
    }

    /// The scenarios this asset appears in.
    pub fn scenarios(&self) -> &[ScenarioId] {
        &self.scenarios
    }

    /// The attackable interfaces this asset exposes.
    pub fn interfaces(&self) -> &[InterfaceId] {
        &self.interfaces
    }

    /// The highest analysis priority over this asset's classes
    /// (0 if unclassified).
    pub fn priority(&self) -> u8 {
        self.classes.iter().map(|c| c.priority()).max().unwrap_or(0)
    }
}

/// Builder for [`Asset`] (see [`Asset::builder`]).
#[derive(Debug, Clone)]
pub struct AssetBuilder {
    id: String,
    name: String,
    groups: Vec<AssetGroup>,
    classes: Vec<AssetClass>,
    scenarios: Vec<String>,
    interfaces: Vec<String>,
}

impl AssetBuilder {
    /// Adds an asset group.
    pub fn group(mut self, group: AssetGroup) -> Self {
        if !self.groups.contains(&group) {
            self.groups.push(group);
        }
        self
    }

    /// Adds a prioritization class.
    pub fn class(mut self, class: AssetClass) -> Self {
        if !self.classes.contains(&class) {
            self.classes.push(class);
        }
        self
    }

    /// Associates the asset with a scenario.
    pub fn scenario(mut self, scenario: impl AsRef<str>) -> Self {
        self.scenarios.push(scenario.as_ref().to_owned());
        self
    }

    /// Declares an attackable interface.
    pub fn interface(mut self, interface: impl AsRef<str>) -> Self {
        self.interfaces.push(interface.as_ref().to_owned());
        self
    }

    /// Builds the asset.
    ///
    /// # Errors
    ///
    /// * [`ThreatLibraryError::Id`] if any identifier is malformed.
    /// * [`ThreatLibraryError::AssetWithoutGroup`] if no group was added —
    ///   Table II assigns every asset at least one group.
    pub fn build(self) -> Result<Asset, ThreatLibraryError> {
        let id = AssetId::new(self.id)?;
        if self.groups.is_empty() {
            return Err(ThreatLibraryError::AssetWithoutGroup(id));
        }
        let scenarios =
            self.scenarios.into_iter().map(ScenarioId::new).collect::<Result<Vec<_>, _>>()?;
        let interfaces =
            self.interfaces.into_iter().map(InterfaceId::new).collect::<Result<Vec<_>, _>>()?;
        Ok(Asset {
            id,
            name: self.name,
            groups: self.groups,
            classes: self.classes,
            scenarios,
            interfaces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_style_asset() {
        let a = Asset::builder("V2X_COMM", "V2X communications")
            .group(AssetGroup::Information)
            .group(AssetGroup::Hardware)
            .class(AssetClass::GenericConnected)
            .scenario("SC-ACCESS")
            .interface("OBU_RSU")
            .build()
            .unwrap();
        assert_eq!(a.groups(), [AssetGroup::Information, AssetGroup::Hardware]);
        assert_eq!(a.priority(), AssetClass::GenericConnected.priority());
        assert_eq!(a.interfaces()[0].as_str(), "OBU_RSU");
    }

    #[test]
    fn group_required() {
        let err = Asset::builder("A1", "bare").build().unwrap_err();
        assert!(matches!(err, ThreatLibraryError::AssetWithoutGroup(_)));
    }

    #[test]
    fn duplicate_groups_deduplicated() {
        let a = Asset::builder("A1", "x")
            .group(AssetGroup::Hardware)
            .group(AssetGroup::Hardware)
            .build()
            .unwrap();
        assert_eq!(a.groups().len(), 1);
    }

    #[test]
    fn unclassified_asset_has_zero_priority() {
        let a = Asset::builder("A1", "x").group(AssetGroup::Person).build().unwrap();
        assert_eq!(a.priority(), 0);
    }

    #[test]
    fn malformed_interface_rejected() {
        let err = Asset::builder("A1", "x")
            .group(AssetGroup::Hardware)
            .interface("has space")
            .build()
            .unwrap_err();
        assert!(matches!(err, ThreatLibraryError::Id(_)));
    }
}
