//! Driving scenarios and sub-scenarios (paper Table I, §III-A1).

use serde::{Deserialize, Serialize};

use saseval_types::{IdError, ScenarioId, SubScenarioId};

/// A sub-scenario refining a [`Scenario`], e.g. *"An intersection with
/// traffic lights is approached by a hijacked automated vehicle that has no
/// intention to stop"*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubScenario {
    id: SubScenarioId,
    description: String,
}

impl SubScenario {
    /// Creates a sub-scenario.
    ///
    /// # Errors
    ///
    /// Returns [`IdError`] if `id` is not a valid identifier.
    pub fn new(id: impl AsRef<str>, description: impl Into<String>) -> Result<Self, IdError> {
        Ok(SubScenario { id: SubScenarioId::new(id.as_ref())?, description: description.into() })
    }

    /// The sub-scenario's identifier.
    pub fn id(&self) -> &SubScenarioId {
        &self.id
    }

    /// The natural-language description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

/// A general driving scenario from the Scenario Description input of the
/// SaSeVAL process (paper Fig. 1 and Table I), e.g. *"Road intersection"*
/// or *"Keep car secure for the whole vehicle product lifetime"*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    id: ScenarioId,
    name: String,
    sub_scenarios: Vec<SubScenario>,
}

impl Scenario {
    /// Creates a scenario without sub-scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`IdError`] if `id` is not a valid identifier.
    ///
    /// # Example
    ///
    /// ```
    /// use saseval_threat::{Scenario, SubScenario};
    ///
    /// let mut s = Scenario::new("SC-INTERSECTION", "Road intersection")?;
    /// s.push_sub_scenario(SubScenario::new(
    ///     "SUB-1",
    ///     "Emergency vehicle approaches a crowded intersection",
    /// )?);
    /// assert_eq!(s.sub_scenarios().len(), 1);
    /// # Ok::<(), saseval_types::IdError>(())
    /// ```
    pub fn new(id: impl AsRef<str>, name: impl Into<String>) -> Result<Self, IdError> {
        Ok(Scenario {
            id: ScenarioId::new(id.as_ref())?,
            name: name.into(),
            sub_scenarios: Vec::new(),
        })
    }

    /// Appends a sub-scenario. Duplicate sub-scenario IDs are rejected by
    /// [`crate::ThreatLibrary::add_scenario`].
    pub fn push_sub_scenario(&mut self, sub: SubScenario) -> &mut Self {
        self.sub_scenarios.push(sub);
        self
    }

    /// The scenario's identifier.
    pub fn id(&self) -> &ScenarioId {
        &self.id
    }

    /// The scenario's short name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sub-scenarios in insertion order.
    pub fn sub_scenarios(&self) -> &[SubScenario] {
        &self.sub_scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_scenario_with_subs() {
        let mut s = Scenario::new("SC1", "Road intersection").unwrap();
        s.push_sub_scenario(SubScenario::new("SUB1", "hijacked AV").unwrap())
            .push_sub_scenario(SubScenario::new("SUB2", "road-side VRU info").unwrap());
        assert_eq!(s.id().as_str(), "SC1");
        assert_eq!(s.sub_scenarios().len(), 2);
        assert_eq!(s.sub_scenarios()[1].description(), "road-side VRU info");
    }

    #[test]
    fn invalid_ids_rejected() {
        assert!(Scenario::new("", "x").is_err());
        assert!(SubScenario::new("a b", "x").is_err());
    }
}
