//! The built-in automotive threat library.
//!
//! [`automotive_library`] reproduces the paper's proof-of-concept library:
//! the driving scenarios of Table I, the assets of Table II, the threat
//! scenarios of Table III, and the full mapping chain of Table V, extended
//! with the threat scenarios referenced by the two §IV use cases (threat
//! scenario 2.1.4 for attack AD20 of Table VI, threat scenario 3.1.4 for
//! attack AD08 of Table VII, the replay/flooding threats discussed in the
//! §IV prose).
//!
//! The table-accessor functions ([`table_i_rows`], [`table_ii_rows`],
//! [`table_iii_rows`], [`table_v_rows`]) return exactly the rows the paper
//! prints, in print order, so the `saseval-bench` repro binaries can
//! regenerate the tables verbatim.

use serde::{Deserialize, Serialize};

use saseval_types::{AssetClass, AssetGroup, AttackType, AttackerProfile, ThreatType};

use crate::asset::Asset;
use crate::library::ThreatLibrary;
use crate::scenario::{Scenario, SubScenario};
use crate::threat::ThreatScenario;

/// Scenario ID: road intersection (Table I, row 1).
pub const SC_INTERSECTION: &str = "SC-INTERSECTION";
/// Scenario ID: keep car secure for the whole product lifetime (Table I, row 2).
pub const SC_SECURE_LIFETIME: &str = "SC-SECURE-LIFETIME";
/// Scenario ID: advanced access to vehicle (Table I, row 3).
pub const SC_ACCESS: &str = "SC-ACCESS";
/// Scenario ID: Use Case I — autonomous vehicle approaching a construction
/// site (paper Fig. 2).
pub const SC_CONSTRUCTION: &str = "SC-CONSTRUCTION";
/// Scenario ID: Use Case II — keyless car opener via smartphone/BLE.
pub const SC_KEYLESS: &str = "SC-KEYLESS";

/// Threat scenario 2.1.4 — the library entry Table VI's attack AD20 links to.
pub const TS_GATEWAY_DOS: &str = "TS-2.1.4";
/// Threat scenario 3.1.4 — the library entry Table VII's attack AD08 links to.
pub const TS_SPOOF_IMPERSONATION: &str = "TS-3.1.4";

/// Builds the complete built-in automotive threat library.
///
/// The library validates by construction; this function panics only on
/// programming errors in the embedded dataset (it is exercised by tests).
///
/// # Example
///
/// ```
/// use saseval_threat::builtin::automotive_library;
/// let lib = automotive_library();
/// assert!(lib.stats().threat_scenarios >= 17);
/// ```
pub fn automotive_library() -> ThreatLibrary {
    let mut lib = ThreatLibrary::new();
    add_scenarios(&mut lib);
    add_assets(&mut lib);
    add_threats(&mut lib);
    lib
}

fn add_scenarios(lib: &mut ThreatLibrary) {
    let mut intersection = Scenario::new(SC_INTERSECTION, "Road intersection").expect("id");
    intersection
        .push_sub_scenario(
            SubScenario::new(
                "SUB-INT-1",
                "An intersection with traffic lights is approached by a hijacked automated \
                 vehicle that has no intention to stop",
            )
            .expect("id"),
        )
        .push_sub_scenario(
            SubScenario::new(
                "SUB-INT-2",
                "An automated vehicle approaches intersection which is equipped by a road-side \
                 system providing information about vulnerable road users",
            )
            .expect("id"),
        )
        .push_sub_scenario(
            SubScenario::new("SUB-INT-3", "Emergency vehicle approaches a crowded intersection")
                .expect("id"),
        );
    lib.add_scenario(intersection).expect("scenario");

    let mut lifetime =
        Scenario::new(SC_SECURE_LIFETIME, "Keep car secure for the whole vehicle product lifetime")
            .expect("id");
    lifetime.push_sub_scenario(
        SubScenario::new(
            "SUB-LIFE-1",
            "Vehicle updates are changes made to the hardware or software of a security, \
             safety, or privacy relevant item that is deployed in the field",
        )
        .expect("id"),
    );
    lib.add_scenario(lifetime).expect("scenario");

    let mut access = Scenario::new(SC_ACCESS, "Advanced access to vehicle").expect("id");
    access.push_sub_scenario(
        SubScenario::new(
            "SUB-ACC-1",
            "Demonstrator is reflecting the trend for property (vehicle) sharing. The traveler \
             orders a car in the target destination via cloud-based service",
        )
        .expect("id"),
    );
    lib.add_scenario(access).expect("scenario");

    let mut construction =
        Scenario::new(SC_CONSTRUCTION, "Autonomous vehicle approaches a construction site")
            .expect("id");
    construction.push_sub_scenario(
        SubScenario::new(
            "SUB-CON-1",
            "The road side unit informs the vehicle via the on-board unit about the upcoming \
             construction site; the OBU informs the driver so that control is transferred back",
        )
        .expect("id"),
    );
    lib.add_scenario(construction).expect("scenario");

    let mut keyless = Scenario::new(SC_KEYLESS, "Keyless car opener").expect("id");
    keyless.push_sub_scenario(
        SubScenario::new(
            "SUB-KEY-1",
            "Opening and closing a vehicle via smartphone, which communicates via Bluetooth \
             low energy with the car",
        )
        .expect("id"),
    );
    lib.add_scenario(keyless).expect("scenario");
}

fn add_assets(lib: &mut ThreatLibrary) {
    let assets = [
        // Table II assets (for the "advanced access to vehicle" scenario).
        Asset::builder("GATEWAY", "Gateway")
            .group(AssetGroup::Hardware)
            .class(AssetClass::GenericCurrentVehicles)
            .scenario(SC_ACCESS)
            .scenario(SC_SECURE_LIFETIME)
            .interface("CAN_GW")
            .interface("ECU_GW"),
        Asset::builder("DRIVER_MAINT", "Driver and Maintenance personal")
            .group(AssetGroup::Person)
            .class(AssetClass::Generic)
            .scenario(SC_ACCESS),
        Asset::builder("ECU", "ECU")
            .group(AssetGroup::Hardware)
            .group(AssetGroup::Software)
            .class(AssetClass::GenericCurrentVehicles)
            .scenario(SC_ACCESS)
            .scenario(SC_SECURE_LIFETIME)
            .interface("USB_PORT")
            .interface("ECU_GW"),
        Asset::builder("V2X_COMM", "V2X communications")
            .group(AssetGroup::Information)
            .group(AssetGroup::Hardware)
            .class(AssetClass::GenericConnected)
            .scenario(SC_ACCESS)
            .scenario(SC_CONSTRUCTION)
            .interface("OBU_RSU"),
        // Use Case I assets.
        Asset::builder("OBU", "On-board unit")
            .group(AssetGroup::Hardware)
            .group(AssetGroup::Software)
            .class(AssetClass::GenericAdasAd)
            .scenario(SC_CONSTRUCTION)
            .interface("OBU_RSU"),
        Asset::builder("RSU", "Road-side unit")
            .group(AssetGroup::Hardware)
            .group(AssetGroup::Service)
            .class(AssetClass::GenericConnected)
            .scenario(SC_CONSTRUCTION)
            .interface("OBU_RSU"),
        Asset::builder("TAKEOVER_SERVICE", "Driver take-over notification service")
            .group(AssetGroup::Service)
            .class(AssetClass::GenericAdasAd)
            .scenario(SC_CONSTRUCTION),
        // Use Case II assets.
        Asset::builder("SMARTPHONE_KEY", "Smartphone key application")
            .group(AssetGroup::Device)
            .group(AssetGroup::Software)
            .class(AssetClass::UseCaseSpecific)
            .scenario(SC_KEYLESS)
            .interface("BLE_PHONE"),
        Asset::builder("BLE_LINK", "Bluetooth low energy link")
            .group(AssetGroup::Information)
            .class(AssetClass::GenericConnected)
            .scenario(SC_KEYLESS)
            .interface("BLE_PHONE"),
        Asset::builder("CAN_BUS", "In-vehicle CAN bus")
            .group(AssetGroup::Hardware)
            .group(AssetGroup::Information)
            .class(AssetClass::GenericCurrentVehicles)
            .scenario(SC_KEYLESS)
            .interface("CAN_GW"),
        Asset::builder("LOCK_ACTUATOR", "Door lock actuator")
            .group(AssetGroup::Hardware)
            .class(AssetClass::GenericCurrentVehicles)
            .scenario(SC_KEYLESS)
            .interface("ECU_GW"),
        Asset::builder("CLOUD_SHARING", "Cloud-based vehicle sharing service")
            .group(AssetGroup::CloudService)
            .group(AssetGroup::Server)
            .class(AssetClass::UseCaseSpecific)
            .scenario(SC_ACCESS)
            .interface("CLOUD_API"),
        Asset::builder("UPDATE_SERVER", "OEM software update server")
            .group(AssetGroup::Server)
            .class(AssetClass::GenericConnected)
            .scenario(SC_SECURE_LIFETIME)
            .interface("CLOUD_API"),
    ];
    for asset in assets {
        lib.add_asset(asset.build().expect("asset")).expect("asset insert");
    }
}

fn add_threats(lib: &mut ThreatLibrary) {
    let threats = [
        // --- Table III threat scenarios ("keep car secure ..."). ---
        ThreatScenario::builder(
            "TS-LIFE-1",
            "Spoofing of messages by impersonation",
            ThreatType::Spoofing,
        )
        .asset("V2X_COMM")
        .asset("UPDATE_SERVER")
        .scenario(SC_SECURE_LIFETIME),
        ThreatScenario::builder(
            "TS-LIFE-2",
            "External interfaces (such as USB) may be used as a point of attack, for example \
             through code injection",
            ThreatType::ElevationOfPrivilege,
        )
        .asset("ECU")
        .scenario(SC_SECURE_LIFETIME)
        .attacker(AttackerProfile::EvilMechanic)
        .attacker(AttackerProfile::OwnerDriver)
        .attacker(AttackerProfile::Thief),
        ThreatScenario::builder(
            "TS-LIFE-3",
            "Manipulation of functions to operate systems remotely, such as remote key, \
             immobiliser, and charging pile",
            ThreatType::Tampering,
        )
        .asset("GATEWAY")
        .asset("LOCK_ACTUATOR")
        .scenario(SC_SECURE_LIFETIME),
        // --- Table V additional rows. ---
        ThreatScenario::builder(
            "TS-GW-INSIDER",
            "Abuse of privileges by staff (insider attack)",
            ThreatType::ElevationOfPrivilege,
        )
        .asset("GATEWAY")
        .scenario(SC_SECURE_LIFETIME)
        .attacker(AttackerProfile::EvilMechanic),
        ThreatScenario::builder(
            "TS-GW-INJECT",
            "Code injection, e.g. tampered software binary might be injected into the \
             communication stream",
            ThreatType::Tampering,
        )
        .asset("GATEWAY")
        .asset("CAN_BUS")
        .scenario(SC_SECURE_LIFETIME),
        ThreatScenario::builder(
            "TS-ECU-PHISH",
            "Innocent victim (e.g. owner, operator or maintenance engineer) being tricked into \
             taking an action to unintentionally load malware or enable an attack",
            ThreatType::Spoofing,
        )
        .asset("ECU")
        .asset("DRIVER_MAINT")
        .scenario(SC_SECURE_LIFETIME),
        // --- Use Case I threat scenarios (construction site, RSU-OBU). ---
        ThreatScenario::builder(
            TS_GATEWAY_DOS,
            "An attacker alters the functioning of the Vehicle Gateway (so that it crashes, \
             halts, stops or runs slowly), in order to disrupt the service",
            ThreatType::DenialOfService,
        )
        .asset("OBU")
        .asset("GATEWAY")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-SPOOF",
            "An attacker impersonates a road-side unit and sends forged hazardous location \
             notifications",
            ThreatType::Spoofing,
        )
        .asset("V2X_COMM")
        .asset("RSU")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-TAMPER",
            "An attacker alters warning payloads (location, speed limits) in transit on the \
             RSU-OBU interface",
            ThreatType::Tampering,
        )
        .asset("V2X_COMM")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-REPLAY",
            "Warnings recorded at other locations or from other vehicles are replayed to \
             trigger unintended warnings",
            ThreatType::Repudiation,
        )
        .asset("V2X_COMM")
        .asset("TAKEOVER_SERVICE")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-DELAY",
            "Messages on the RSU-OBU interface are delayed beyond their validity so take-over \
             warnings arrive too late",
            ThreatType::Repudiation,
        )
        .asset("V2X_COMM")
        .asset("TAKEOVER_SERVICE")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-JAM",
            "The V2X radio channel is jammed so that road-works warnings cannot be received",
            ThreatType::DenialOfService,
        )
        .asset("V2X_COMM")
        .scenario(SC_CONSTRUCTION),
        ThreatScenario::builder(
            "TS-V2X-EAVESDROP",
            "Warnings and vehicle state broadcasts are collected to build movement profiles",
            ThreatType::InformationDisclosure,
        )
        .asset("V2X_COMM")
        .scenario(SC_CONSTRUCTION),
        // --- Use Case II threat scenarios (keyless opener). ---
        ThreatScenario::builder(
            TS_SPOOF_IMPERSONATION,
            "Spoofing of messages (e.g. 802.11p V2X) by impersonation",
            ThreatType::Spoofing,
        )
        .asset("BLE_LINK")
        .asset("SMARTPHONE_KEY")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-BLE-VULN",
            "Exploitation of security vulnerabilities in the Bluetooth stack to gain access \
             despite valid end-to-end encryption",
            ThreatType::ElevationOfPrivilege,
        )
        .asset("BLE_LINK")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-BLE-REPLAY",
            "Replaying of the opening command by an attacker",
            ThreatType::Repudiation,
        )
        .asset("BLE_LINK")
        .asset("LOCK_ACTUATOR")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-BLE-FLOOD",
            "Flooding of the CAN bus by forwarded Bluetooth requests, reducing availability of \
             the opening function",
            ThreatType::DenialOfService,
        )
        .asset("CAN_BUS")
        .asset("BLE_LINK")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-BLE-SOCIAL",
            "Social engineering attacks tricking the owner into pairing or approving an \
             attacker-controlled device",
            ThreatType::Spoofing,
        )
        .asset("SMARTPHONE_KEY")
        .asset("DRIVER_MAINT")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-BLE-TRACK",
            "BLE advertisements and open/close events are collected to build usage profiles",
            ThreatType::InformationDisclosure,
        )
        .asset("BLE_LINK")
        .scenario(SC_KEYLESS),
        ThreatScenario::builder(
            "TS-KEY-THEFT",
            "Illegal acquisition of key material from a stolen or compromised smartphone",
            ThreatType::ElevationOfPrivilege,
        )
        .asset("SMARTPHONE_KEY")
        .scenario(SC_KEYLESS)
        .attacker(AttackerProfile::Thief),
        ThreatScenario::builder(
            "TS-CLOUD-TAMPER",
            "Manipulation of booking/authorization records in the cloud-based sharing service",
            ThreatType::Tampering,
        )
        .asset("CLOUD_SHARING")
        .scenario(SC_ACCESS),
    ];
    for threat in threats {
        lib.add_threat_scenario(threat.build().expect("threat")).expect("threat insert");
    }
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableIRow {
    /// Scenario name (left column).
    pub scenario: &'static str,
    /// Sub-scenario description (right column).
    pub sub_scenario: &'static str,
}

/// The rows of the paper's Table I, in print order.
pub fn table_i_rows() -> Vec<TableIRow> {
    vec![
        TableIRow {
            scenario: "Road intersection",
            sub_scenario: "An intersection with traffic lights is approached by a hijacked \
                           automated vehicle that has no intention to stop",
        },
        TableIRow {
            scenario: "Road intersection",
            sub_scenario: "An automated vehicle approaches intersection which is equipped by a \
                           road-side system providing information about vulnerable road users",
        },
        TableIRow {
            scenario: "Road intersection",
            sub_scenario: "Emergency vehicle approaches a crowded intersection",
        },
        TableIRow {
            scenario: "Keep car secure for the whole vehicle product lifetime",
            sub_scenario: "Vehicle updates are changes made to the hardware or software of a \
                           security, safety, or privacy relevant item that is deployed in the \
                           field",
        },
        TableIRow {
            scenario: "Advanced access to vehicle",
            sub_scenario: "Demonstrator is reflecting the trend for property (vehicle) sharing. \
                           The traveler orders a car in the target destination via cloud-based \
                           service",
        },
    ]
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TableIiRow {
    /// Asset name.
    pub asset: &'static str,
    /// Asset groups, as printed (joined with "/").
    pub groups: &'static [AssetGroup],
}

/// The rows of the paper's Table II, in print order.
pub fn table_ii_rows() -> Vec<TableIiRow> {
    vec![
        TableIiRow { asset: "Gateway", groups: &[AssetGroup::Hardware] },
        TableIiRow { asset: "Driver and Maintenance personal", groups: &[AssetGroup::Person] },
        TableIiRow { asset: "ECU", groups: &[AssetGroup::Hardware, AssetGroup::Software] },
        TableIiRow {
            asset: "V2X communications",
            groups: &[AssetGroup::Information, AssetGroup::Hardware],
        },
    ]
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableIiiRow {
    /// Threat-scenario description.
    pub threat_scenario: &'static str,
    /// STRIDE classification.
    pub threat_type: ThreatType,
    /// ID of the library entry backing this row.
    pub library_id: &'static str,
}

/// The rows of the paper's Table III, in print order.
pub fn table_iii_rows() -> Vec<TableIiiRow> {
    vec![
        TableIiiRow {
            threat_scenario: "Spoofing of messages by impersonation",
            threat_type: ThreatType::Spoofing,
            library_id: "TS-LIFE-1",
        },
        TableIiiRow {
            threat_scenario: "External interfaces (such as USB) may be used as a point of \
                              attack, for example through code injection",
            threat_type: ThreatType::ElevationOfPrivilege,
            library_id: "TS-LIFE-2",
        },
        TableIiiRow {
            threat_scenario: "Manipulation of functions to operate systems remotely, such as \
                              remote key, immobiliser, and charging pile",
            threat_type: ThreatType::Tampering,
            library_id: "TS-LIFE-3",
        },
    ]
}

/// One row of the paper's Table V.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableVRow {
    /// Targeted asset.
    pub asset: &'static str,
    /// Threat-scenario description.
    pub threat_scenario: &'static str,
    /// STRIDE classification.
    pub threat_type: ThreatType,
    /// Selected attack type.
    pub attack_type: AttackType,
    /// High-level attack example.
    pub example: &'static str,
    /// ID of the library entry backing this row.
    pub library_id: &'static str,
}

/// The rows of the paper's Table V, in print order.
pub fn table_v_rows() -> Vec<TableVRow> {
    vec![
        TableVRow {
            asset: "Gateway",
            threat_scenario: "Abuse of privileges by staff (insider attack)",
            threat_type: ThreatType::ElevationOfPrivilege,
            attack_type: AttackType::GainElevatedAccess,
            example: "Technical staff creating backdoors or abusing their authorities",
            library_id: "TS-GW-INSIDER",
        },
        TableVRow {
            asset: "Gateway",
            threat_scenario: "Code injection, e.g. tampered software binary might be injected \
                              into the communication stream",
            threat_type: ThreatType::Tampering,
            attack_type: AttackType::Inject,
            example: "Injection of communication data e.g. on the CAN communication link or \
                      corruption of payload",
            library_id: "TS-GW-INJECT",
        },
        TableVRow {
            asset: "ECU",
            threat_scenario: "External interfaces such as USB or other ports may be used as a \
                              point of attack, for example through code injection",
            threat_type: ThreatType::ElevationOfPrivilege,
            attack_type: AttackType::GainUnauthorizedAccess,
            example: "Connecting USB memories infected with malware to the infotainment unit",
            library_id: "TS-LIFE-2",
        },
        TableVRow {
            asset: "ECU",
            threat_scenario: "Innocent victim (e.g. owner, operator or maintenance engineer) \
                              being tricked into taking an action to unintentionally load \
                              malware or enable an attack",
            threat_type: ThreatType::Spoofing,
            attack_type: AttackType::FakeMessages,
            example: "Deceiving the user by sending an email pretending to be from the OEM, \
                      asking the user to download a malware and install it on the vehicle",
            library_id: "TS-ECU-PHISH",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_builds_and_validates() {
        let lib = automotive_library();
        let stats = lib.stats();
        assert_eq!(stats.scenarios, 5);
        assert!(stats.assets >= 13);
        assert!(stats.threat_scenarios >= 20);
    }

    #[test]
    fn table_i_has_three_scenarios_five_subscenarios() {
        let rows = table_i_rows();
        assert_eq!(rows.len(), 5);
        let scenarios: std::collections::BTreeSet<_> = rows.iter().map(|r| r.scenario).collect();
        assert_eq!(scenarios.len(), 3);
    }

    #[test]
    fn table_i_rows_exist_in_library() {
        let lib = automotive_library();
        let total_subs: usize = [SC_INTERSECTION, SC_SECURE_LIFETIME, SC_ACCESS]
            .iter()
            .map(|id| lib.scenario(id).expect("scenario").sub_scenarios().len())
            .sum();
        assert_eq!(total_subs, table_i_rows().len());
    }

    #[test]
    fn table_ii_rows_match_library_groups() {
        let lib = automotive_library();
        for (row, asset_id) in
            table_ii_rows().iter().zip(["GATEWAY", "DRIVER_MAINT", "ECU", "V2X_COMM"])
        {
            let asset = lib.asset(asset_id).expect("asset");
            assert_eq!(asset.groups(), row.groups, "group mismatch for {asset_id}");
        }
    }

    #[test]
    fn table_iii_rows_match_library_types() {
        let lib = automotive_library();
        for row in table_iii_rows() {
            let ts = lib.threat_scenario(row.library_id).expect("threat");
            assert_eq!(ts.threat_type(), row.threat_type);
            assert!(ts.scenario().unwrap().as_str() == SC_SECURE_LIFETIME);
        }
    }

    #[test]
    fn table_v_attack_types_consistent_with_table_iv() {
        let lib = automotive_library();
        for row in table_v_rows() {
            let ts = lib.threat_scenario(row.library_id).expect("threat");
            assert_eq!(ts.threat_type(), row.threat_type, "row {}", row.library_id);
            assert!(
                ts.attack_types().contains(&row.attack_type),
                "attack type {} not in Table IV row for {}",
                row.attack_type,
                row.threat_type
            );
        }
    }

    #[test]
    fn use_case_threats_present() {
        let lib = automotive_library();
        let dos = lib.threat_scenario(TS_GATEWAY_DOS).expect("2.1.4");
        assert_eq!(dos.threat_type(), ThreatType::DenialOfService);
        let spoof = lib.threat_scenario(TS_SPOOF_IMPERSONATION).expect("3.1.4");
        assert_eq!(spoof.threat_type(), ThreatType::Spoofing);
    }

    #[test]
    fn every_stride_type_is_represented() {
        let lib = automotive_library();
        for tt in ThreatType::ALL {
            assert!(lib.threats_by_type(tt).count() > 0, "no threat scenario for {tt}");
        }
    }

    #[test]
    fn keyless_scenario_covers_paper_named_attacks() {
        // §IV-B prose: CAN flooding via forwarded BLE, replay of opening
        // command, BLE stack vulnerabilities, social engineering, profiles.
        let lib = automotive_library();
        for id in ["TS-BLE-FLOOD", "TS-BLE-REPLAY", "TS-BLE-VULN", "TS-BLE-SOCIAL", "TS-BLE-TRACK"]
        {
            let ts = lib.threat_scenario(id).expect(id);
            assert_eq!(ts.scenario().unwrap().as_str(), SC_KEYLESS);
        }
    }

    #[test]
    fn insider_threat_restricted_to_mechanic() {
        let lib = automotive_library();
        let ts = lib.threat_scenario("TS-GW-INSIDER").unwrap();
        assert!(ts.allows_attacker(AttackerProfile::EvilMechanic));
        assert!(!ts.allows_attacker(AttackerProfile::RemoteAttacker));
    }
}
