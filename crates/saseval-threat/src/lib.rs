//! The SaSeVAL threat library (paper §III-A, Step 1).
//!
//! The threat library is the security half of SaSeVAL's input: it stores
//! the driving **scenarios** under consideration (paper Table I), the
//! **assets** those scenarios expose with their asset groups (Table II),
//! and the **threat scenarios** identified per asset, classified by STRIDE
//! threat type (Table III) and thereby mapped to concrete **attack types**
//! (Table IV). The chain scenario → asset → threat scenario → threat type →
//! attack type is the paper's Table V.
//!
//! The library supports the paper's two test-space levers:
//!
//! * **RQ1 (completeness)**: [`ThreatLibrary`] validates referential
//!   integrity, and `saseval-core`'s inductive coverage check walks all
//!   threats.
//! * **RQ2 (prioritization)**: assets carry an [`AssetClass`](saseval_types::AssetClass)
//!   (saseval-types) and queries can filter by class priority so the threat
//!   analysis focuses on e.g. assets generic to all current vehicles.
//!
//! The built-in automotive library ([`builtin::automotive_library`])
//! reproduces the paper's Tables I–V verbatim and extends them with the
//! threat scenarios the two use cases of §IV reference (e.g. threat
//! scenario 2.1.4 used by attack AD20 in Table VI).
//!
//! # Example
//!
//! ```
//! use saseval_threat::builtin::automotive_library;
//! use saseval_types::{AttackType, ThreatType};
//!
//! let lib = automotive_library();
//! // Table VI links AD20 to threat scenario 2.1.4 (DoS on the gateway).
//! let ts = lib.threat_scenario("TS-2.1.4").expect("built-in threat");
//! assert_eq!(ts.threat_type(), ThreatType::DenialOfService);
//! assert!(ts.attack_types().contains(&AttackType::Disable));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asset;
pub mod builtin;
mod error;
mod library;
mod scenario;
mod threat;

pub use asset::Asset;
pub use error::ThreatLibraryError;
pub use library::{LibraryStats, ThreatLibrary};
pub use scenario::{Scenario, SubScenario};
pub use threat::ThreatScenario;
