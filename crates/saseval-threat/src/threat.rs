//! Threat scenarios — the entries of the threat library (paper Table III).

use serde::{Deserialize, Serialize};

use saseval_types::{
    attack_types_for, AssetId, AttackType, AttackerProfile, IdError, ScenarioId, ThreatScenarioId,
    ThreatType,
};

use crate::error::ThreatLibraryError;

/// A threat scenario, e.g. *"Spoofing of messages by impersonation"*
/// (paper Table III), tied to the assets it endangers and classified by
/// STRIDE threat type.
///
/// The STRIDE classification is what makes the library systematic
/// (§III-A3): the mapping to concrete [`AttackType`]s then follows
/// mechanically from the paper's Table IV via [`ThreatScenario::attack_types`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatScenario {
    id: ThreatScenarioId,
    description: String,
    threat_type: ThreatType,
    assets: Vec<AssetId>,
    scenario: Option<ScenarioId>,
    attackers: Vec<AttackerProfile>,
}

impl ThreatScenario {
    /// Starts building a threat scenario.
    ///
    /// # Example
    ///
    /// ```
    /// use saseval_threat::ThreatScenario;
    /// use saseval_types::{AttackType, ThreatType};
    ///
    /// // Table III, first row.
    /// let ts = ThreatScenario::builder(
    ///     "TS-3.1.4",
    ///     "Spoofing of messages (e.g. 802.11p V2X) by impersonation",
    ///     ThreatType::Spoofing,
    /// )
    /// .asset("V2X_COMM")
    /// .build()?;
    /// assert!(ts.attack_types().contains(&AttackType::Spoofing));
    /// # Ok::<(), saseval_threat::ThreatLibraryError>(())
    /// ```
    pub fn builder(
        id: impl AsRef<str>,
        description: impl Into<String>,
        threat_type: ThreatType,
    ) -> ThreatScenarioBuilder {
        ThreatScenarioBuilder {
            id: id.as_ref().to_owned(),
            description: description.into(),
            threat_type,
            assets: Vec::new(),
            scenario: None,
            attackers: Vec::new(),
        }
    }

    /// The threat scenario's identifier.
    pub fn id(&self) -> &ThreatScenarioId {
        &self.id
    }

    /// The natural-language description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The STRIDE classification.
    pub fn threat_type(&self) -> ThreatType {
        self.threat_type
    }

    /// The endangered assets (at least one).
    pub fn assets(&self) -> &[AssetId] {
        &self.assets
    }

    /// The driving scenario this threat was identified in, if recorded.
    pub fn scenario(&self) -> Option<&ScenarioId> {
        self.scenario.as_ref()
    }

    /// The attacker profiles able to mount this threat. Empty means
    /// unrestricted (any attacker).
    pub fn attackers(&self) -> &[AttackerProfile] {
        &self.attackers
    }

    /// The attack types that manifest this threat, per the paper's
    /// Table IV mapping from the STRIDE threat type.
    pub fn attack_types(&self) -> &'static [AttackType] {
        attack_types_for(self.threat_type)
    }

    /// Whether the given attacker profile can mount this threat.
    pub fn allows_attacker(&self, profile: AttackerProfile) -> bool {
        self.attackers.is_empty() || self.attackers.contains(&profile)
    }
}

/// Builder for [`ThreatScenario`] (see [`ThreatScenario::builder`]).
#[derive(Debug, Clone)]
pub struct ThreatScenarioBuilder {
    id: String,
    description: String,
    threat_type: ThreatType,
    assets: Vec<String>,
    scenario: Option<String>,
    attackers: Vec<AttackerProfile>,
}

impl ThreatScenarioBuilder {
    /// Adds an endangered asset.
    pub fn asset(mut self, asset: impl AsRef<str>) -> Self {
        self.assets.push(asset.as_ref().to_owned());
        self
    }

    /// Records the driving scenario the threat was identified in.
    pub fn scenario(mut self, scenario: impl AsRef<str>) -> Self {
        self.scenario = Some(scenario.as_ref().to_owned());
        self
    }

    /// Restricts the threat to an attacker profile (repeatable).
    pub fn attacker(mut self, profile: AttackerProfile) -> Self {
        if !self.attackers.contains(&profile) {
            self.attackers.push(profile);
        }
        self
    }

    /// Builds the threat scenario.
    ///
    /// # Errors
    ///
    /// * [`ThreatLibraryError::Id`] if any identifier is malformed.
    /// * [`ThreatLibraryError::ThreatWithoutAsset`] if no asset was added.
    pub fn build(self) -> Result<ThreatScenario, ThreatLibraryError> {
        let id = ThreatScenarioId::new(self.id)?;
        if self.assets.is_empty() {
            return Err(ThreatLibraryError::ThreatWithoutAsset(id));
        }
        let assets =
            self.assets.into_iter().map(AssetId::new).collect::<Result<Vec<_>, IdError>>()?;
        let scenario = self.scenario.map(ScenarioId::new).transpose()?;
        Ok(ThreatScenario {
            id,
            description: self.description,
            threat_type: self.threat_type,
            assets,
            scenario,
            attackers: self.attackers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_rows_classify() {
        let rows = [
            ("Spoofing of messages by impersonation", ThreatType::Spoofing),
            (
                "External interfaces (such as USB) may be used as a point of attack",
                ThreatType::ElevationOfPrivilege,
            ),
            ("Manipulation of functions to operate systems remotely", ThreatType::Tampering),
        ];
        for (i, (desc, tt)) in rows.iter().enumerate() {
            let ts = ThreatScenario::builder(format!("TS-{i}"), *desc, *tt)
                .asset("ECU")
                .build()
                .unwrap();
            assert_eq!(ts.threat_type(), *tt);
            assert!(!ts.attack_types().is_empty());
        }
    }

    #[test]
    fn asset_required() {
        let err = ThreatScenario::builder("TS-1", "d", ThreatType::Tampering).build().unwrap_err();
        assert!(matches!(err, ThreatLibraryError::ThreatWithoutAsset(_)));
    }

    #[test]
    fn attacker_restriction() {
        let ts = ThreatScenario::builder("TS-1", "insider", ThreatType::ElevationOfPrivilege)
            .asset("GATEWAY")
            .attacker(AttackerProfile::EvilMechanic)
            .build()
            .unwrap();
        assert!(ts.allows_attacker(AttackerProfile::EvilMechanic));
        assert!(!ts.allows_attacker(AttackerProfile::RemoteAttacker));
    }

    #[test]
    fn unrestricted_allows_everyone() {
        let ts =
            ThreatScenario::builder("TS-1", "d", ThreatType::Spoofing).asset("A").build().unwrap();
        for p in AttackerProfile::ALL {
            assert!(ts.allows_attacker(p));
        }
    }

    #[test]
    fn scenario_reference_recorded() {
        let ts = ThreatScenario::builder("TS-1", "d", ThreatType::Spoofing)
            .asset("A")
            .scenario("SC-SECURE-LIFETIME")
            .build()
            .unwrap();
        assert_eq!(ts.scenario().unwrap().as_str(), "SC-SECURE-LIFETIME");
    }
}
