//! Error type for the attack engine.

use std::fmt;

/// Error returned by attack construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The attack kind does not apply to the bound world.
    WorldMismatch {
        /// The attack's identifier.
        attack: String,
    },
    /// An attack parameter is out of range.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::WorldMismatch { attack } => {
                write!(f, "attack {attack} does not apply to the bound world")
            }
            AttackError::InvalidParameter { name, reason } => {
                write!(f, "invalid attack parameter {name}: {reason}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AttackError::WorldMismatch { attack: "AD20".into() };
        assert!(e.to_string().contains("AD20"));
    }
}
