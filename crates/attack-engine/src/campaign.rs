//! Campaign runner: executes suites of test cases and aggregates results.

use saseval_obs::Obs;
use serde::{Deserialize, Serialize};

use crate::executor::{execute_with_obs, ExecutionResult, TestCase};

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Per-case results, in case order.
    pub results: Vec<ExecutionResult>,
}

impl CampaignReport {
    /// Number of executed cases.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Number of cases where the attack succeeded (a safety impact
    /// materialized).
    pub fn successes(&self) -> usize {
        self.results.iter().filter(|r| r.attack_succeeded).count()
    }

    /// Number of cases with detection evidence.
    pub fn detections(&self) -> usize {
        self.results.iter().filter(|r| r.detected).count()
    }

    /// Attack success rate over the campaign (0.0–1.0); 0.0 for an empty
    /// campaign.
    pub fn success_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.successes() as f64 / self.results.len() as f64
    }

    /// Results for one attack description.
    pub fn for_attack<'a>(
        &'a self,
        attack_id: &'a str,
    ) -> impl Iterator<Item = &'a ExecutionResult> {
        self.results.iter().filter(move |r| r.attack_id == attack_id)
    }
}

/// Runs all cases serially, preserving order.
pub fn run_campaign(cases: &[TestCase]) -> CampaignReport {
    run_campaign_with_obs(cases, &Obs::noop())
}

/// [`run_campaign`] with metrics: the whole campaign is timed under the
/// `campaign.run_seconds` span and progress/verdict counts land in the
/// `campaign.*` counters (in addition to per-case `case.*` metrics).
pub fn run_campaign_with_obs(cases: &[TestCase], obs: &Obs) -> CampaignReport {
    let span = obs.span("campaign.run_seconds");
    let results: Vec<ExecutionResult> =
        cases.iter().map(|case| execute_with_obs(case, obs)).collect();
    record_campaign_totals(&results, obs);
    span.finish();
    CampaignReport { results }
}

/// [`run_campaign_with_obs`] through the lockstep batch executor
/// ([`crate::executor::execute_batch_with_obs`]): same report, same
/// `campaign.*` totals, but same-world cases step together so the
/// dispatch loop is amortized — the variant a long-running campaign
/// service schedules.
pub fn run_campaign_batched_with_obs(cases: &[TestCase], obs: &Obs) -> CampaignReport {
    let span = obs.span("campaign.run_seconds");
    let results = crate::executor::execute_batch_with_obs(cases, obs);
    record_campaign_totals(&results, obs);
    span.finish();
    CampaignReport { results }
}

fn record_campaign_totals(results: &[ExecutionResult], obs: &Obs) {
    obs.counter("campaign.cases", results.len() as u64);
    obs.counter("campaign.succeeded", results.iter().filter(|r| r.attack_succeeded).count() as u64);
    obs.counter("campaign.detected", results.iter().filter(|r| r.detected).count() as u64);
}

/// Runs all cases on a scoped thread pool, preserving result order. Each
/// case is independent (worlds are self-contained), so this is
/// embarrassingly parallel.
///
/// Workers claim case indices from a shared atomic counter and send
/// `(index, result)` pairs over a channel; only the coordinating thread
/// writes into the result vector, so no lock is held around result
/// storage (the old implementation serialized every completion on a
/// mutex over the whole vector).
pub fn run_campaign_parallel(cases: &[TestCase], threads: usize) -> CampaignReport {
    run_campaign_parallel_with_obs(cases, threads, &Obs::noop())
}

/// [`run_campaign_parallel`] with metrics. Workers emit per-case `case.*`
/// metrics through their own handle clones; the coordinating thread
/// records `campaign.completed` progress as results arrive, so campaign
/// bookkeeping never contends with workers.
pub fn run_campaign_parallel_with_obs(
    cases: &[TestCase],
    threads: usize,
    obs: &Obs,
) -> CampaignReport {
    let threads = threads.clamp(1, cases.len().max(1));
    if threads == 1 {
        return run_campaign_with_obs(cases, obs);
    }
    let span = obs.span("campaign.run_seconds");
    let mut results: Vec<Option<ExecutionResult>> = Vec::new();
    results.resize_with(cases.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (sender, receiver) = std::sync::mpsc::channel();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sender = sender.clone();
            let next = &next;
            let worker_obs = obs.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let result = execute_with_obs(&cases[i], &worker_obs);
                if sender.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(sender);
        for (i, result) in receiver.iter() {
            results[i] = Some(result);
            obs.counter("campaign.completed", 1);
        }
    });

    let results: Vec<ExecutionResult> =
        results.into_iter().map(|r| r.expect("all cases executed")).collect();
    record_campaign_totals(&results, obs);
    span.finish();
    CampaignReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AttackKind;
    use vehicle_sim::config::ControlSelection;

    fn small_suite() -> Vec<TestCase> {
        vec![
            TestCase {
                attack_id: "AD20".into(),
                label: "undefended".into(),
                kind: AttackKind::V2xFlood { per_tick: 40 },
                controls: ControlSelection::none(),
                seed: 1,
            },
            TestCase {
                attack_id: "AD20".into(),
                label: "defended".into(),
                kind: AttackKind::V2xFlood { per_tick: 40 },
                controls: ControlSelection::all(),
                seed: 1,
            },
            TestCase {
                attack_id: "AD06".into(),
                label: "jam".into(),
                kind: AttackKind::V2xJam,
                controls: ControlSelection::all(),
                seed: 1,
            },
        ]
    }

    #[test]
    fn serial_campaign_aggregates() {
        let report = run_campaign(&small_suite());
        assert_eq!(report.total(), 3);
        assert_eq!(report.successes(), 2, "undefended flood + jam succeed");
        assert!(report.success_rate() > 0.6 && report.success_rate() < 0.7);
        assert_eq!(report.for_attack("AD20").count(), 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let suite = small_suite();
        let serial = run_campaign(&suite);
        let parallel = run_campaign_parallel(&suite, 4);
        assert_eq!(serial.total(), parallel.total());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.attack_id, p.attack_id);
            assert_eq!(s.attack_succeeded, p.attack_succeeded);
            assert_eq!(s.detected, p.detected);
            assert_eq!(s.violated_goals, p.violated_goals);
        }
    }

    #[test]
    fn campaign_metrics_recorded() {
        let (obs, recorder) = Obs::memory();
        let report = run_campaign_with_obs(&small_suite(), &obs);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("campaign.cases"), Some(3));
        assert_eq!(snapshot.counter("campaign.succeeded"), Some(report.successes() as u64));
        assert_eq!(snapshot.counter("campaign.detected"), Some(report.detections() as u64));
        assert_eq!(snapshot.histogram("campaign.run_seconds").map(|h| h.count), Some(1));
        for phase in ["case.precondition_seconds", "case.inject_seconds", "case.evaluate_seconds"] {
            assert_eq!(snapshot.histogram(phase).map(|h| h.count), Some(3), "{phase}");
        }
        assert_eq!(snapshot.events.iter().filter(|e| e.name == "case.verdict").count(), 3);
        // The worlds' own instrumentation flows through the same handle.
        assert!(snapshot.counter("world.construction.ticks").unwrap_or(0) > 0);
    }

    #[test]
    fn parallel_campaign_metrics_track_progress() {
        let (obs, recorder) = Obs::memory();
        let report = run_campaign_parallel_with_obs(&small_suite(), 2, &obs);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("campaign.completed"), Some(report.total() as u64));
        assert_eq!(snapshot.counter("campaign.cases"), Some(report.total() as u64));
        assert_eq!(snapshot.events.iter().filter(|e| e.name == "case.verdict").count(), 3);
    }

    #[test]
    fn empty_campaign() {
        let report = run_campaign(&[]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.success_rate(), 0.0);
    }
}
