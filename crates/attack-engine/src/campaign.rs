//! Campaign runner: executes suites of test cases and aggregates results.

use serde::{Deserialize, Serialize};

use crate::executor::{execute, ExecutionResult, TestCase};

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Per-case results, in case order.
    pub results: Vec<ExecutionResult>,
}

impl CampaignReport {
    /// Number of executed cases.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Number of cases where the attack succeeded (a safety impact
    /// materialized).
    pub fn successes(&self) -> usize {
        self.results.iter().filter(|r| r.attack_succeeded).count()
    }

    /// Number of cases with detection evidence.
    pub fn detections(&self) -> usize {
        self.results.iter().filter(|r| r.detected).count()
    }

    /// Attack success rate over the campaign (0.0–1.0); 0.0 for an empty
    /// campaign.
    pub fn success_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.successes() as f64 / self.results.len() as f64
    }

    /// Results for one attack description.
    pub fn for_attack<'a>(&'a self, attack_id: &'a str) -> impl Iterator<Item = &'a ExecutionResult> {
        self.results.iter().filter(move |r| r.attack_id == attack_id)
    }
}

/// Runs all cases serially, preserving order.
pub fn run_campaign(cases: &[TestCase]) -> CampaignReport {
    CampaignReport { results: cases.iter().map(execute).collect() }
}

/// Runs all cases on a crossbeam-scoped thread pool, preserving result
/// order. Each case is independent (worlds are self-contained), so this
/// is embarrassingly parallel.
pub fn run_campaign_parallel(cases: &[TestCase], threads: usize) -> CampaignReport {
    let threads = threads.max(1);
    let mut results: Vec<Option<ExecutionResult>> = Vec::new();
    results.resize_with(cases.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = parking_lot::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let result = execute(&cases[i]);
                results_mutex.lock()[i] = Some(result);
            });
        }
    })
    .expect("campaign worker panicked");

    CampaignReport {
        results: results.into_iter().map(|r| r.expect("all cases executed")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AttackKind;
    use vehicle_sim::config::ControlSelection;

    fn small_suite() -> Vec<TestCase> {
        vec![
            TestCase {
                attack_id: "AD20".into(),
                label: "undefended".into(),
                kind: AttackKind::V2xFlood { per_tick: 40 },
                controls: ControlSelection::none(),
                seed: 1,
            },
            TestCase {
                attack_id: "AD20".into(),
                label: "defended".into(),
                kind: AttackKind::V2xFlood { per_tick: 40 },
                controls: ControlSelection::all(),
                seed: 1,
            },
            TestCase {
                attack_id: "AD06".into(),
                label: "jam".into(),
                kind: AttackKind::V2xJam,
                controls: ControlSelection::all(),
                seed: 1,
            },
        ]
    }

    #[test]
    fn serial_campaign_aggregates() {
        let report = run_campaign(&small_suite());
        assert_eq!(report.total(), 3);
        assert_eq!(report.successes(), 2, "undefended flood + jam succeed");
        assert!(report.success_rate() > 0.6 && report.success_rate() < 0.7);
        assert_eq!(report.for_attack("AD20").count(), 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let suite = small_suite();
        let serial = run_campaign(&suite);
        let parallel = run_campaign_parallel(&suite, 4);
        assert_eq!(serial.total(), parallel.total());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.attack_id, p.attack_id);
            assert_eq!(s.attack_succeeded, p.attack_succeeded);
            assert_eq!(s.detected, p.detected);
            assert_eq!(s.violated_goals, p.violated_goals);
        }
    }

    #[test]
    fn empty_campaign() {
        let report = run_campaign(&[]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.success_rate(), 0.0);
    }
}
