//! Attack composition: run several attacker hooks against the same world.
//!
//! Some of the catalog's attack descriptions are *combined* attacks —
//! AD23 of Use Case I jams the channel and then spoofs a fallback speed
//! limit during the reception gap. [`Composed`] runs any number of hooks
//! in order on every tick, so such descriptions compile to one executable
//! attacker.

use saseval_types::SimTime;
use vehicle_sim::AttackerHook;

/// Runs the contained hooks in order on every tick.
pub struct Composed<W> {
    hooks: Vec<Box<dyn AttackerHook<W>>>,
}

impl<W> Default for Composed<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> std::fmt::Debug for Composed<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composed").field("hooks", &self.hooks.len()).finish()
    }
}

impl<W> Composed<W> {
    /// Creates an empty composition (a no-op attacker).
    pub fn new() -> Self {
        Composed { hooks: Vec::new() }
    }

    /// Appends a hook (consulted after the ones already added).
    pub fn with(mut self, hook: impl AttackerHook<W> + 'static) -> Self {
        self.hooks.push(Box::new(hook));
        self
    }

    /// Number of composed hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Whether the composition is empty.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl<W> AttackerHook<W> for Composed<W> {
    fn on_tick(&mut self, world: &mut W, now: SimTime) {
        for hook in &mut self.hooks {
            hook.on_tick(world, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::v2x::{JamChannel, SignedSpoofLimit};
    use saseval_types::Ftti;
    use vehicle_sim::config::ControlSelection;
    use vehicle_sim::construction::{ConstructionConfig, ConstructionWorld};

    struct Counter(u32);

    impl AttackerHook<ConstructionWorld> for Counter {
        fn on_tick(&mut self, _world: &mut ConstructionWorld, _now: SimTime) {
            self.0 += 1;
        }
    }

    #[test]
    fn empty_composition_is_noop() {
        let mut composed: Composed<ConstructionWorld> = Composed::new();
        assert!(composed.is_empty());
        let outcome = ConstructionWorld::new(ConstructionConfig::default()).run(&mut composed);
        assert!(!outcome.any_violation());
    }

    #[test]
    fn all_hooks_tick() {
        let composed = Composed::new().with(Counter(0)).with(Counter(0));
        assert_eq!(composed.len(), 2);
        let mut composed = composed;
        let config = ConstructionConfig {
            initial_speed_mps: 0.0,
            horizon: Ftti::from_millis(50),
            ..Default::default()
        };
        let _ = ConstructionWorld::new(config).run(&mut composed);
        // Both counters ran every tick; we can only observe indirectly via
        // no panic — compose order is covered by the AD23 test below.
    }

    #[test]
    fn ad23_jam_then_spoof_fallback_limit() {
        // AD23: jam the channel during the approach, then (as an insider)
        // transmit the forged limit right after the jam window. With the
        // full stack the spoofed limit is signed and inside the plausible
        // range, so SG03 falls — exactly the combined residual risk the
        // catalog's AD23 describes.
        let jam_until = SimTime::from_secs(40);
        let mut attack: Composed<ConstructionWorld> = Composed::new()
            .with(JamChannel::new(SimTime::ZERO, jam_until))
            .with(SignedSpoofLimit::new(100, Ftti::from_millis(100)));
        let config = ConstructionConfig { controls: ControlSelection::all(), ..Default::default() };
        let outcome = ConstructionWorld::new(config).run(&mut attack);
        assert!(outcome.sg03_violated, "{outcome:?}");
    }
}
