//! Executable attack implementations, grouped by targeted medium.
//!
//! Every struct here implements
//! [`AttackerHook`](vehicle_sim::AttackerHook) for one of the simulated
//! worlds and corresponds to one or more attack types of the paper's
//! Table IV (see the per-struct docs).

pub mod ble;
pub mod compose;
pub mod v2x;

pub use ble::{
    AllowlistTamper, BleJam, CanStubInject, KeyGuessStrategy, KeyIdSpoof, ReplayOpen, ServiceFlood,
    SpoofClose,
};
pub use compose::Composed;
pub use v2x::{
    AuthenticatedFlood, DelayedDelivery, JamChannel, ReplayStaleWarning, SignedSpoofLimit,
    UnsignedSpoof,
};
