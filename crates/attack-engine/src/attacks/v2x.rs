//! Attacks on the RSU–OBU V2X interface (Use Case I).

use saseval_types::{Ftti, SimTime};
use vehicle_net::v2x::V2xMessage;
use vehicle_sim::construction::{ConstructionWorld, MSG_ROADWORKS, MSG_SIGNAGE};
use vehicle_sim::AttackerHook;

/// Table VI's AD20: an *authenticated* attacker floods the OBU_RSU
/// interface with extra messages ("with high frequency or in chaotic
/// way") to overload the ECU. Attack types: Denial of service / Disable.
///
/// The attacker starts once the vehicle approaches the construction site
/// (the precondition of AD20) and sends `per_tick` correctly signed
/// road-works messages per tick under its own sender identity.
#[derive(Debug, Clone)]
pub struct AuthenticatedFlood {
    /// The attacker's sender identity.
    pub sender: String,
    /// Messages injected per tick.
    pub per_tick: usize,
    /// Distance to the site below which the attack runs (the
    /// precondition), in metres.
    pub within_m: f64,
}

impl AuthenticatedFlood {
    /// AD20's parameters: 40 messages per tick (4 000/s), starting while
    /// the vehicle approaches the site — before it reaches the RSU range,
    /// so the service is already overloaded when the genuine warning
    /// would arrive.
    pub fn ad20() -> Self {
        AuthenticatedFlood { sender: "attacker".to_owned(), per_tick: 40, within_m: 1_200.0 }
    }
}

impl AttackerHook<ConstructionWorld> for AuthenticatedFlood {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        let distance = world.config().site_position_m - world.vehicle().position_m();
        if distance > self.within_m || distance <= 0.0 {
            return;
        }
        for i in 0..self.per_tick {
            // "extra messages … in chaotic way" (Table VI): validly
            // signed frames of a non-warning type, useless but
            // budget-consuming.
            let payload = [0xEE, (i % 251) as u8];
            let msg = world.signed_message(&self.sender.clone(), &payload, now);
            world.channel_mut().broadcast(msg, now);
        }
    }
}

/// An unauthenticated forgery: the attacker injects a crafted payload
/// without a valid tag. Models the Spoofing ("Fake messages") and
/// Tampering ("Alter", "Inject") attack types — an altered message fails
/// the integrity check exactly like a forged one.
#[derive(Debug, Clone)]
pub struct UnsignedSpoof {
    /// The attacker's claimed sender identity.
    pub sender: String,
    /// The forged payload.
    pub payload: Vec<u8>,
    /// Injection period (every `period` of virtual time).
    pub period: Ftti,
    next: Option<SimTime>,
}

impl UnsignedSpoof {
    /// Creates a periodic forgery injection.
    pub fn new(sender: impl Into<String>, payload: Vec<u8>, period: Ftti) -> Self {
        UnsignedSpoof { sender: sender.into(), payload, period, next: None }
    }

    /// AD10: a forged in-vehicle speed limit of `limit` km/h.
    pub fn fake_limit(limit: u8) -> Self {
        UnsignedSpoof::new("RSU-1", vec![MSG_SIGNAGE, limit], Ftti::from_millis(100))
    }
}

impl AttackerHook<ConstructionWorld> for UnsignedSpoof {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        let due = match self.next {
            None => true,
            Some(at) => now >= at,
        };
        if !due {
            return;
        }
        self.next = Some(now + self.period);
        let msg = V2xMessage::new(
            self.sender.clone(),
            u16::from(self.payload.first().copied().unwrap_or(0)),
            bytes::Bytes::copy_from_slice(&self.payload),
            now,
        );
        world.channel_mut().broadcast(msg, now);
    }
}

/// An insider with the signing key spoofs excessive signage (attack type
/// "Fake messages" mounted by an evil-mechanic profile). Only the
/// plausibility check can catch limits outside the physical range; limits
/// inside the range slip through every message-level control — the
/// ablation benches surface that residual risk.
#[derive(Debug, Clone)]
pub struct SignedSpoofLimit {
    /// The spoofed limit in km/h.
    pub limit: u8,
    /// Injection period.
    pub period: Ftti,
    next: Option<SimTime>,
}

impl SignedSpoofLimit {
    /// Creates the insider signage spoof.
    pub fn new(limit: u8, period: Ftti) -> Self {
        SignedSpoofLimit { limit, period, next: None }
    }
}

impl AttackerHook<ConstructionWorld> for SignedSpoofLimit {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        let due = match self.next {
            None => true,
            Some(at) => now >= at,
        };
        if !due {
            return;
        }
        self.next = Some(now + self.period);
        let msg = world.signed_message("RSU-1", &[MSG_SIGNAGE, self.limit], now);
        world.channel_mut().broadcast(msg, now);
    }
}

/// AD17: replays genuine warnings recorded "at other locations or from
/// other vehicles" (attack type Replay). The replayed message is
/// correctly signed but stale: its generation timestamp lies `staleness`
/// in the past.
#[derive(Debug, Clone)]
pub struct ReplayStaleWarning {
    /// When to inject the replay.
    pub at: SimTime,
    /// Age of the recorded warning.
    pub staleness: Ftti,
    done: bool,
}

impl ReplayStaleWarning {
    /// Creates the replay injection.
    pub fn new(at: SimTime, staleness: Ftti) -> Self {
        ReplayStaleWarning { at, staleness, done: false }
    }
}

impl AttackerHook<ConstructionWorld> for ReplayStaleWarning {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        if self.done || now < self.at {
            return;
        }
        self.done = true;
        // A genuine recorded message: signed with the RSU key at its
        // original (old) generation time.
        let generated =
            SimTime::from_micros(now.as_micros().saturating_sub(self.staleness.as_micros()));
        let msg = world.signed_message("RSU-1", &[MSG_ROADWORKS, 200], generated);
        world.channel_mut().broadcast(msg, now);
    }
}

/// AD06/AD23: jams the V2X channel (attack type Jamming).
#[derive(Debug, Clone)]
pub struct JamChannel {
    /// Jam start.
    pub from: SimTime,
    /// Jam end.
    pub until: SimTime,
    armed: bool,
}

impl JamChannel {
    /// Creates a jamming window.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        JamChannel { from, until, armed: true }
    }
}

impl AttackerHook<ConstructionWorld> for JamChannel {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        if self.armed && now >= self.from {
            world.channel_mut().jam(self.until);
            self.armed = false;
        }
    }
}

/// AD05/AD16: store-and-forward delay (attack type Delay). The attacker
/// jams direct reception until `release_at`, then re-broadcasts every
/// sniffed genuine message unchanged (signature and original timestamp
/// intact) — the OBU sees each warning late and stale.
#[derive(Debug, Clone)]
pub struct DelayedDelivery {
    /// When the attacker releases the buffered messages.
    pub release_at: SimTime,
    replayed: bool,
}

impl DelayedDelivery {
    /// Creates the delay attack releasing at `release_at`.
    pub fn new(release_at: SimTime) -> Self {
        DelayedDelivery { release_at, replayed: false }
    }
}

impl AttackerHook<ConstructionWorld> for DelayedDelivery {
    fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
        if now < self.release_at {
            world.channel_mut().jam(self.release_at);
        } else if !self.replayed {
            self.replayed = true;
            let buffered: Vec<V2xMessage> = world.sniffed().to_vec();
            for msg in buffered {
                world.channel_mut().broadcast(msg, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehicle_sim::config::ControlSelection;
    use vehicle_sim::construction::{ConstructionConfig, ConstructionWorld};

    fn run(
        controls: ControlSelection,
        hook: &mut dyn AttackerHook<ConstructionWorld>,
    ) -> vehicle_sim::construction::ConstructionOutcome {
        let config = ConstructionConfig { controls, ..Default::default() };
        ConstructionWorld::new(config).run(hook)
    }

    #[test]
    fn ad20_flood_shuts_service_without_counter() {
        let controls = ControlSelection { flood_protection: false, ..ControlSelection::all() };
        let outcome = run(controls, &mut AuthenticatedFlood::ad20());
        assert!(outcome.service_shutdown, "{outcome:?}");
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn ad20_flood_contained_by_counter() {
        let outcome = run(ControlSelection::all(), &mut AuthenticatedFlood::ad20());
        assert!(!outcome.service_shutdown, "{outcome:?}");
        assert!(!outcome.sg01_violated);
        assert!(outcome.isolated_senders.iter().any(|s| s == "attacker"));
    }

    #[test]
    fn fake_limit_rejected_with_auth_accepted_without() {
        let with_auth = run(ControlSelection::all(), &mut UnsignedSpoof::fake_limit(120));
        assert!(!with_auth.sg03_violated);
        // Emergent self-DoS: the forger claimed the genuine RSU identity,
        // so the broken-message counter isolates "RSU-1" itself.
        assert!(with_auth.isolated_senders.iter().any(|s| s == "RSU-1"));
        let without = run(ControlSelection::none(), &mut UnsignedSpoof::fake_limit(120));
        assert!(without.sg03_violated, "{without:?}");
    }

    #[test]
    fn insider_limit_spoof_beats_everything_but_plausibility() {
        // Limit 200 km/h: plausibility (5..=130) catches it.
        let caught =
            run(ControlSelection::all(), &mut SignedSpoofLimit::new(200, Ftti::from_millis(100)));
        assert!(!caught.sg03_violated);
        // Limit 100 km/h: inside the plausible range, slips through even
        // the full stack — the residual risk the ablation bench reports.
        let slipped =
            run(ControlSelection::all(), &mut SignedSpoofLimit::new(100, Ftti::from_millis(100)));
        assert!(slipped.sg03_violated, "{slipped:?}");
    }

    #[test]
    fn stale_replay_rejected_by_freshness() {
        let mut replay = ReplayStaleWarning::new(SimTime::from_secs(1), Ftti::from_secs(30));
        let outcome = run(ControlSelection::all(), &mut replay);
        // Vehicle is far from the site at t=1s; a successful replay would
        // surface an unintended warning there.
        assert_eq!(outcome.unintended_warnings, 0, "{outcome:?}");
        let requested = outcome.takeover_requested_at.expect("nominal warning still arrives");
        assert!(requested > SimTime::from_secs(5), "take-over only at the genuine site");
    }

    #[test]
    fn stale_replay_accepted_without_freshness() {
        let mut replay = ReplayStaleWarning::new(SimTime::from_secs(1), Ftti::from_secs(30));
        let controls = ControlSelection {
            freshness: false,
            replay_protection: false,
            ..ControlSelection::all()
        };
        let outcome = run(controls, &mut replay);
        assert!(outcome.unintended_warnings > 0, "{outcome:?}");
        let requested = outcome.takeover_requested_at.expect("replay triggers take-over");
        assert!(
            requested < SimTime::from_secs(2),
            "unintended take-over long before the site: {requested}"
        );
    }

    #[test]
    fn jamming_defeats_message_level_controls() {
        let mut jam = JamChannel::new(SimTime::ZERO, SimTime::from_secs(3_600));
        let outcome = run(ControlSelection::all(), &mut jam);
        assert!(outcome.sg01_violated, "{outcome:?}");
        assert!(outcome.takeover_requested_at.is_none());
    }

    #[test]
    fn delay_attack_postpones_takeover() {
        let nominal = ConstructionWorld::new(ConstructionConfig::default()).run_nominal();
        let nominal_request = nominal.takeover_requested_at.unwrap();
        // Without freshness the delayed (stale) copies are accepted late.
        let controls = ControlSelection {
            freshness: false,
            replay_protection: false,
            ..ControlSelection::all()
        };
        let config = ConstructionConfig { controls, ..Default::default() };
        let release = nominal_request + Ftti::from_secs(10);
        let outcome = ConstructionWorld::new(config).run(&mut DelayedDelivery::new(release));
        let at = outcome.takeover_requested_at.expect("released copies accepted");
        assert!(
            at > nominal_request + Ftti::from_secs(5),
            "delayed request {at} vs nominal {nominal_request}"
        );
    }

    #[test]
    fn delay_attack_with_freshness_means_no_takeover_from_stale_copies() {
        let nominal = ConstructionWorld::new(ConstructionConfig::default()).run_nominal();
        let release = nominal.takeover_requested_at.unwrap() + Ftti::from_secs(10);
        let outcome = ConstructionWorld::new(ConstructionConfig::default())
            .run(&mut DelayedDelivery::new(release));
        // Stale copies are rejected; only genuinely fresh post-release
        // broadcasts (if the vehicle is still approaching) can help.
        if let Some(at) = outcome.takeover_requested_at {
            assert!(at >= release, "{at} vs release {release}");
        }
    }
}
