//! Attacks on the keyless-opener BLE/gateway path (Use Case II).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use saseval_types::SimTime;
use security_controls::controls::{IdAllowList, MacAuthenticator};
use security_controls::mac::Tag;
use serde::{Deserialize, Serialize};
use vehicle_sim::keyless::{Command, KeylessWorld, CMD_CLOSE, CMD_OPEN, CMD_SERVICE, OWNER_PHONE};
use vehicle_sim::AttackerHook;

/// How AD08 guesses electronic key IDs (Table VII implementation
/// comments: "a) Randomly replace IDs of keys and b) test against
/// increasing IDs (if a valid ID is known)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyGuessStrategy {
    /// Uniformly random 64-bit IDs.
    Random,
    /// Incrementing IDs starting from a known base.
    Incrementing {
        /// The known starting ID.
        base: u64,
    },
}

/// Table VII's AD08: "The attacker uses modified keys to gain access to
/// the vehicle" (Threat: Spoofing — Attack: Spoofing). The precondition
/// grants an authenticated communication link, so the commands carry
/// valid MACs; only the electronic-ID allow-list can stop them.
#[derive(Debug)]
pub struct KeyIdSpoof {
    /// The guessing strategy.
    pub strategy: KeyGuessStrategy,
    /// Attempts per tick.
    pub per_tick: u32,
    /// Total attempt budget.
    pub budget: u32,
    sent: u32,
    rng: StdRng,
}

impl KeyIdSpoof {
    /// Creates the spoofing attack with the given guessing strategy.
    pub fn new(strategy: KeyGuessStrategy, per_tick: u32, budget: u32, seed: u64) -> Self {
        KeyIdSpoof { strategy, per_tick, budget, sent: 0, rng: StdRng::seed_from_u64(seed) }
    }

    fn next_id(&mut self) -> u64 {
        match self.strategy {
            KeyGuessStrategy::Random => self.rng.random(),
            KeyGuessStrategy::Incrementing { base } => base.wrapping_add(u64::from(self.sent)),
        }
    }
}

impl AttackerHook<KeylessWorld> for KeyIdSpoof {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        for _ in 0..self.per_tick {
            if self.sent >= self.budget || world.lock_open() {
                return;
            }
            let key_id = self.next_id();
            self.sent += 1;
            let tag =
                MacAuthenticator::sign(world.command_key(), "attacker", &[CMD_OPEN], now).raw();
            let cmd = Command { cmd: CMD_OPEN, key_id, ts: now.as_micros(), response: 0, tag };
            world.send_ble("attacker", cmd.encode());
        }
    }
}

/// AD01: replays the owner's recorded opening exchange under the owner's
/// radio identity (Threat: Repudiation — Attack: Replay).
#[derive(Debug, Clone)]
pub struct ReplayOpen {
    /// When to replay.
    pub at: SimTime,
    done: bool,
}

impl ReplayOpen {
    /// Creates the replay, firing at `at`.
    pub fn new(at: SimTime) -> Self {
        ReplayOpen { at, done: false }
    }
}

impl AttackerHook<KeylessWorld> for ReplayOpen {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        if self.done || now < self.at {
            return;
        }
        // Find the first sniffed OPEN command.
        let recorded = world
            .sniffed()
            .iter()
            .find(|p| Command::decode(p).is_some_and(|c| c.cmd == CMD_OPEN))
            .cloned();
        if let Some(frame) = recorded {
            world.send_ble(OWNER_PHONE, frame);
            self.done = true;
        }
    }
}

/// AD14: floods the gateway with BLE service requests that fan out onto
/// the CAN bus (Threat: Denial of service — Attack: Denial of service).
#[derive(Debug, Clone)]
pub struct ServiceFlood {
    /// Service requests per tick.
    pub per_tick: usize,
}

impl ServiceFlood {
    /// AD14's parameters: 30 requests per tick (3 000/s at a 10 ms tick),
    /// beyond the 125 kbit/s CAN bus's frame capacity.
    pub fn ad14() -> Self {
        ServiceFlood { per_tick: 30 }
    }
}

impl AttackerHook<KeylessWorld> for ServiceFlood {
    fn on_tick(&mut self, world: &mut KeylessWorld, _now: SimTime) {
        for _ in 0..self.per_tick {
            let cmd = Command { cmd: CMD_SERVICE, key_id: 0, ts: 0, response: 0, tag: 0 };
            world.send_ble("attacker", cmd.encode());
        }
    }
}

/// AD15: jams the BLE channel while the owner tries to open (Threat:
/// Denial of service — Attack: Jamming).
#[derive(Debug, Clone)]
pub struct BleJam {
    /// Jam start.
    pub from: SimTime,
    /// Jam end.
    pub until: SimTime,
    armed: bool,
}

impl BleJam {
    /// Creates the jamming window.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        BleJam { from, until, armed: true }
    }
}

impl AttackerHook<KeylessWorld> for BleJam {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        if self.armed && now >= self.from {
            world.link_mut().jam(self.until);
            self.armed = false;
        }
    }
}

/// AD18: spoofs a close command while a person is entering (Threat:
/// Spoofing — Attack: Fake messages). The attacker holds the command key
/// and the owner's key ID (relay-grade access); only challenge–response
/// or an entry interlock stops the closing.
#[derive(Debug, Clone)]
pub struct SpoofClose {
    /// When to send the close.
    pub at: SimTime,
    /// The owner key ID to claim.
    pub claimed_id: u64,
    done: bool,
}

impl SpoofClose {
    /// Creates the close spoof.
    pub fn new(at: SimTime, claimed_id: u64) -> Self {
        SpoofClose { at, claimed_id, done: false }
    }
}

impl AttackerHook<KeylessWorld> for SpoofClose {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        if self.done || now < self.at {
            return;
        }
        self.done = true;
        let tag = MacAuthenticator::sign(world.command_key(), "attacker", &[CMD_CLOSE], now).raw();
        let cmd = Command {
            cmd: CMD_CLOSE,
            key_id: self.claimed_id,
            ts: now.as_micros(),
            response: 0,
            tag,
        };
        world.send_ble("attacker", cmd.encode());
    }
}

/// AD09: injects a forged open frame directly on the CAN bus via an
/// exposed stub behind a compromised gateway port (Threat: Tampering —
/// Attack: Inject). Only the gateway's segment filtering stops it.
#[derive(Debug, Clone)]
pub struct CanStubInject {
    /// When to inject.
    pub at: SimTime,
    /// The command to inject ([`CMD_OPEN`] or [`CMD_CLOSE`]).
    pub cmd: u8,
    done: bool,
}

impl CanStubInject {
    /// Creates the stub injection.
    pub fn new(at: SimTime, cmd: u8) -> Self {
        CanStubInject { at, cmd, done: false }
    }
}

impl AttackerHook<KeylessWorld> for CanStubInject {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        if self.done || now < self.at {
            return;
        }
        self.done = true;
        world.inject_can_from_stub(self.cmd);
    }
}

/// AD24: tampers with the allow-list of authorized key IDs (Threat:
/// Tampering — Attack: Config. change), then opens with the added ID.
#[derive(Debug, Clone)]
pub struct AllowlistTamper {
    /// The ID the attacker tries to whitelist.
    pub rogue_id: u64,
    /// Whether the attacker somehow holds the configuration write key
    /// (insider variant).
    pub with_auth: Option<Tag>,
    /// When to attempt the write.
    pub at: SimTime,
    wrote: bool,
    opened: bool,
}

impl AllowlistTamper {
    /// Creates the tamper attempt; `with_auth` carries a valid write tag
    /// for the insider variant.
    pub fn new(rogue_id: u64, with_auth: Option<Tag>, at: SimTime) -> Self {
        AllowlistTamper { rogue_id, with_auth, at, wrote: false, opened: false }
    }

    /// Computes the legitimate write tag for `id` — test helper for the
    /// insider variant.
    pub fn insider_auth(config_key: security_controls::mac::MacKey, id: u64) -> Tag {
        IdAllowList::write_auth(config_key, id)
    }
}

impl AttackerHook<KeylessWorld> for AllowlistTamper {
    fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
        if now < self.at {
            return;
        }
        if !self.wrote {
            self.wrote = true;
            let auth = self.with_auth.unwrap_or(Tag::from_raw(0xDEAD_BEEF));
            let _ = world.try_allowlist_write(self.rogue_id, auth);
            return;
        }
        if !self.opened {
            self.opened = true;
            let tag =
                MacAuthenticator::sign(world.command_key(), "attacker", &[CMD_OPEN], now).raw();
            let cmd = Command {
                cmd: CMD_OPEN,
                key_id: self.rogue_id,
                ts: now.as_micros(),
                response: 0,
                tag,
            };
            world.send_ble("attacker", cmd.encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saseval_types::Ftti;
    use vehicle_sim::config::ControlSelection;
    use vehicle_sim::keyless::{KeylessConfig, KeylessOutcome};

    fn run_with(
        controls: ControlSelection,
        setup: impl FnOnce(&mut KeylessWorld),
        hook: &mut dyn AttackerHook<KeylessWorld>,
    ) -> KeylessOutcome {
        let config = KeylessConfig { controls, ..Default::default() };
        let mut world = KeylessWorld::new(config);
        setup(&mut world);
        world.run(hook)
    }

    fn no_cr() -> ControlSelection {
        ControlSelection { challenge_response: false, ..ControlSelection::all() }
    }

    #[test]
    fn ad08_random_ids_rejected_by_allowlist() {
        let mut spoof = KeyIdSpoof::new(KeyGuessStrategy::Random, 5, 2_000, 1);
        let outcome = run_with(no_cr(), |_| {}, &mut spoof);
        assert!(!outcome.lock_open, "{outcome:?}");
        assert!(!outcome.sg01_violated);
    }

    #[test]
    fn ad08_incrementing_ids_rejected_by_allowlist() {
        // Base close to (but not hitting within budget) the owner ID.
        let owner = KeylessConfig::default().owner_key_id;
        let mut spoof =
            KeyIdSpoof::new(KeyGuessStrategy::Incrementing { base: owner - 10_000 }, 5, 2_000, 1);
        let outcome = run_with(no_cr(), |_| {}, &mut spoof);
        assert!(!outcome.lock_open);
    }

    #[test]
    fn ad08_incrementing_ids_open_when_budget_reaches_owner_id() {
        // With a known nearby ID the incrementing strategy hits the
        // allowed ID before the broken-message counter (threshold 10)
        // isolates the attacker — Table VII's variant (b).
        let owner = KeylessConfig::default().owner_key_id;
        let mut spoof =
            KeyIdSpoof::new(KeyGuessStrategy::Incrementing { base: owner - 5 }, 1, 2_000, 1);
        let outcome = run_with(no_cr(), |_| {}, &mut spoof);
        assert!(outcome.lock_open, "{outcome:?}");
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn ad08_succeeds_without_allowlist() {
        let controls = ControlSelection { allow_list: false, ..no_cr() };
        let mut spoof = KeyIdSpoof::new(KeyGuessStrategy::Random, 1, 10, 1);
        let outcome = run_with(controls, |_| {}, &mut spoof);
        assert!(outcome.lock_open);
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn ad14_flood_starves_open_without_rate_limit() {
        let controls = ControlSelection { flood_protection: false, ..no_cr() };
        let outcome = run_with(
            controls,
            |w| w.schedule_owner_open(SimTime::from_secs(1)),
            &mut ServiceFlood::ad14(),
        );
        assert!(outcome.sg03_violated, "{outcome:?}");
    }

    #[test]
    fn ad14_flood_contained_by_rate_limit() {
        let outcome = run_with(
            no_cr(),
            |w| w.schedule_owner_open(SimTime::from_secs(1)),
            &mut ServiceFlood::ad14(),
        );
        assert!(!outcome.sg03_violated, "{outcome:?}");
    }

    #[test]
    fn ad15_jam_blocks_opening() {
        let outcome = run_with(
            no_cr(),
            |w| w.schedule_owner_open(SimTime::from_secs(1)),
            &mut BleJam::new(SimTime::ZERO, SimTime::from_secs(3_600)),
        );
        assert!(outcome.sg03_violated, "jamming defeats message-level controls: {outcome:?}");
    }

    #[test]
    fn ad18_close_spoof_stopped_by_challenge_response() {
        let owner = KeylessConfig::default().owner_key_id;
        let outcome = run_with(
            ControlSelection::all(),
            |w| w.schedule_owner_open(SimTime::from_secs(1)),
            &mut SpoofClose::new(SimTime::from_secs(2), owner),
        );
        assert!(!outcome.sg04_violated, "{outcome:?}");
        assert!(outcome.lock_open, "vehicle stays open for the entering person");
    }

    #[test]
    fn ad18_close_spoof_succeeds_without_challenge_response() {
        let owner = KeylessConfig::default().owner_key_id;
        let outcome = run_with(
            no_cr(),
            |w| w.schedule_owner_open(SimTime::from_secs(1)),
            &mut SpoofClose::new(SimTime::from_secs(2), owner),
        );
        assert!(outcome.sg04_violated, "{outcome:?}");
    }

    #[test]
    fn ad09_stub_injection_filtered_by_gateway() {
        let mut inject = CanStubInject::new(SimTime::from_millis(100), CMD_OPEN);
        let outcome = run_with(ControlSelection::all(), |_| {}, &mut inject);
        assert!(!outcome.lock_open, "{outcome:?}");
        assert!(!outcome.sg01_violated);
    }

    #[test]
    fn ad09_stub_injection_opens_without_filtering() {
        let controls = ControlSelection { can_filtering: false, ..ControlSelection::all() };
        let mut inject = CanStubInject::new(SimTime::from_millis(100), CMD_OPEN);
        let outcome = run_with(controls, |_| {}, &mut inject);
        assert!(outcome.lock_open, "{outcome:?}");
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn ad24_unauthenticated_tamper_fails() {
        let mut tamper = AllowlistTamper::new(0xEE01, None, SimTime::from_millis(100));
        let outcome = run_with(no_cr(), |_| {}, &mut tamper);
        assert!(!outcome.lock_open, "{outcome:?}");
    }

    #[test]
    fn replay_after_close_rejected_with_full_stack() {
        let mut replay = ReplayOpen::new(SimTime::from_secs(8));
        let outcome = run_with(
            no_cr(),
            |w| {
                w.schedule_owner_open(SimTime::from_secs(1));
                w.schedule_owner_close(SimTime::from_secs(5));
            },
            &mut replay,
        );
        assert!(!outcome.lock_open, "{outcome:?}");
        assert_eq!(outcome.transitions, 2);
    }

    #[test]
    fn replay_succeeds_with_auth_only() {
        let controls =
            ControlSelection { authentication: true, allow_list: true, ..ControlSelection::none() };
        let mut replay = ReplayOpen::new(SimTime::from_secs(8));
        let outcome = run_with(
            controls,
            |w| {
                w.schedule_owner_open(SimTime::from_secs(1));
                w.schedule_owner_close(SimTime::from_secs(5));
            },
            &mut replay,
        );
        assert!(outcome.lock_open, "{outcome:?}");
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn guess_budget_is_respected() {
        let mut spoof = KeyIdSpoof::new(KeyGuessStrategy::Random, 100, 50, 1);
        let config = KeylessConfig { horizon: Ftti::from_secs(2), ..Default::default() };
        let mut world = KeylessWorld::new(config);
        world.schedule_owner_open(SimTime::from_millis(1_500));
        let _ = world.run(&mut spoof);
        assert_eq!(spoof.sent, 50);
    }
}
