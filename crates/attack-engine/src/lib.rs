//! Executable attacks and the attack executor for the SaSeVAL
//! reproduction.
//!
//! SaSeVAL's Step 4 — refining attack descriptions into executable tests —
//! is out of scope *for the paper* (§III-D) but in scope here: this crate
//! implements every attack type the two use cases need as an
//! [`AttackerHook`](vehicle_sim::AttackerHook) over the simulated worlds,
//! and an executor that mechanically follows the §III-C structure of an
//! attack description:
//!
//! 1. wait for the **precondition** (the worlds start in it),
//! 2. mount the attack,
//! 3. evaluate the **attack success** criterion (safety-goal violation,
//!    service shutdown, vehicle opened, …),
//! 4. evaluate the **attack fails** criterion (rejection, sender
//!    isolation, detection evidence in the security log).
//!
//! [`builtin`] binds the paper's concrete attack descriptions — AD20 of
//! Table VI, AD08 of Table VII, the replay/flooding/jamming attacks named
//! in §IV — to ready-to-run [`TestCase`]s; [`campaign`] runs whole suites
//! (serially or in parallel) and aggregates a report.
//!
//! # Example — Table VI's AD20, with and without the expected measure
//!
//! ```
//! use attack_engine::builtin::ad20_cases;
//! use attack_engine::executor::execute;
//!
//! let results: Vec<_> = ad20_cases().iter().map(execute).collect();
//! // Without the message counter the flooding shuts the service down …
//! assert!(results[0].attack_succeeded);
//! // … with it the unwanted sender is identified and isolated.
//! assert!(!results[1].attack_succeeded);
//! assert!(results[1].detected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod builtin;
pub mod campaign;
mod error;
pub mod executor;

pub use error::AttackError;
pub use executor::{execute, execute_batch, ExecutionResult, TestCase, WorldOutcome};
