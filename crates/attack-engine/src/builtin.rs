//! Ready-to-run bindings of the paper's concrete attack descriptions.
//!
//! Each function returns the [`TestCase`]s that implement one published
//! attack description (or a family), typically in two configurations: the
//! undefended SUT (demonstrating the safety impact the description
//! predicts) and the SUT with the description's "Expected Measures"
//! deployed (demonstrating the "Attack Fails" criterion).

use vehicle_sim::config::ControlSelection;

use crate::attacks::KeyGuessStrategy;
use crate::executor::{AttackKind, TestCase};

fn case(attack_id: &str, label: &str, kind: AttackKind, controls: ControlSelection) -> TestCase {
    TestCase { attack_id: attack_id.to_owned(), label: label.to_owned(), kind, controls, seed: 42 }
}

/// Table VI's AD20 (packet flooding), without and with the
/// message-counter control.
pub fn ad20_cases() -> Vec<TestCase> {
    let kind = AttackKind::V2xFlood { per_tick: 40 };
    vec![
        case(
            "AD20",
            "without message counter",
            kind.clone(),
            ControlSelection { flood_protection: false, ..ControlSelection::all() },
        ),
        case("AD20", "with message counter", kind, ControlSelection::all()),
    ]
}

/// Table VII's AD08 (modified keys), variants (a) random and (b)
/// incrementing IDs, without and with the allow-list.
pub fn ad08_cases() -> Vec<TestCase> {
    let no_cr = ControlSelection { challenge_response: false, ..ControlSelection::all() };
    let no_allowlist = ControlSelection { allow_list: false, ..no_cr };
    vec![
        case(
            "AD08",
            "random IDs, with allow-list",
            AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget: 1_000 },
            no_cr,
        ),
        case(
            "AD08",
            "incrementing IDs, with allow-list",
            AttackKind::KeySpoof {
                strategy: KeyGuessStrategy::Incrementing { base: 0x0DE5_1234 - 10_000 },
                budget: 1_000,
            },
            no_cr,
        ),
        case(
            "AD08",
            "random IDs, without allow-list",
            AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget: 10 },
            no_allowlist,
        ),
    ]
}

/// The replay attacks named in the §IV prose: the opening-command replay
/// of Use Case II and the stale-warning replay against SG05 of Use Case I.
pub fn replay_cases() -> Vec<TestCase> {
    vec![
        case(
            "UC2-AD01",
            "opening replay, full controls",
            AttackKind::BleReplayOpen,
            ControlSelection { challenge_response: false, ..ControlSelection::all() },
        ),
        case(
            "UC2-AD01",
            "opening replay, authentication only",
            AttackKind::BleReplayOpen,
            ControlSelection { authentication: true, allow_list: true, ..ControlSelection::none() },
        ),
        case(
            "UC1-AD17",
            "warning replay, full controls",
            AttackKind::V2xReplayWarning { staleness_s: 30 },
            ControlSelection::all(),
        ),
        case(
            "UC1-AD17",
            "warning replay, no freshness",
            AttackKind::V2xReplayWarning { staleness_s: 30 },
            ControlSelection {
                freshness: false,
                replay_protection: false,
                ..ControlSelection::all()
            },
        ),
    ]
}

/// The CAN-flooding-via-BLE attack (SG03 of Use Case II, §IV-B prose).
pub fn can_flood_cases() -> Vec<TestCase> {
    let kind = AttackKind::BleCanFlood { per_tick: 30 };
    vec![
        case(
            "UC2-AD14",
            "without gateway rate limit",
            kind.clone(),
            ControlSelection { flood_protection: false, ..ControlSelection::all() },
        ),
        case("UC2-AD14", "with gateway rate limit", kind, ControlSelection::all()),
    ]
}

/// The store-and-forward delay attack (AD05/AD16 family): buffered
/// warnings released 40 s into the run, stale.
pub fn delay_cases() -> Vec<TestCase> {
    let kind = AttackKind::V2xDelay { release_s: 40 };
    vec![
        case("UC1-AD05", "delay, full controls", kind.clone(), ControlSelection::all()),
        case(
            "UC1-AD05",
            "delay, no freshness",
            kind,
            ControlSelection {
                freshness: false,
                replay_protection: false,
                ..ControlSelection::all()
            },
        ),
    ]
}

/// Jamming attacks on both interfaces — the attacks message-level
/// controls cannot defeat.
pub fn jamming_cases() -> Vec<TestCase> {
    vec![
        case("UC1-AD06", "V2X jam, full controls", AttackKind::V2xJam, ControlSelection::all()),
        case("UC2-AD15", "BLE jam, full controls", AttackKind::BleJamming, ControlSelection::all()),
    ]
}

/// The full built-in campaign: every bound attack description in both
/// configurations.
pub fn full_campaign() -> Vec<TestCase> {
    let mut cases = Vec::new();
    cases.extend(ad20_cases());
    cases.extend(ad08_cases());
    cases.extend(replay_cases());
    cases.extend(can_flood_cases());
    cases.extend(delay_cases());
    cases.extend(jamming_cases());
    cases.push(case(
        "UC2-AD18",
        "close spoof, full controls",
        AttackKind::BleSpoofClose,
        ControlSelection::all(),
    ));
    cases.push(case(
        "UC2-AD18",
        "close spoof, no challenge-response",
        AttackKind::BleSpoofClose,
        ControlSelection { challenge_response: false, ..ControlSelection::all() },
    ));
    cases.push(case(
        "UC2-AD24",
        "allow-list tamper, outsider",
        AttackKind::AllowlistTamper { insider: false },
        ControlSelection { challenge_response: false, ..ControlSelection::all() },
    ));
    cases.push(case(
        "UC2-AD24",
        "allow-list tamper, insider",
        AttackKind::AllowlistTamper { insider: true },
        ControlSelection { challenge_response: false, ..ControlSelection::all() },
    ));
    cases.push(case(
        "UC2-AD09",
        "CAN stub injection, gateway filtering",
        AttackKind::CanStubInject,
        ControlSelection::all(),
    ));
    cases.push(case(
        "UC2-AD09",
        "CAN stub injection, no filtering",
        AttackKind::CanStubInject,
        ControlSelection { can_filtering: false, ..ControlSelection::all() },
    ));
    cases.push(case(
        "UC1-AD10",
        "fake limit, full controls",
        AttackKind::V2xFakeLimit { limit: 120 },
        ControlSelection::all(),
    ));
    cases.push(case(
        "UC1-AD10",
        "fake limit, no controls",
        AttackKind::V2xFakeLimit { limit: 120 },
        ControlSelection::none(),
    ));
    cases.push(case(
        "UC1-AD13",
        "insider limit inside plausible range",
        AttackKind::V2xInsiderLimit { limit: 100 },
        ControlSelection::all(),
    ));
    cases
}

/// The control-ablation grid: representative attacks × control presets
/// (none / authentication only / authentication+freshness+replay / full),
/// the workload of the `bench_ablation_controls` bench.
pub fn ablation_grid() -> Vec<TestCase> {
    let presets: [(&str, ControlSelection); 4] = [
        ("none", ControlSelection::none()),
        ("auth-only", ControlSelection::auth_only()),
        (
            "auth+freshness+replay",
            ControlSelection {
                authentication: true,
                freshness: true,
                replay_protection: true,
                allow_list: true,
                ..ControlSelection::none()
            },
        ),
        ("full", ControlSelection::all()),
    ];
    let attacks: [(&str, AttackKind); 5] = [
        ("AD20", AttackKind::V2xFlood { per_tick: 40 }),
        ("UC1-AD10", AttackKind::V2xFakeLimit { limit: 120 }),
        ("UC1-AD17", AttackKind::V2xReplayWarning { staleness_s: 30 }),
        ("UC2-AD01", AttackKind::BleReplayOpen),
        ("UC2-AD14", AttackKind::BleCanFlood { per_tick: 30 }),
    ];
    let mut cases = Vec::new();
    for (attack_id, kind) in &attacks {
        for (preset, controls) in &presets {
            cases.push(case(attack_id, preset, kind.clone(), *controls));
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    #[test]
    fn ad20_without_counter_succeeds_with_counter_fails() {
        let report = run_campaign(&ad20_cases());
        assert!(report.results[0].attack_succeeded, "{:?}", report.results[0].label);
        assert!(!report.results[1].attack_succeeded);
        assert!(report.results[1].detected);
    }

    #[test]
    fn ad08_allowlist_decides() {
        let report = run_campaign(&ad08_cases());
        assert!(!report.results[0].attack_succeeded, "random vs allow-list");
        assert!(!report.results[1].attack_succeeded, "incrementing vs allow-list");
        assert!(report.results[2].attack_succeeded, "no allow-list");
    }

    #[test]
    fn replay_defeated_by_freshness_not_by_auth() {
        let report = run_campaign(&replay_cases());
        assert!(!report.results[0].attack_succeeded, "full controls stop BLE replay");
        assert!(report.results[1].attack_succeeded, "auth alone does not");
        assert!(!report.results[2].attack_succeeded, "full controls stop warning replay");
        assert!(report.results[3].attack_succeeded, "no freshness: replay lands");
    }

    #[test]
    fn jamming_beats_message_level_controls() {
        let report = run_campaign(&jamming_cases());
        assert!(report.results.iter().all(|r| r.attack_succeeded));
    }

    #[test]
    fn full_campaign_runs_clean() {
        let report = run_campaign(&full_campaign());
        assert!(report.total() >= 22);
        // The defended configurations must collectively stop most attacks;
        // the undefended ones must collectively succeed.
        assert!(report.successes() >= 7);
        assert!(report.successes() < report.total());
    }

    #[test]
    fn ablation_grid_shape() {
        let grid = ablation_grid();
        assert_eq!(grid.len(), 20);
        // More controls never increase the success count per attack.
        let report = run_campaign(&grid);
        for attack in ["AD20", "UC1-AD10", "UC2-AD01", "UC2-AD14"] {
            let by_label = |label: &str| {
                report
                    .for_attack(attack)
                    .find(|r| r.label == label)
                    .map(|r| r.attack_succeeded)
                    .unwrap()
            };
            let none = by_label("none");
            let full = by_label("full");
            assert!(none, "{attack} succeeds undefended");
            assert!(!full, "{attack} defeated by the full stack");
        }
    }
}
