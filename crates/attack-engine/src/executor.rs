//! The attack executor: runs one bound attack description against a world
//! and decides success/failure per the description's criteria (RQ3).

use serde::{Deserialize, Serialize};

use saseval_obs::Obs;
use saseval_types::{Ftti, SimTime};
use vehicle_sim::config::ControlSelection;
use vehicle_sim::construction::{ConstructionConfig, ConstructionOutcome, ConstructionWorld};
use vehicle_sim::keyless::{KeylessConfig, KeylessOutcome, KeylessWorld};
use vehicle_sim::{AttackerHook, ConstructionBatch, KeylessBatch};

use crate::attacks::{
    AllowlistTamper, AuthenticatedFlood, BleJam, CanStubInject, DelayedDelivery, JamChannel,
    KeyGuessStrategy, KeyIdSpoof, ReplayOpen, ReplayStaleWarning, ServiceFlood, SignedSpoofLimit,
    SpoofClose, UnsignedSpoof,
};

/// A parameterized, executable attack — the refinement of an attack
/// description into a concrete stimulus (paper §III-D, attack
/// implementation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttackKind {
    /// AD20: authenticated packet flooding of the OBU_RSU interface.
    V2xFlood {
        /// Messages injected per tick.
        per_tick: usize,
    },
    /// AD10: forged (unsigned) speed-limit signage.
    V2xFakeLimit {
        /// The spoofed limit in km/h.
        limit: u8,
    },
    /// Insider variant: correctly signed spoofed signage.
    V2xInsiderLimit {
        /// The spoofed limit in km/h.
        limit: u8,
    },
    /// AD17: replay of a recorded (stale) warning far from any site.
    V2xReplayWarning {
        /// Age of the recording.
        staleness_s: u64,
    },
    /// AD06: jamming of the V2X channel for the whole approach.
    V2xJam,
    /// AD05/AD16: store-and-forward delay of all warnings.
    V2xDelay {
        /// Release time of the buffered messages, seconds of virtual time.
        release_s: u64,
    },
    /// AD08: key-ID spoofing against the keyless opener.
    KeySpoof {
        /// The guessing strategy.
        strategy: KeyGuessStrategy,
        /// Total guess budget.
        budget: u32,
    },
    /// AD01: replay of the owner's opening command after they left.
    BleReplayOpen,
    /// AD14: CAN flooding via forwarded BLE service requests.
    BleCanFlood {
        /// Requests per tick.
        per_tick: usize,
    },
    /// AD15: BLE jamming during the owner's open attempt.
    BleJamming,
    /// AD18: spoofed close while a person is entering.
    BleSpoofClose,
    /// AD24: allow-list tampering (unauthenticated unless `insider`).
    AllowlistTamper {
        /// Whether the attacker holds the configuration write key.
        insider: bool,
    },
    /// AD09: direct injection of a forged open frame on an exposed CAN
    /// stub.
    CanStubInject,
}

impl AttackKind {
    /// Whether this attack targets the construction-site world (else the
    /// keyless world).
    pub fn targets_construction(&self) -> bool {
        matches!(
            self,
            AttackKind::V2xFlood { .. }
                | AttackKind::V2xFakeLimit { .. }
                | AttackKind::V2xInsiderLimit { .. }
                | AttackKind::V2xReplayWarning { .. }
                | AttackKind::V2xJam
                | AttackKind::V2xDelay { .. }
        )
    }
}

/// One bound test case: an attack description ID, the executable attack,
/// and the SUT's control configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestCase {
    /// The attack description this test implements (e.g. `AD20`).
    pub attack_id: String,
    /// Human-readable label (control configuration etc.).
    pub label: String,
    /// The executable attack.
    pub kind: AttackKind,
    /// The SUT's deployed controls.
    pub controls: ControlSelection,
    /// RNG seed for the run.
    pub seed: u64,
}

/// The world-specific outcome of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorldOutcome {
    /// Construction-site world outcome.
    Construction(ConstructionOutcome),
    /// Keyless world outcome.
    Keyless(KeylessOutcome),
}

impl WorldOutcome {
    /// The violated safety goals, by use-case-local ID.
    pub fn violated_goals(&self) -> Vec<&'static str> {
        let mut goals = Vec::new();
        match self {
            WorldOutcome::Construction(o) => {
                if o.sg01_violated {
                    goals.push("SG01");
                }
                if o.sg02_violated {
                    goals.push("SG02");
                }
                if o.sg03_violated {
                    goals.push("SG03");
                }
                if o.sg04_violated {
                    goals.push("SG04");
                }
            }
            WorldOutcome::Keyless(o) => {
                if o.sg01_violated {
                    goals.push("SG01");
                }
                if o.sg02_violated {
                    goals.push("SG02");
                }
                if o.sg03_violated {
                    goals.push("SG03");
                }
                if o.sg04_violated {
                    goals.push("SG04");
                }
            }
        }
        goals
    }
}

/// The executor's verdict on one test case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// The attack description ID.
    pub attack_id: String,
    /// The test-case label.
    pub label: String,
    /// The control configuration used.
    pub controls: ControlSelection,
    /// Whether the attack's success criterion was met (a safety goal was
    /// violated / the service shut down / the vehicle opened).
    pub attack_succeeded: bool,
    /// Whether the SUT produced detection evidence (isolated the sender
    /// or logged rejections) — the "Attack Fails" criterion.
    pub detected: bool,
    /// The violated safety goals.
    pub violated_goals: Vec<String>,
    /// The raw world outcome.
    pub outcome: WorldOutcome,
}

fn construction_config(case: &TestCase) -> ConstructionConfig {
    ConstructionConfig { controls: case.controls, seed: case.seed, ..Default::default() }
}

fn keyless_config(case: &TestCase) -> KeylessConfig {
    KeylessConfig { controls: case.controls, seed: case.seed, ..Default::default() }
}

/// A test case bound to its world, attacker hook and verdict evaluator —
/// the output of the precondition phase. Keeping the three parts
/// separate (instead of one opaque run closure) lets
/// [`execute_batch`] step many same-world cases in lockstep through the
/// `vehicle-sim` batch module while [`execute`] runs them one by one;
/// both paths share the hook and verdict, so they cannot diverge.
//
// Variant sizes differ because the worlds are inlined, but `Prepared`
// values are transient — built and destructured within a single call —
// so boxing the worlds would only add allocations.
#[allow(clippy::large_enum_variant)]
enum Prepared {
    /// A construction-site case.
    Construction {
        world: ConstructionWorld,
        hook: Box<dyn AttackerHook<ConstructionWorld>>,
        verdict: fn(&ConstructionOutcome) -> (bool, bool),
    },
    /// A keyless case.
    Keyless {
        world: KeylessWorld,
        hook: Box<dyn AttackerHook<KeylessWorld>>,
        verdict: fn(&KeylessOutcome) -> (bool, bool),
    },
}

/// Executes one test case end to end and evaluates the verdict.
///
/// The success criterion per attack kind mirrors the corresponding attack
/// description's "Attack Success" row; detection mirrors "Attack Fails".
pub fn execute(case: &TestCase) -> ExecutionResult {
    execute_with_obs(case, &Obs::noop())
}

fn evaluate_result(
    case: &TestCase,
    outcome: WorldOutcome,
    succeeded: bool,
    detected: bool,
    obs: &Obs,
) -> ExecutionResult {
    let result = ExecutionResult {
        attack_id: case.attack_id.clone(),
        label: case.label.clone(),
        controls: case.controls,
        attack_succeeded: succeeded,
        detected,
        violated_goals: outcome.violated_goals().iter().map(|s| (*s).to_owned()).collect(),
        outcome,
    };
    obs.event(
        "case.verdict",
        &[
            ("attack_id", result.attack_id.as_str().into()),
            ("label", result.label.as_str().into()),
            ("succeeded", succeeded.into()),
            ("detected", detected.into()),
        ],
    );
    result
}

/// [`execute`] with metrics: phase timings land in the
/// `case.{precondition,inject,evaluate}_seconds` histograms and each
/// verdict is emitted as a `case.verdict` event.
pub fn execute_with_obs(case: &TestCase, obs: &Obs) -> ExecutionResult {
    let precondition = obs.span("case.precondition_seconds");
    let run = prepare(case, obs);
    precondition.finish();

    let inject = obs.span("case.inject_seconds");
    let (outcome, succeeded, detected) = match run {
        Prepared::Construction { world, mut hook, verdict } => {
            let o = world.run(hook.as_mut());
            let (succeeded, detected) = verdict(&o);
            (WorldOutcome::Construction(o), succeeded, detected)
        }
        Prepared::Keyless { world, mut hook, verdict } => {
            let o = world.run(hook.as_mut());
            let (succeeded, detected) = verdict(&o);
            (WorldOutcome::Keyless(o), succeeded, detected)
        }
    };
    inject.finish();

    let evaluate = obs.span("case.evaluate_seconds");
    let result = evaluate_result(case, outcome, succeeded, detected, obs);
    evaluate.finish();
    result
}

/// Executes `cases` on one thread by stepping all construction-site
/// cases as one lockstep [`ConstructionBatch`] (struct-of-arrays
/// kinematics) and all keyless cases as one [`KeylessBatch`], then
/// evaluating the per-case verdicts. Results come back in input order
/// and are identical to case-by-case [`execute`] — the batch steppers
/// preserve per-world step order exactly.
pub fn execute_batch(cases: &[TestCase]) -> Vec<ExecutionResult> {
    execute_batch_with_obs(cases, &Obs::noop())
}

/// [`execute_batch`] with metrics: the three phase histograms cover the
/// whole batch, and one `case.verdict` event fires per case (grouped by
/// world type, not input order).
pub fn execute_batch_with_obs(cases: &[TestCase], obs: &Obs) -> Vec<ExecutionResult> {
    let precondition = obs.span("case.precondition_seconds");
    let mut construction = Vec::new();
    let mut construction_worlds = Vec::new();
    let mut keyless = Vec::new();
    let mut keyless_worlds = Vec::new();
    for (index, case) in cases.iter().enumerate() {
        match prepare(case, obs) {
            Prepared::Construction { world, hook, verdict } => {
                construction.push((index, hook, verdict));
                construction_worlds.push(world);
            }
            Prepared::Keyless { world, hook, verdict } => {
                keyless.push((index, hook, verdict));
                keyless_worlds.push(world);
            }
        }
    }
    precondition.finish();

    let inject = obs.span("case.inject_seconds");
    let construction_outcomes = {
        let hooks = &mut construction;
        ConstructionBatch::new(construction_worlds)
            .run_outcomes(&mut |lane, world, now| hooks[lane].1.on_tick(world, now))
    };
    let keyless_outcomes = {
        let hooks = &mut keyless;
        KeylessBatch::new(keyless_worlds)
            .run_outcomes(&mut |lane, world, now| hooks[lane].1.on_tick(world, now))
    };
    inject.finish();

    let evaluate = obs.span("case.evaluate_seconds");
    let mut slots: Vec<Option<ExecutionResult>> = cases.iter().map(|_| None).collect();
    for ((index, _, verdict), outcome) in construction.into_iter().zip(construction_outcomes) {
        let (succeeded, detected) = verdict(&outcome);
        let outcome = WorldOutcome::Construction(outcome);
        slots[index] = Some(evaluate_result(&cases[index], outcome, succeeded, detected, obs));
    }
    for ((index, _, verdict), outcome) in keyless.into_iter().zip(keyless_outcomes) {
        let (succeeded, detected) = verdict(&outcome);
        let outcome = WorldOutcome::Keyless(outcome);
        slots[index] = Some(evaluate_result(&cases[index], outcome, succeeded, detected, obs));
    }
    evaluate.finish();
    slots.into_iter().map(|slot| slot.expect("every case lands in exactly one batch")).collect()
}

/// Builds the world and attacker hook for `case` — the precondition
/// phase — paired with the attack-specific verdict evaluator applied
/// after the run — the injection phase.
fn prepare(case: &TestCase, obs: &Obs) -> Prepared {
    match &case.kind {
        AttackKind::V2xFlood { per_tick } => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(AuthenticatedFlood {
                sender: "attacker".to_owned(),
                per_tick: *per_tick,
                within_m: 1_200.0,
            }),
            // Table VI: success = "Shutdown of service"; fails =
            // "Security control identifies unwanted sender".
            verdict: |o| (o.service_shutdown, o.isolated_senders.iter().any(|s| s == "attacker")),
        },
        AttackKind::V2xFakeLimit { limit } => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(UnsignedSpoof::fake_limit(*limit)),
            verdict: |o| (o.sg03_violated, !o.isolated_senders.is_empty()),
        },
        AttackKind::V2xInsiderLimit { limit } => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(SignedSpoofLimit::new(*limit, Ftti::from_millis(100))),
            verdict: |o| (o.sg03_violated, !o.isolated_senders.is_empty()),
        },
        AttackKind::V2xReplayWarning { staleness_s } => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(ReplayStaleWarning::new(
                SimTime::from_secs(1),
                Ftti::from_secs(*staleness_s),
            )),
            // Success = the replayed warning was accepted although no
            // site was in range (the SG05 "unintended warnings" class).
            verdict: |o| (o.unintended_warnings > 0, !o.isolated_senders.is_empty()),
        },
        AttackKind::V2xJam => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(JamChannel::new(SimTime::ZERO, SimTime::from_secs(3_600))),
            verdict: |o| (o.sg01_violated, !o.isolated_senders.is_empty()),
        },
        AttackKind::V2xDelay { release_s } => Prepared::Construction {
            world: ConstructionWorld::new(construction_config(case)).with_obs(obs.clone()),
            hook: Box::new(DelayedDelivery::new(SimTime::from_secs(*release_s))),
            verdict: |o| (o.sg01_violated || o.sg04_violated, !o.isolated_senders.is_empty()),
        },
        AttackKind::KeySpoof { strategy, budget } => Prepared::Keyless {
            world: KeylessWorld::new(keyless_config(case)).with_obs(obs.clone()),
            hook: Box::new(KeyIdSpoof::new(*strategy, 5, *budget, case.seed)),
            // Table VII: success = "Open the vehicle"; fails =
            // "Opening is rejected".
            verdict: |o| (o.sg01_violated, o.isolated_senders.iter().any(|s| s == "attacker")),
        },
        AttackKind::BleReplayOpen => {
            let mut world = KeylessWorld::new(keyless_config(case)).with_obs(obs.clone());
            world.schedule_owner_open(SimTime::from_secs(1));
            world.schedule_owner_close(SimTime::from_secs(5));
            Prepared::Keyless {
                world,
                hook: Box::new(ReplayOpen::new(SimTime::from_secs(8))),
                verdict: |o| (o.sg01_violated, !o.isolated_senders.is_empty()),
            }
        }
        AttackKind::BleCanFlood { per_tick } => {
            let mut world = KeylessWorld::new(keyless_config(case)).with_obs(obs.clone());
            world.schedule_owner_open(SimTime::from_secs(1));
            Prepared::Keyless {
                world,
                hook: Box::new(ServiceFlood { per_tick: *per_tick }),
                verdict: |o| (o.sg03_violated, !o.isolated_senders.is_empty()),
            }
        }
        AttackKind::BleJamming => {
            let mut world = KeylessWorld::new(keyless_config(case)).with_obs(obs.clone());
            world.schedule_owner_open(SimTime::from_secs(1));
            Prepared::Keyless {
                world,
                hook: Box::new(BleJam::new(SimTime::ZERO, SimTime::from_secs(3_600))),
                verdict: |o| (o.sg03_violated, !o.isolated_senders.is_empty()),
            }
        }
        AttackKind::BleSpoofClose => {
            let config = keyless_config(case);
            let owner_id = config.owner_key_id;
            let mut world = KeylessWorld::new(config).with_obs(obs.clone());
            world.schedule_owner_open(SimTime::from_secs(1));
            Prepared::Keyless {
                world,
                hook: Box::new(SpoofClose::new(SimTime::from_secs(2), owner_id)),
                verdict: |o| (o.sg04_violated, !o.isolated_senders.is_empty()),
            }
        }
        AttackKind::CanStubInject => Prepared::Keyless {
            world: KeylessWorld::new(keyless_config(case)).with_obs(obs.clone()),
            hook: Box::new(CanStubInject::new(
                SimTime::from_millis(100),
                vehicle_sim::keyless::CMD_OPEN,
            )),
            verdict: |o| (o.sg01_violated, !o.isolated_senders.is_empty()),
        },
        AttackKind::AllowlistTamper { insider } => {
            let world = KeylessWorld::new(keyless_config(case)).with_obs(obs.clone());
            let auth = insider.then(|| AllowlistTamper::insider_auth(world.config_key(), 0xEE01));
            Prepared::Keyless {
                world,
                hook: Box::new(AllowlistTamper::new(0xEE01, auth, SimTime::from_millis(100))),
                verdict: |o| (o.sg01_violated, !o.isolated_senders.is_empty()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(kind: AttackKind, controls: ControlSelection) -> TestCase {
        TestCase {
            attack_id: "TEST".to_owned(),
            label: "test".to_owned(),
            kind,
            controls,
            seed: 42,
        }
    }

    #[test]
    fn flood_verdicts_flip_with_control() {
        let undefended = execute(&case(
            AttackKind::V2xFlood { per_tick: 40 },
            ControlSelection { flood_protection: false, ..ControlSelection::all() },
        ));
        assert!(undefended.attack_succeeded);
        assert!(undefended.violated_goals.contains(&"SG01".to_owned()));

        let defended =
            execute(&case(AttackKind::V2xFlood { per_tick: 40 }, ControlSelection::all()));
        assert!(!defended.attack_succeeded);
        assert!(defended.detected, "unwanted sender identified");
    }

    #[test]
    fn key_spoof_verdicts_flip_with_allowlist() {
        let no_cr = ControlSelection { challenge_response: false, ..ControlSelection::all() };
        let defended = execute(&case(
            AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget: 500 },
            no_cr,
        ));
        assert!(!defended.attack_succeeded);

        let undefended = execute(&case(
            AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget: 10 },
            ControlSelection {
                allow_list: false,
                challenge_response: false,
                ..ControlSelection::all()
            },
        ));
        assert!(undefended.attack_succeeded);
        assert!(undefended.violated_goals.contains(&"SG01".to_owned()));
    }

    #[test]
    fn targets_classification() {
        assert!(AttackKind::V2xJam.targets_construction());
        assert!(!AttackKind::BleReplayOpen.targets_construction());
    }

    #[test]
    fn batch_execution_matches_serial_execution() {
        // A mixed suite spanning both world types, in interleaved order,
        // so the batch has to split, run two lockstep batches, and
        // reassemble results in input order.
        let cases = vec![
            case(AttackKind::V2xFlood { per_tick: 40 }, ControlSelection::none()),
            case(AttackKind::BleReplayOpen, ControlSelection::none()),
            case(AttackKind::V2xFakeLimit { limit: 130 }, ControlSelection::all()),
            case(AttackKind::CanStubInject, ControlSelection::all()),
            case(AttackKind::V2xJam, ControlSelection::all()),
            case(
                AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget: 10 },
                ControlSelection { allow_list: false, ..ControlSelection::none() },
            ),
        ];
        let serial: Vec<_> = cases.iter().map(execute).collect();
        let batched = execute_batch(&cases);
        assert_eq!(batched.len(), serial.len());
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap(),
                "case {i}"
            );
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let c = case(AttackKind::BleCanFlood { per_tick: 30 }, ControlSelection::none());
        let a = execute(&c);
        let b = execute(&c);
        assert_eq!(a.attack_succeeded, b.attack_succeeded);
        assert_eq!(a.violated_goals, b.violated_goals);
    }
}
