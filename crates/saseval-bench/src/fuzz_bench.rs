//! Fuzzing throughput measurement backing the `BENCH_fuzz.json` export
//! and EXPERIMENTS.md's "Fuzzing throughput" section: serial vs sharded
//! inputs-per-second on the built-in protocol models.

use std::time::Instant;

use saseval_fuzz::corpus::builtin_oracle;
use saseval_fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval_fuzz::model::{keyless_command_model, v2x_warning_model, ProtocolModel};
use saseval_tara::tree::{AttackTree, TreeNode};
use saseval_tara::AttackPath;
use serde::{Deserialize, Serialize};

/// One measured configuration of the fuzz throughput grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzThroughputRow {
    /// Protocol model name.
    pub model: String,
    /// Shard count (1 = the serial [`Fuzzer::run`] loop).
    pub shards: usize,
    /// Inputs executed.
    pub iterations: usize,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Throughput in inputs per second.
    pub inputs_per_sec: f64,
    /// Unique crash findings (sanity: constant across shard counts for
    /// crash-free oracles).
    pub crashes: usize,
    /// Merged protocol field coverage in percent.
    pub field_coverage_percent: f64,
}

/// The document written to `BENCH_fuzz.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzThroughputExport {
    /// Hardware parallelism available to the shard threads.
    pub available_parallelism: usize,
    /// The measured grid: models × shard counts.
    pub rows: Vec<FuzzThroughputRow>,
}

fn bench_paths() -> Vec<AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![TreeNode::leaf_on("replay", "BLE_PHONE"), TreeNode::leaf_on("forge", "ECU_GW")],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

/// Runs `iterations` fuzz inputs against `model`'s robust decode oracle
/// (the shared [`builtin_oracle`]) at the given shard count (1 = serial
/// loop) and reports throughput.
pub fn measure_fuzz_throughput(
    model: &ProtocolModel,
    shards: usize,
    iterations: usize,
) -> FuzzThroughputRow {
    let paths = bench_paths();
    let target: fn(&[u8]) -> TargetResponse =
        builtin_oracle(&model.name).expect("built-in oracle for built-in model");
    let start = Instant::now();
    let report = if shards <= 1 {
        Fuzzer::new(model.clone(), 7).run(&paths, iterations, target)
    } else {
        Fuzzer::new(model.clone(), 7).run_parallel(&paths, iterations, shards, |_| target)
    };
    let seconds = start.elapsed().as_secs_f64();
    FuzzThroughputRow {
        model: model.name.clone(),
        shards,
        iterations,
        seconds,
        inputs_per_sec: if seconds > 0.0 { iterations as f64 / seconds } else { f64::INFINITY },
        crashes: report.crashes.len(),
        field_coverage_percent: report.field_coverage_percent(),
    }
}

/// Measures the full grid — keyless and V2X models at 1/2/4 shards —
/// with `iterations` inputs per cell.
pub fn fuzz_throughput_grid(iterations: usize) -> FuzzThroughputExport {
    let mut rows = Vec::new();
    for model in [keyless_command_model(), v2x_warning_model()] {
        for shards in [1usize, 2, 4] {
            rows.push(measure_fuzz_throughput(&model, shards, iterations));
        }
    }
    FuzzThroughputExport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_both_models_and_all_shard_counts() {
        let export = fuzz_throughput_grid(2_000);
        assert_eq!(export.rows.len(), 6);
        for row in &export.rows {
            assert_eq!(row.iterations, 2_000);
            assert!(row.inputs_per_sec > 0.0, "{row:?}");
            assert_eq!(row.crashes, 0, "robust oracles never crash: {row:?}");
            assert!(row.field_coverage_percent > 50.0, "{row:?}");
        }
        assert!(export.available_parallelism >= 1);
        let json = serde_json::to_string(&export).expect("serializable");
        assert!(json.contains("inputs_per_sec"));
    }
}
