//! Campaign-server latency and throughput measurement backing the
//! `BENCH_server.json` export and EXPERIMENTS.md's "Campaign server"
//! section: cold vs warm vs cached request latency over the TCP
//! protocol, a concurrent-client sweep (1/4/16/64 connections, serial
//! round trips vs pipelined batches) over the cached fast path, and a
//! coalescing burst measuring executions-per-request under concurrent
//! identical fresh submissions.
//!
//! Terminology, fixed by the warm-pool design:
//!
//! * **cold** — first request for a scenario on a non-prewarmed server:
//!   pays world construction, the warm-prefix freeze *and* the fuzz run.
//! * **warm** — same scenario, different seed: the resident prefix is
//!   forked, so only the fuzz run is paid.
//! * **cached (memory)** — exact repeat: answered from the in-memory
//!   LRU without touching the worker pool.
//! * **cached (disk)** — exact repeat against a restarted server over
//!   the same cache directory: answered from the verified on-disk tier.
//! * **serial vs pipelined** — serial clients wait for each `done`
//!   before the next request; pipelined clients write their whole batch
//!   in one flush and then reassemble responses by id, which is where
//!   the multiplexed event loop's zero-copy cached path shows up.

use std::path::PathBuf;
use std::time::Instant;

use saseval_server::job::KeylessScenario;
use saseval_server::protocol::map_field;
use saseval_server::{
    Client, ControlsPreset, FuzzJob, JobSpec, ScenarioSpec, Server, ServerConfig,
};
use serde::{Deserialize, Serialize};
use serde_json::JsonValue;

/// One measured request latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerLatencyRow {
    /// Which path the request took (`cold` / `warm` / `cached-memory` /
    /// `cached-disk`).
    pub label: String,
    /// The cache disposition the server reported (`miss` / `memory` /
    /// `disk`).
    pub cache: String,
    /// Round-trip wall-clock seconds, connect to `done`.
    pub seconds: f64,
    /// Latency improvement over the cold request (cold = 1.0).
    pub speedup_vs_cold: f64,
}

/// One concurrent-client throughput measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerThroughputRow {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total jobs submitted across all clients.
    pub jobs: usize,
    /// Whether every job was a repeat of an already-cached spec
    /// (`true`) or a distinct fresh computation (`false`).
    pub repeat: bool,
    /// Whether each client pipelined its whole batch in one write
    /// (`true`) or waited for each `done` before the next request
    /// (`false`).
    pub pipelined: bool,
    /// Wall-clock seconds for the whole burst.
    pub seconds: f64,
    /// Aggregate jobs per second.
    pub jobs_per_sec: f64,
}

/// The single-flight measurement: N concurrent identical fresh
/// submissions, counted against the server's own `stats` frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoalescingBurst {
    /// Concurrent client connections, each submitting the same spec.
    pub clients: usize,
    /// Requests submitted (one per client).
    pub requests: u64,
    /// Fresh executions the burst actually caused (from the server's
    /// `executed` counter delta; 1 when single-flight holds).
    pub executions: u64,
    /// `executions / requests` — the ISSUE 9 burst target is ≤ 1/16 at
    /// 16 clients.
    pub executions_per_request: f64,
}

/// The JSON document written to `BENCH_server.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerBenchExport {
    /// Fuzz iterations in the latency-measurement job.
    pub job_iterations: usize,
    /// Hardware parallelism available to the pool.
    pub available_parallelism: usize,
    /// Latency rows: cold, warm, cached-memory, cached-disk.
    pub latency: Vec<ServerLatencyRow>,
    /// The headline number: cached-memory speedup over cold (the ISSUE 7
    /// acceptance floor is 100x).
    pub cached_speedup_vs_cold: f64,
    /// Throughput rows: the cached 1/4/16/64-client sweep, serial and
    /// pipelined, plus a fresh-jobs scheduling row.
    pub throughput: Vec<ServerThroughputRow>,
    /// The single-flight burst (16 concurrent identical fresh
    /// submissions).
    pub coalescing: CoalescingBurst,
}

impl ServerBenchExport {
    /// The cached-memory latency row's seconds, if present — the number
    /// the `repro_tables --server-floor` regression guard compares
    /// against.
    pub fn cached_memory_seconds(&self) -> Option<f64> {
        self.latency.iter().find(|row| row.label == "cached-memory").map(|row| row.seconds)
    }
}

// The hardened preset: deployed controls reject forged commands, so the
// report stays compact (an undefended world turns most inputs into
// safety-violation findings, and the payload — not the fuzz run —
// dominates every latency row).
fn bench_job(seed: u64, iterations: usize) -> JobSpec {
    JobSpec::Fuzz(FuzzJob {
        scenario: ScenarioSpec::Keyless(KeylessScenario {
            controls: ControlsPreset::All,
            horizon_ms: 300,
            attack_at_ms: 100,
        }),
        iterations,
        seed,
        shards: 0,
        batch: 0,
    })
}

fn job_json(spec: JobSpec) -> String {
    serde_json::to_string(&spec).expect("specs serialize")
}

fn timed_submit(addr: &std::net::SocketAddr, id: &str, spec: JobSpec) -> (f64, String) {
    let start = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    let outcome = client.submit(id, &job_json(spec)).expect("submit");
    (start.elapsed().as_secs_f64(), outcome.cache)
}

fn stat_u64(frame: &JsonValue, name: &str) -> u64 {
    match map_field(frame, name) {
        Some(JsonValue::U64(value)) => *value,
        _ => 0,
    }
}

fn throughput_burst(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs_per_client: usize,
    specs: impl Fn(usize, usize) -> JobSpec + Sync,
    repeat: bool,
    pipelined: bool,
) -> ServerThroughputRow {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..clients {
            let specs = &specs;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                if pipelined {
                    let batch: Vec<(String, String)> = (0..jobs_per_client)
                        .map(|job_index| {
                            (
                                format!("t{client_index}-{job_index}"),
                                job_json(specs(client_index, job_index)),
                            )
                        })
                        .collect();
                    let pairs: Vec<(&str, &str)> =
                        batch.iter().map(|(id, job)| (id.as_str(), job.as_str())).collect();
                    client.submit_many(&pairs).expect("pipelined submit");
                } else {
                    for job_index in 0..jobs_per_client {
                        client
                            .submit(
                                &format!("t{client_index}-{job_index}"),
                                &job_json(specs(client_index, job_index)),
                            )
                            .expect("submit");
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let jobs = clients * jobs_per_client;
    ServerThroughputRow {
        clients,
        jobs,
        repeat,
        pipelined,
        seconds,
        jobs_per_sec: if seconds > 0.0 { jobs as f64 / seconds } else { f64::INFINITY },
    }
}

/// Submits the same fresh spec from `clients` concurrent connections
/// and reads how many executions the burst cost off the server's
/// `executed` counter. Late arrivals are answered from the cache the
/// single execution populated, so the count stays 1 whichever way the
/// race falls.
fn coalescing_burst(addr: std::net::SocketAddr, clients: usize, spec: JobSpec) -> CoalescingBurst {
    let mut stats_client = Client::connect(&addr).expect("connect");
    let before = stats_client.stats().expect("stats");
    std::thread::scope(|scope| {
        for client_index in 0..clients {
            let job = job_json(spec);
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.submit(&format!("b{client_index}"), &job).expect("submit");
            });
        }
    });
    let after = stats_client.stats().expect("stats");
    let executions = stat_u64(&after, "executed") - stat_u64(&before, "executed");
    CoalescingBurst {
        clients,
        requests: clients as u64,
        executions,
        executions_per_request: executions as f64 / clients as f64,
    }
}

/// Measures the current cached-memory round-trip latency in seconds:
/// one fresh run populates the cache, then the fastest of `samples`
/// timed repeats is returned (the min filters scheduler noise). The
/// `repro_tables --server-floor` regression guard compares this
/// against the committed export's cached-memory row.
pub fn current_cached_memory_latency(job_iterations: usize, samples: usize) -> f64 {
    let server =
        Server::start(ServerConfig { prewarm: false, ..Default::default() }).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(&addr).expect("connect");
    client.submit("seed", &job_json(bench_job(11, job_iterations))).expect("fresh run");
    let mut best = f64::INFINITY;
    for i in 0..samples.max(1) {
        let start = Instant::now();
        client.submit(&format!("r{i}"), &job_json(bench_job(11, job_iterations))).expect("repeat");
        best = best.min(start.elapsed().as_secs_f64());
    }
    server.shutdown();
    server.join();
    best
}

/// Measures the full latency + throughput grid against in-process
/// servers over a private temp cache directory. `job_iterations` sizes
/// the latency job (the committed export uses 65536); throughput bursts
/// use smaller fresh jobs so the bench stays bounded.
pub fn measure_server(job_iterations: usize) -> ServerBenchExport {
    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("saseval-server-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Prewarm off so the first request is genuinely cold: it pays world
    // construction and the prefix freeze on top of the fuzz run.
    let config = || ServerConfig {
        cache_dir: Some(cache_dir.clone()),
        prewarm: false,
        ..Default::default()
    };
    let server = Server::start(config()).expect("bind");
    let addr = server.addr();

    let (cold_seconds, cold_cache) = timed_submit(&addr, "cold", bench_job(11, job_iterations));
    let (warm_seconds, warm_cache) = timed_submit(&addr, "warm", bench_job(12, job_iterations));
    let (memory_seconds, memory_cache) =
        timed_submit(&addr, "cached-memory", bench_job(11, job_iterations));

    // Restart over the same cache directory: the memory tier is gone,
    // the repeat must be answered from verified disk.
    server.shutdown();
    server.join();
    let server = Server::start(config()).expect("rebind");
    let addr = server.addr();
    let (disk_seconds, disk_cache) =
        timed_submit(&addr, "cached-disk", bench_job(11, job_iterations));

    // The concurrent-client sweep over the cached fast path: serial vs
    // pipelined at 1/4/16/64 connections, all repeats of the spec the
    // latency rows already cached.
    let repeat_spec = |_c: usize, _j: usize| bench_job(11, job_iterations);
    let mut throughput = Vec::new();
    for clients in [1usize, 4, 16, 64] {
        throughput.push(throughput_burst(addr, clients, 32, repeat_spec, true, false));
        throughput.push(throughput_burst(addr, clients, 32, repeat_spec, true, true));
    }
    // A small fresh burst keeps pool scheduling on the chart without
    // dominating the bench's runtime.
    let fresh_iterations = (job_iterations / 64).max(16);
    let fresh_spec =
        move |c: usize, j: usize| bench_job(1_000 + (c * 100 + j) as u64, fresh_iterations);
    throughput.push(throughput_burst(addr, 2, 4, fresh_spec, false, false));

    // Single-flight: 16 concurrent submissions of one never-seen spec.
    let coalescing = coalescing_burst(addr, 16, bench_job(9_999, job_iterations));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let speedup = |seconds: f64| if seconds > 0.0 { cold_seconds / seconds } else { f64::INFINITY };
    let latency = vec![
        ServerLatencyRow {
            label: "cold".into(),
            cache: cold_cache,
            seconds: cold_seconds,
            speedup_vs_cold: 1.0,
        },
        ServerLatencyRow {
            label: "warm".into(),
            cache: warm_cache,
            seconds: warm_seconds,
            speedup_vs_cold: speedup(warm_seconds),
        },
        ServerLatencyRow {
            label: "cached-memory".into(),
            cache: memory_cache,
            seconds: memory_seconds,
            speedup_vs_cold: speedup(memory_seconds),
        },
        ServerLatencyRow {
            label: "cached-disk".into(),
            cache: disk_cache,
            seconds: disk_seconds,
            speedup_vs_cold: speedup(disk_seconds),
        },
    ];
    ServerBenchExport {
        job_iterations,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cached_speedup_vs_cold: speedup(memory_seconds),
        latency,
        throughput,
        coalescing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_grid_has_expected_shape_and_cache_dispositions() {
        let export = measure_server(512);
        assert_eq!(export.latency.len(), 4);
        assert_eq!(export.latency[0].cache, "miss");
        assert_eq!(export.latency[1].cache, "miss");
        assert_eq!(export.latency[2].cache, "memory");
        assert_eq!(export.latency[3].cache, "disk");
        // Loose bound here (unit tests run tiny jobs on loaded machines);
        // the committed export demonstrates the 100x acceptance floor.
        assert!(export.cached_speedup_vs_cold > 1.0, "cached must beat cold: {export:?}");
        // The sweep: serial + pipelined at each of 1/4/16/64 clients,
        // plus the fresh scheduling row.
        assert_eq!(export.throughput.len(), 9);
        for row in &export.throughput {
            assert!(row.jobs_per_sec > 0.0, "{row:?}");
        }
        let serial: Vec<_> = export.throughput.iter().filter(|r| !r.pipelined).collect();
        let pipelined: Vec<_> = export.throughput.iter().filter(|r| r.pipelined).collect();
        assert_eq!(serial.len(), 5);
        assert_eq!(pipelined.len(), 4);
        // Single-flight held: the 16-client identical burst cost exactly
        // one execution.
        assert_eq!(export.coalescing.executions, 1, "{:?}", export.coalescing);
        assert!(export.coalescing.executions_per_request <= 1.0 / 16.0 + f64::EPSILON);
        assert_eq!(export.cached_memory_seconds(), Some(export.latency[2].seconds));
        let json = serde_json::to_string(&export).expect("serializable");
        assert!(json.contains("cached_speedup_vs_cold"));
        assert!(json.contains("executions_per_request"));
    }
}
