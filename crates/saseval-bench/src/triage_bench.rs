//! Crash-triage measurement backing the `BENCH_triage.json` export, the
//! `repro_tables triage` experiment, and the
//! `repro_tables --replay-corpus DIR` regression gate: minimization
//! statistics (reduction ratio, steps) per protocol model against
//! seeded-bug oracles, plus corpus replay rendering.

use std::io;
use std::path::Path;

use saseval_fuzz::corpus::{Corpus, Replayer};
use saseval_fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval_fuzz::minimize::{minimize, MinimizeConfig, MinimizeResult};
use saseval_fuzz::model::{keyless_command_model, v2x_warning_model};
use saseval_obs::{MetricsSnapshot, Obs};
use saseval_tara::tree::{AttackTree, TreeNode};
use saseval_tara::AttackPath;
use serde::{Deserialize, Serialize};

fn triage_paths() -> Vec<AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![TreeNode::leaf_on("replay", "BLE_PHONE"), TreeNode::leaf_on("forge", "ECU_GW")],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

/// A seeded-bug oracle for `model`: the built-in robust decode oracle
/// plus one deliberately planted crash, so triage always has findings to
/// minimize. Panics on a model without a seeded bug.
///
/// * `v2x-warning` — crashes on a signage message whose limit byte is
///   zero (`[2, 0, ..]`), the classic missed boundary.
/// * `keyless-command` — crashes on a 33-byte open frame (`cmd == 2`)
///   whose timestamp word is zero.
pub fn seeded_bug_oracle(model: &str) -> fn(&[u8]) -> TargetResponse {
    fn v2x(input: &[u8]) -> TargetResponse {
        match input {
            [2, 0, ..] => TargetResponse::Crash,
            [t, ..] if (1..=3).contains(t) => TargetResponse::Accepted,
            _ => TargetResponse::Rejected,
        }
    }
    fn keyless(input: &[u8]) -> TargetResponse {
        if input.len() != 33 {
            return TargetResponse::Rejected;
        }
        if input[0] == 2 && input[9..17] == [0; 8] {
            return TargetResponse::Crash;
        }
        if (1..=2).contains(&input[0]) {
            TargetResponse::Accepted
        } else {
            TargetResponse::Rejected
        }
    }
    match model {
        "v2x-warning" => v2x,
        "keyless-command" => keyless,
        other => panic!("no seeded-bug oracle for model {other:?}"),
    }
}

/// Per-model minimization statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageBenchRow {
    /// Protocol model name.
    pub model: String,
    /// Deduplicated crashes found and minimized.
    pub crashes: usize,
    /// Mean crash-input length before minimization.
    pub mean_original_len: f64,
    /// Mean crash-input length after minimization.
    pub mean_minimized_len: f64,
    /// Mean fraction of the input removed (0.0–1.0).
    pub mean_reduction_ratio: f64,
    /// Mean predicate evaluations per minimization.
    pub mean_steps: f64,
    /// Whether every minimization completed to a 1-minimal output
    /// within budget.
    pub all_one_minimal: bool,
    /// Whether every minimized input still crashes the oracle.
    pub all_still_crash: bool,
}

/// The document written to `BENCH_triage.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageBenchExport {
    /// Fuzzing iterations per model used to collect crashes.
    pub iterations: usize,
    /// Minimizer step budget.
    pub minimize_budget: usize,
    /// Per-model statistics.
    pub rows: Vec<TriageBenchRow>,
    /// The `fuzz.minimize.*` metrics recorded while minimizing.
    pub metrics: MetricsSnapshot,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for value in values {
        sum += value;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Fuzzes both built-in models against their seeded-bug oracles for
/// `iterations` inputs each, minimizes every deduplicated crash with
/// `budget` steps, and returns the aggregated statistics.
pub fn minimize_stats(iterations: usize, budget: usize) -> TriageBenchExport {
    let paths = triage_paths();
    let config = MinimizeConfig { max_steps: budget };
    let (obs, recorder) = Obs::memory();
    let mut rows = Vec::new();
    for model in [v2x_warning_model(), keyless_command_model()] {
        let oracle = seeded_bug_oracle(&model.name);
        let report = Fuzzer::new(model.clone(), 7).run(&paths, iterations, oracle);
        let results: Vec<MinimizeResult> = report
            .crashes
            .iter()
            .map(|finding| {
                minimize(&finding.input, |b| oracle(b) == TargetResponse::Crash, &config, &obs)
            })
            .collect();
        rows.push(TriageBenchRow {
            model: model.name.clone(),
            crashes: results.len(),
            mean_original_len: mean(results.iter().map(|r| r.original_len as f64)),
            mean_minimized_len: mean(results.iter().map(|r| r.output.len() as f64)),
            mean_reduction_ratio: mean(results.iter().map(MinimizeResult::reduction_ratio)),
            mean_steps: mean(results.iter().map(|r| r.steps as f64)),
            all_one_minimal: results.iter().all(|r| r.one_minimal),
            all_still_crash: results.iter().all(|r| oracle(&r.output) == TargetResponse::Crash),
        });
    }
    TriageBenchExport {
        iterations,
        minimize_budget: budget,
        rows,
        metrics: recorder.snapshot().with_prefix("fuzz.minimize"),
    }
}

/// Replays the corpus at `dir` against the built-in model oracles and
/// renders a verdict table. Returns the rendered table and whether the
/// replay was clean (zero regressions).
///
/// # Errors
///
/// Propagates corpus I/O and corruption errors, and fails on a model
/// subdirectory with no built-in oracle.
pub fn replay_corpus_table(dir: &Path) -> io::Result<(String, bool)> {
    use std::fmt::Write as _;
    let corpus = Corpus::open(dir);
    let replayer = Replayer::new();
    let mut out = format!("Corpus replay — {}\n", dir.display());
    let mut total = 0usize;
    let mut regressions = 0usize;
    for model in corpus.models()? {
        let mut oracle = saseval_fuzz::corpus::builtin_oracle(&model).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no built-in oracle for corpus model {model:?}"),
            )
        })?;
        let report = replayer.replay_model(&corpus, &model, &mut oracle)?;
        writeln!(
            out,
            "  {:<18} {:>4} entries, {:>4} matched, {:>3} regression(s)",
            model,
            report.total,
            report.matched,
            report.regressions.len()
        )
        .expect("write");
        for regression in &report.regressions {
            writeln!(
                out,
                "    REGRESSION {}/{}: expected {:?}, got {:?}",
                regression.model, regression.hash, regression.expected, regression.actual
            )
            .expect("write");
        }
        total += report.total;
        regressions += report.regressions.len();
    }
    writeln!(out, "  {total} entrie(s) replayed, {regressions} regression(s).").expect("write");
    Ok((out, regressions == 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_stats_cover_both_models() {
        let export = minimize_stats(4_000, 4_096);
        assert_eq!(export.rows.len(), 2);
        for row in &export.rows {
            assert!(row.crashes > 0, "{row:?}");
            assert!(row.all_one_minimal, "{row:?}");
            assert!(row.all_still_crash, "{row:?}");
            assert!(row.mean_minimized_len <= row.mean_original_len, "{row:?}");
        }
        // The v2x seeded bug minimizes to the 2-byte boundary input; the
        // keyless one is length-pinned (33 bytes) so reduction comes
        // from zero-simplification only.
        let v2x = &export.rows[0];
        assert_eq!(v2x.model, "v2x-warning");
        assert!((v2x.mean_minimized_len - 2.0).abs() < 1e-9, "{v2x:?}");
        assert!(v2x.mean_reduction_ratio > 0.0);
        let keyless = &export.rows[1];
        assert!((keyless.mean_minimized_len - 33.0).abs() < 1e-9, "{keyless:?}");
        assert!(
            export.metrics.histogram("fuzz.minimize.steps").is_some(),
            "minimize metrics embedded"
        );
        let json = serde_json::to_string(&export).expect("serializable");
        assert!(json.contains("mean_reduction_ratio"));
    }

    #[test]
    fn replay_corpus_table_renders_fixture_corpus() {
        // The committed fixture corpus must replay clean on HEAD (the
        // same gate scripts/check.sh runs via repro_tables).
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("tests/fixtures/corpus");
        let (table, clean) = replay_corpus_table(&dir).expect("replay");
        assert!(clean, "{table}");
        assert!(table.contains("0 regression(s)."), "{table}");
    }
}
