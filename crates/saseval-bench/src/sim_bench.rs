//! Warm-prefix simulation throughput backing EXPERIMENTS.md's
//! "Warm-prefix fuzzing throughput" table: how fast the simulation
//! oracle answers fuzz inputs when every input replays the world from
//! `t = 0`, versus forking from a copy-on-write snapshot taken at the
//! attack-activation time, versus stepping whole batches of forks in
//! lockstep.
//!
//! All three strategies answer every input identically (asserted here),
//! so the comparison isolates the cost of re-simulating the attacker-free
//! prefix — the work [`WorldSnapshot`](vehicle_sim::WorldSnapshot)
//! amortizes across inputs.

use std::time::Instant;

use saseval_fuzz::fuzzer::{FuzzTarget, TargetResponse};
use saseval_fuzz::sim_target::{SimOracle, FUZZ_SENDER};
use saseval_types::{Ftti, SimTime};
use serde::{Deserialize, Serialize};
use vehicle_sim::keyless::{KeylessConfig, KeylessWorld};
use vehicle_sim::ControlSelection;

/// One measured execution strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimThroughputRow {
    /// Strategy name: `replay-from-zero`, `fork-from-snapshot` or
    /// `fork-batched`.
    pub strategy: String,
    /// Inputs executed.
    pub inputs: usize,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Throughput in inputs per second.
    pub inputs_per_sec: f64,
}

/// The warm-prefix comparison document (embedded into `BENCH_fuzz.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimThroughputExport {
    /// Length of the attacker-free prefix every input shares.
    pub warm_prefix_ms: u64,
    /// Simulated time between attack activation and the horizon.
    pub tail_ms: u64,
    /// Batch size used by the `fork-batched` row.
    pub batch_size: usize,
    /// The measured rows, one per strategy.
    pub rows: Vec<SimThroughputRow>,
    /// Throughput of `fork-from-snapshot` over `replay-from-zero`.
    pub fork_speedup: f64,
    /// Throughput of `fork-batched` over `replay-from-zero`.
    pub batched_speedup: f64,
}

impl SimThroughputExport {
    /// The row for `strategy`; panics if the export doesn't contain it.
    pub fn row(&self, strategy: &str) -> &SimThroughputRow {
        self.rows.iter().find(|r| r.strategy == strategy).expect("strategy row")
    }
}

fn bench_config(warm_prefix_ms: u64, tail_ms: u64) -> KeylessConfig {
    KeylessConfig {
        controls: ControlSelection::all(),
        horizon: Ftti::from_millis(warm_prefix_ms + tail_ms),
        ..Default::default()
    }
}

/// Deterministic input mix: valid-length frames, short garbage and empty
/// payloads, cycled — representative of what the mutator feeds the
/// oracle without dragging the fuzzer's own cost into the measurement.
fn bench_inputs(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| match i % 3 {
            0 => vec![i as u8; 33],
            1 => vec![i as u8, (i / 7) as u8, 3],
            _ => Vec::new(),
        })
        .collect()
}

fn timed_row(strategy: &str, inputs: usize, run: impl FnOnce()) -> SimThroughputRow {
    let start = Instant::now();
    run();
    let seconds = start.elapsed().as_secs_f64();
    SimThroughputRow {
        strategy: strategy.to_owned(),
        inputs,
        seconds,
        inputs_per_sec: if seconds > 0.0 { inputs as f64 / seconds } else { f64::INFINITY },
    }
}

/// Measures all three strategies on the keyless oracle: a warm prefix of
/// `warm_prefix_ms` virtual milliseconds, a fuzzed tail of `tail_ms`, and
/// `count` inputs per strategy. Panics if any strategy ever classifies an
/// input differently — the speedup must never come from skipped work.
pub fn measure_sim_strategies(
    warm_prefix_ms: u64,
    tail_ms: u64,
    count: usize,
    batch_size: usize,
) -> SimThroughputExport {
    let config = bench_config(warm_prefix_ms, tail_ms);
    let attack_at = SimTime::from_millis(warm_prefix_ms);
    let inputs = bench_inputs(count);
    let mut oracle = SimOracle::keyless(config.clone(), attack_at);

    // Replay-from-zero: every input pays for the whole prefix again.
    let mut replayed = Vec::with_capacity(count);
    let replay = timed_row("replay-from-zero", count, || {
        for input in &inputs {
            let mut world = KeylessWorld::new(config.clone());
            world.run_until(attack_at, &mut ());
            world.send_ble(FUZZ_SENDER, input.clone());
            while world.step(&mut ()) {}
            let rejected = world.security_log().events().iter().any(|e| e.sender == FUZZ_SENDER);
            replayed.push(if world.into_outcome().any_violation() {
                TargetResponse::Crash
            } else if rejected {
                TargetResponse::Rejected
            } else {
                TargetResponse::Accepted
            });
        }
    });

    // Fork-from-snapshot: the prefix is simulated once, above.
    let mut forked = Vec::with_capacity(count);
    let fork = timed_row("fork-from-snapshot", count, || {
        for input in &inputs {
            forked.push(oracle.respond(input));
        }
    });

    // Batched forks stepped in lockstep.
    let mut batched = Vec::new();
    let batch = timed_row("fork-batched", count, || {
        let mut out = Vec::new();
        for chunk in inputs.chunks(batch_size.max(1)) {
            oracle.respond_batch(chunk, &mut out);
            batched.append(&mut out);
        }
    });

    assert_eq!(replayed, forked, "fork-from-snapshot diverged from replay-from-zero");
    assert_eq!(replayed, batched, "fork-batched diverged from replay-from-zero");

    let fork_speedup = fork.inputs_per_sec / replay.inputs_per_sec;
    let batched_speedup = batch.inputs_per_sec / replay.inputs_per_sec;
    SimThroughputExport {
        warm_prefix_ms,
        tail_ms,
        batch_size,
        rows: vec![replay, fork, batch],
        fork_speedup,
        batched_speedup,
    }
}

/// The configuration exported to `BENCH_fuzz.json` and EXPERIMENTS.md: a
/// 20 s warm prefix, a 500 ms fuzzed tail, batches of 32.
pub fn warm_prefix_comparison(count: usize) -> SimThroughputExport {
    measure_sim_strategies(20_000, 500, count, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_from_snapshot_is_at_least_3x_faster_than_replay() {
        // 20 s of warm prefix vs a 200 ms tail: the fork pays ~20 ticks
        // plus one deep clone where the replay pays ~2 000 ticks, so the
        // expected speedup is well over an order of magnitude — asserting
        // >= 3x leaves a huge margin for noisy CI machines.
        let export = measure_sim_strategies(20_000, 200, 12, 4);
        assert!(
            export.fork_speedup >= 3.0,
            "fork-from-snapshot only {:.2}x faster than replay-from-zero: {export:?}",
            export.fork_speedup
        );
        assert_eq!(export.rows.len(), 3);
        assert_eq!(export.row("replay-from-zero").inputs, 12);
        assert!(export.row("fork-batched").inputs_per_sec > 0.0);
    }

    #[test]
    fn export_serializes_with_speedups() {
        let export = measure_sim_strategies(1_000, 200, 6, 3);
        assert!(export.fork_speedup > 0.0);
        assert!(export.batched_speedup > 0.0);
        let json = serde_json::to_string(&export).expect("serializable");
        assert!(json.contains("fork_speedup"));
        assert!(json.contains("replay-from-zero"));
    }
}
