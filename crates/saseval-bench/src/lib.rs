//! Table/figure regenerators for the SaSeVAL reproduction.
//!
//! Every table and figure of the paper has a `repro_*` function here that
//! recomputes it from the library and returns the rendered text, including
//! a `paper vs measured` line where the paper publishes numbers. The
//! `repro_tables` binary prints them; EXPERIMENTS.md records the output;
//! the Criterion benches in `benches/` measure the compute behind them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz_bench;
pub mod server_bench;
pub mod sim_bench;
pub mod triage_bench;

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use attack_engine::builtin::{ablation_grid, ad08_cases, ad20_cases, full_campaign};
use attack_engine::campaign::run_campaign;
use attack_engine::executor::{execute, AttackKind, TestCase, WorldOutcome};
use saseval_core::catalog::{use_case_1, use_case_2, UseCaseCatalog};
use saseval_core::pipeline::run_pipeline;
use saseval_core::report::TraceMatrix;
use saseval_fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval_fuzz::model::keyless_command_model;
use saseval_obs::{MetricsSnapshot, Obs};
use saseval_tara::tree::{AttackTree, TreeNode};
use saseval_threat::builtin::{
    automotive_library, table_i_rows, table_ii_rows, table_iii_rows, table_v_rows,
};
use saseval_types::{attack_types_for, AsilLevel, Ftti, RatingClass, SimTime, ThreatType};
use security_controls::controls::FreshnessWindow;
use security_controls::pseudonym::{eavesdrop_campaign, PseudonymScheme};
use security_controls::{Envelope, SecurityControl};
use vehicle_sim::config::ControlSelection;
use vehicle_sim::construction::{ConstructionConfig, ConstructionWorld};

fn check(label: &str, paper: impl std::fmt::Display, measured: impl std::fmt::Display) -> String {
    let paper = paper.to_string();
    let measured = measured.to_string();
    let verdict = if paper == measured { "MATCH" } else { "MISMATCH" };
    format!("  [{verdict}] {label}: paper={paper} measured={measured}\n")
}

/// Regenerates Table I (scenarios and sub-scenarios).
pub fn repro_table_i() -> String {
    let mut out = String::from("Table I — Example scenarios connected to the automotive domain\n");
    for row in table_i_rows() {
        writeln!(out, "  {:<55} | {}", row.scenario, row.sub_scenario).expect("write");
    }
    out.push_str(&check(
        "scenarios",
        3,
        table_i_rows().iter().map(|r| r.scenario).collect::<std::collections::BTreeSet<_>>().len(),
    ));
    out.push_str(&check("sub-scenarios", 5, table_i_rows().len()));
    out
}

/// Regenerates Table II (assets and asset groups).
pub fn repro_table_ii() -> String {
    let mut out = String::from("Table II — Sample assets and asset groups\n");
    for row in table_ii_rows() {
        let groups: Vec<&str> = row.groups.iter().map(|g| g.name()).collect();
        writeln!(out, "  {:<35} | {}", row.asset, groups.join("/ ")).expect("write");
    }
    out.push_str(&check("asset rows", 4, table_ii_rows().len()));
    out
}

/// Regenerates Table III (threat scenarios → STRIDE threat types).
pub fn repro_table_iii() -> String {
    let mut out = String::from("Table III — Threat scenarios and threat types\n");
    for row in table_iii_rows() {
        writeln!(out, "  {:<60} | {}", truncate(row.threat_scenario, 58), row.threat_type)
            .expect("write");
    }
    out.push_str(&check("rows", 3, table_iii_rows().len()));
    out
}

/// Regenerates Table IV (STRIDE threats → attack types).
pub fn repro_table_iv() -> String {
    let mut out = String::from("Table IV — STRIDE threats and attacks\n");
    for threat in ThreatType::ALL {
        let attacks: Vec<&str> = attack_types_for(threat).iter().map(|a| a.name()).collect();
        writeln!(out, "  {:<25} | {}", threat.to_string(), attacks.join(", ")).expect("write");
    }
    out.push_str(&check("Spoofing row size", 2, attack_types_for(ThreatType::Spoofing).len()));
    out.push_str(&check("Tampering row size", 7, attack_types_for(ThreatType::Tampering).len()));
    out.push_str(&check(
        "Repudiation row size",
        3,
        attack_types_for(ThreatType::Repudiation).len(),
    ));
    out.push_str(&check(
        "Information disclosure row size",
        6,
        attack_types_for(ThreatType::InformationDisclosure).len(),
    ));
    out.push_str(&check(
        "Denial of service row size",
        3,
        attack_types_for(ThreatType::DenialOfService).len(),
    ));
    out
}

/// Regenerates Table V (full asset → threat → type → attack chain).
pub fn repro_table_v() -> String {
    let lib = automotive_library();
    let mut out = String::from("Table V — Assets mapped to threats and attack types\n");
    for row in table_v_rows() {
        let consistent = lib
            .threat_scenario(row.library_id)
            .map(|t| t.attack_types().contains(&row.attack_type))
            .unwrap_or(false);
        writeln!(
            out,
            "  {:<8} | {:<40} | {:<22} | {:<25} | {}",
            row.asset,
            truncate(row.threat_scenario, 38),
            row.threat_type.to_string(),
            row.attack_type.to_string(),
            if consistent { "ok" } else { "INCONSISTENT" }
        )
        .expect("write");
    }
    out.push_str(&check("rows", 4, table_v_rows().len()));
    out
}

fn truncate(text: &str, len: usize) -> String {
    if text.len() <= len {
        text.to_owned()
    } else {
        format!(
            "{}…",
            &text[..text
                .char_indices()
                .take_while(|(i, _)| *i < len)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}

fn distribution_line(
    catalog: &UseCaseCatalog,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    let d = catalog.hara.distribution();
    (
        d.total(),
        d.count(RatingClass::NotApplicable),
        d.count(RatingClass::Qm),
        d.count(RatingClass::Asil(AsilLevel::A)),
        d.count(RatingClass::Asil(AsilLevel::B)),
        d.count(RatingClass::Asil(AsilLevel::C)),
        d.count(RatingClass::Asil(AsilLevel::D)),
    )
}

/// Regenerates the §IV-A HARA statistics (Use Case I).
pub fn repro_uc1_hara() -> String {
    let uc1 = use_case_1();
    let mut out = String::from("§IV-A — Use Case I HARA (Autonomous Driving)\n");
    writeln!(out, "  {}", uc1.hara.distribution()).expect("write");
    let (total, na, qm, a, b, c, d) = distribution_line(&uc1);
    out.push_str(&check("functions", 3, uc1.hara.function_count()));
    out.push_str(&check("ratings", 29, total));
    out.push_str(&check("N/A", 5, na));
    out.push_str(&check("No ASIL", 5, qm));
    out.push_str(&check("ASIL A", 7, a));
    out.push_str(&check("ASIL B", 3, b));
    out.push_str(&check("ASIL C", 7, c));
    out.push_str(&check("ASIL D", 2, d));
    for (goal, asil) in [
        ("SG01", "ASIL C"),
        ("SG02", "ASIL C"),
        ("SG03", "ASIL D"),
        ("SG04", "ASIL C"),
        ("SG05", "ASIL B"),
        ("SG06", "ASIL A"),
    ] {
        let measured = uc1
            .hara
            .safety_goal(goal)
            .and_then(|g| uc1.hara.goal_asil(g))
            .map(|a| a.to_string())
            .unwrap_or_else(|| "missing".to_owned());
        out.push_str(&check(goal, asil, measured));
    }
    out
}

/// Regenerates the §IV-A derivation statistics (23 attack descriptions).
pub fn repro_uc1_attacks() -> String {
    let uc1 = use_case_1();
    let lib = automotive_library();
    let report = run_pipeline(&uc1, &lib).expect("pipeline");
    let mut out = String::from("§IV-A — Use Case I attack derivation\n");
    out.push_str(&check("attack descriptions", 23, report.attack_count));
    out.push_str(&check("deductive coverage complete", true, report.deductive.is_complete()));
    out.push_str(&check(
        "inductive coverage",
        "100%",
        format!("{:.0}%", report.inductive.coverage_ratio() * 100.0),
    ));
    let matrix = TraceMatrix::from_catalog(&uc1);
    writeln!(out, "  attacks per goal:").expect("write");
    for (goal, count) in matrix.attacks_per_goal() {
        writeln!(out, "    {goal}: {count}").expect("write");
    }
    out
}

/// Regenerates the §IV-B HARA statistics (Use Case II).
pub fn repro_uc2_hara() -> String {
    let uc2 = use_case_2();
    let mut out = String::from("§IV-B — Use Case II HARA (Keyless Car Opener)\n");
    writeln!(out, "  {}", uc2.hara.distribution()).expect("write");
    let (total, na, qm, a, b, c, d) = distribution_line(&uc2);
    out.push_str(&check("functions", 2, uc2.hara.function_count()));
    out.push_str(&check("ratings", 20, total));
    out.push_str(&check("N/A", 7, na));
    out.push_str(&check("No ASIL", 5, qm));
    out.push_str(&check("ASIL A", 2, a));
    out.push_str(&check("ASIL B", 4, b));
    out.push_str(&check("ASIL C", 1, c));
    out.push_str(&check("ASIL D", 1, d));
    for (goal, asil) in
        [("SG01", "ASIL D"), ("SG02", "ASIL B"), ("SG03", "ASIL A"), ("SG04", "ASIL A")]
    {
        let measured = uc2
            .hara
            .safety_goal(goal)
            .and_then(|g| uc2.hara.goal_asil(g))
            .map(|a| a.to_string())
            .unwrap_or_else(|| "missing".to_owned());
        out.push_str(&check(goal, asil, measured));
    }
    out
}

/// Regenerates the §IV-B derivation statistics (27 + 2 attacks).
pub fn repro_uc2_attacks() -> String {
    let uc2 = use_case_2();
    let lib = automotive_library();
    let report = run_pipeline(&uc2, &lib).expect("pipeline");
    let mut out = String::from("§IV-B — Use Case II attack derivation\n");
    out.push_str(&check("safety attacks", 27, uc2.safety_attacks().count()));
    out.push_str(&check("privacy attacks", 2, uc2.privacy_attacks().count()));
    out.push_str(&check("deductive coverage complete", true, report.deductive.is_complete()));
    out.push_str(&check(
        "inductive coverage",
        "100%",
        format!("{:.0}%", report.inductive.coverage_ratio() * 100.0),
    ));
    out
}

fn render_execution(out: &mut String, result: &attack_engine::executor::ExecutionResult) {
    writeln!(
        out,
        "  [{}] success={} detected={} goals={:?}",
        result.label, result.attack_succeeded, result.detected, result.violated_goals
    )
    .expect("write");
}

/// Regenerates Table VI: attack AD20 executed with and without the
/// message-counter control.
pub fn repro_table_vi() -> String {
    let uc1 = use_case_1();
    let ad20 = uc1.attacks.iter().find(|a| a.id().as_str() == "AD20").expect("AD20");
    let mut out = String::from("Table VI — Attack description AD20 (executed)\n");
    writeln!(out, "  Description : {}", ad20.description()).expect("write");
    writeln!(out, "  SG IDs      : {:?}", ad20.safety_goals()).expect("write");
    writeln!(out, "  Interface   : {}", ad20.interface().expect("iface")).expect("write");
    writeln!(out, "  Threat link : {}", ad20.threat_scenario()).expect("write");
    writeln!(
        out,
        "  Types       : Threat: {} - Attack: {}",
        ad20.threat_type(),
        ad20.attack_type()
    )
    .expect("write");
    writeln!(out, "  Precondition: {}", ad20.precondition()).expect("write");
    writeln!(out, "  Measures    : {}", ad20.expected_measures()).expect("write");
    writeln!(out, "  Success     : {}", ad20.attack_success()).expect("write");
    writeln!(out, "  Fails       : {}", ad20.attack_fails()).expect("write");
    let report = run_campaign(&ad20_cases());
    for result in &report.results {
        render_execution(&mut out, result);
    }
    out.push_str(&check(
        "undefended: shutdown of service",
        true,
        matches!(&report.results[0].outcome, WorldOutcome::Construction(o) if o.service_shutdown),
    ));
    out.push_str(&check("defended: unwanted sender identified", true, report.results[1].detected));
    out
}

/// Regenerates Table VII: attack AD08 executed with and without the
/// allow-list.
pub fn repro_table_vii() -> String {
    let uc2 = use_case_2();
    let ad08 = uc2.attacks.iter().find(|a| a.id().as_str() == "AD08").expect("AD08");
    let mut out = String::from("Table VII — Attack description AD08 (executed)\n");
    writeln!(out, "  Description : {}", ad08.description()).expect("write");
    writeln!(out, "  SG          : {:?}", ad08.safety_goals()).expect("write");
    writeln!(out, "  Interface   : {}", ad08.interface().expect("iface")).expect("write");
    writeln!(out, "  Threat link : {}", ad08.threat_scenario()).expect("write");
    writeln!(
        out,
        "  Types       : Threat: {} - Attack: {}",
        ad08.threat_type(),
        ad08.attack_type()
    )
    .expect("write");
    writeln!(out, "  Precondition: {}", ad08.precondition()).expect("write");
    writeln!(out, "  Measures    : {}", ad08.expected_measures()).expect("write");
    let report = run_campaign(&ad08_cases());
    for result in &report.results {
        render_execution(&mut out, result);
    }
    out.push_str(&check(
        "with allow-list: opening rejected",
        true,
        !report.results[0].attack_succeeded,
    ));
    out.push_str(&check(
        "without allow-list: vehicle opens",
        true,
        report.results[2].attack_succeeded,
    ));
    out
}

/// Regenerates Fig. 1: the four-stage pipeline trace for both use cases.
pub fn repro_fig1() -> String {
    let lib = automotive_library();
    let mut out = String::from("Fig. 1 — SaSeVAL process overview (executed stage trace)\n");
    for catalog in [use_case_1(), use_case_2()] {
        let report = run_pipeline(&catalog, &lib).expect("pipeline");
        writeln!(out, "  {}:", report.use_case).expect("write");
        for stage in &report.stages {
            writeln!(out, "    [{}] {}: {}", stage.stage, stage.title, stage.summary)
                .expect("write");
        }
        out.push_str(&check(
            format!("{} RQ1 complete", report.use_case).as_str(),
            true,
            report.is_complete(),
        ));
    }
    out
}

/// Regenerates Fig. 2: the nominal construction-site approach timeline.
pub fn repro_fig2() -> String {
    let world = ConstructionWorld::new(ConstructionConfig::default());
    let outcome = world.run_nominal();
    let mut out =
        String::from("Fig. 2 — Use Case I: autonomous vehicle approaches a construction site\n");
    writeln!(
        out,
        "  take-over requested at {} — driver in control at {} — zone entry at {} at {:.1} m/s",
        outcome.takeover_requested_at.map(|t| t.to_string()).unwrap_or_else(|| "never".into()),
        outcome.manual_at.map(|t| t.to_string()).unwrap_or_else(|| "never".into()),
        outcome.entered_zone_at,
        outcome.entry_speed_mps
    )
    .expect("write");
    if let Some(margin) = outcome.takeover_margin() {
        writeln!(out, "  take-over safety margin before zone entry: {margin}").expect("write");
    }
    out.push_str(&check("control returned before the site", true, !outcome.entered_automated));
    out.push_str(&check("no safety goal violated nominally", true, !outcome.any_violation()));
    out.push_str(&check(
        "margin exceeds SG01 FTTI (2s)",
        true,
        outcome.takeover_margin().is_some_and(|m| m >= Ftti::from_secs(2)),
    ));
    out
}

/// Ablation: attack success across control presets (the matrix behind the
/// `bench_ablation_controls` bench).
pub fn repro_ablation_controls() -> String {
    let report = run_campaign(&ablation_grid());
    let mut out = String::from("Ablation — attack success per control preset\n");
    let presets = ["none", "auth-only", "auth+freshness+replay", "full"];
    writeln!(
        out,
        "  {:<10} {:>6} {:>10} {:>22} {:>6}",
        "attack", presets[0], presets[1], presets[2], presets[3]
    )
    .expect("write");
    for attack in ["AD20", "UC1-AD10", "UC1-AD17", "UC2-AD01", "UC2-AD14"] {
        let row: Vec<&str> = presets
            .iter()
            .map(|preset| {
                report
                    .for_attack(attack)
                    .find(|r| r.label == *preset)
                    .map(|r| if r.attack_succeeded { "YES" } else { "no" })
                    .unwrap_or("?")
            })
            .collect();
        writeln!(out, "  {:<10} {:>6} {:>10} {:>22} {:>6}", attack, row[0], row[1], row[2], row[3])
            .expect("write");
    }
    out
}

/// Ablation: flooding rate sweep vs service survival and detection (the
/// crossover where the message counter loses).
pub fn repro_flood_sweep() -> String {
    let mut out = String::from("Ablation — flooding rate sweep (messages per 10 ms tick)\n");
    writeln!(out, "  {:>8} | {:^22} | {:^30}", "rate", "without counter", "with counter")
        .expect("write");
    for per_tick in [1usize, 5, 10, 20, 30, 40, 80] {
        let run = |controls: ControlSelection| {
            execute(&TestCase {
                attack_id: "AD20".into(),
                label: format!("rate-{per_tick}"),
                kind: AttackKind::V2xFlood { per_tick },
                controls,
                seed: 42,
            })
        };
        let undefended =
            run(ControlSelection { flood_protection: false, ..ControlSelection::all() });
        let defended = run(ControlSelection::all());
        let fmt = |r: &attack_engine::executor::ExecutionResult| {
            let isolation = match &r.outcome {
                WorldOutcome::Construction(o) => o.isolated_at,
                WorldOutcome::Keyless(o) => o.isolated_at,
            };
            format!(
                "{} {}",
                if r.attack_succeeded { "shutdown" } else { "alive" },
                match isolation {
                    Some(at) => format!("(isolated at {at})"),
                    None if r.detected => "(detected)".to_owned(),
                    None => String::new(),
                }
            )
        };
        writeln!(out, "  {:>8} | {:^22} | {:^30}", per_tick, fmt(&undefended), fmt(&defended))
            .expect("write");
    }
    out
}

/// Ablation: freshness-window sweep vs replay acceptance — the message-age
/// boundary at which a replayed (valid) message is rejected.
pub fn repro_window_sweep() -> String {
    let mut out = String::from(
        "Ablation — freshness window vs replayed-message age (accept = replay lands)\n",
    );
    let ages_ms = [50u64, 100, 200, 400, 500, 600, 1_000, 5_000];
    write!(out, "  {:>12} |", "window \\ age").expect("write");
    for age in ages_ms {
        write!(out, " {age:>6}").expect("write");
    }
    out.push('\n');
    for window_ms in [100u64, 250, 500, 1_000] {
        let mut control = FreshnessWindow::new(Ftti::from_millis(window_ms));
        write!(out, "  {:>10}ms |", window_ms).expect("write");
        for age in ages_ms {
            let now = SimTime::from_secs(100);
            let generated = SimTime::from_micros(now.as_micros() - age * 1_000);
            let env = Envelope::new("replayer", generated, vec![1, 2, 3]);
            let accepted = control.check(&env, now).is_ok();
            write!(out, " {:>6}", if accepted { "ACCEPT" } else { "reject" }).expect("write");
        }
        out.push('\n');
    }
    out.push_str("  Shape: a replay lands iff its age fits inside the window (§IV-B measure).\n");
    out
}

/// Ablation: pseudonym rotation period vs attacker linkability — the
/// executable counterpart of SG06 ("Avoid profile building with
/// warnings") and the Use Case II tracking attacks AD28/AD29.
pub fn repro_ablation_pseudonym() -> String {
    let mut out =
        String::from("Ablation — pseudonym rotation vs eavesdropper linkability (SG06 / AD28)\n");
    writeln!(out, "  observation: 1 message/s over 600 s").expect("write");
    writeln!(out, "  {:>16} | {:>12} | {:>18}", "rotation", "linkability", "distinct pseudonyms")
        .expect("write");
    let interval = Ftti::from_secs(1);
    let duration = Ftti::from_secs(600);
    let static_scheme = PseudonymScheme::static_identifier(7);
    let observer = eavesdrop_campaign(&static_scheme, 42, interval, duration);
    writeln!(
        out,
        "  {:>16} | {:>12.3} | {:>18}",
        "none (static)",
        observer.linkability(),
        observer.distinct_pseudonyms()
    )
    .expect("write");
    let mut last = f64::INFINITY;
    let mut monotone = true;
    for period_s in [600u64, 120, 60, 10, 2] {
        let scheme = PseudonymScheme::new(Ftti::from_secs(period_s), 7);
        let observer = eavesdrop_campaign(&scheme, 42, interval, duration);
        let linkability = observer.linkability();
        if linkability >= last {
            monotone = false;
        }
        last = linkability;
        writeln!(
            out,
            "  {:>15}s | {:>12.3} | {:>18}",
            period_s,
            linkability,
            observer.distinct_pseudonyms()
        )
        .expect("write");
    }
    out.push_str(&check("linkability decreases with faster rotation", true, monotone));
    out
}

/// Regenerates the alternative-analysis comparison (§III-A2): the same
/// keyless replay threat rated with SAHARA and HEAVENS.
pub fn repro_alt_analyses() -> String {
    use saseval_tara::heavens::{heavens_security_level, impact_level, ThreatParameters};
    use saseval_tara::sahara::{security_level, Criticality, KnowHow, Resources};
    use saseval_tara::{ImpactCategory, ImpactLevel};

    let mut out =
        String::from("§III-A2 — alternative threat analyses on the keyless replay threat\n");
    // SAHARA: off-the-shelf radio (R1), technical knowledge (K1),
    // life-threatening when the vehicle opens in traffic (T3).
    let secl = security_level(Resources::R1, KnowHow::K1, Criticality::T3);
    writeln!(out, "  SAHARA : R1/K1/T3 -> {secl}").expect("write");
    // HEAVENS: trivial effort, severe safety impact.
    let tl = ThreatParameters::new(0, 0, 1, 1).threat_level();
    let il = impact_level(&[
        (ImpactCategory::Safety, ImpactLevel::Severe),
        (ImpactCategory::Financial, ImpactLevel::Major),
    ]);
    let hsl = heavens_security_level(tl, il);
    writeln!(out, "  HEAVENS: TL={tl:?} x IL={il:?} -> {hsl}").expect("write");
    out.push_str(&check(
        "SAHARA rates the threat safety-relevant (SecL >= 3)",
        true,
        secl.value() >= 3,
    ));
    out.push_str(&check("HEAVENS rates the threat Critical", "Critical", hsl));
    out
}

/// Shard count used by [`repro_fuzz`]; 1 runs the serial loop.
static FUZZ_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Batch size used by [`repro_fuzz`]; 1 executes inputs one by one.
static FUZZ_BATCH: AtomicUsize = AtomicUsize::new(1);

/// Sets the shard count [`repro_fuzz`] fuzzes with (the
/// `repro_tables --fuzz-shards N` flag). `1` (the default) uses the
/// serial [`Fuzzer::run`] loop; anything larger uses
/// [`Fuzzer::run_parallel`].
pub fn set_fuzz_shards(shards: usize) {
    FUZZ_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// Sets the target batch size [`repro_fuzz`] fuzzes with (the
/// `repro_tables --fuzz-batch N` flag). Anything above 1 makes the
/// experiment run twice — unbatched and batched — and verify the two
/// reports are identical (the batching determinism contract).
pub fn set_fuzz_batch(batch: usize) {
    FUZZ_BATCH.store(batch.max(1), Ordering::Relaxed);
}

/// Regenerates the §II-B fuzzing experiment: attack-path-guided fuzzing
/// with percentage coverage.
pub fn repro_fuzz() -> String {
    let tree = AttackTree::new(
        "Open the vehicle without authorization",
        TreeNode::or(
            "entry strategies",
            vec![
                TreeNode::leaf_on("replay recorded open command", "BLE_PHONE"),
                TreeNode::leaf_on("forge command with guessed key ID", "ECU_GW"),
                TreeNode::and(
                    "malware path",
                    vec![
                        TreeNode::leaf_on("exploit BLE stack", "BLE_PHONE"),
                        TreeNode::leaf_on("inject open frame on CAN", "CAN_GW"),
                    ],
                ),
            ],
        ),
    )
    .expect("tree");
    let paths = tree.paths().expect("paths");
    let shards = FUZZ_SHARDS.load(Ordering::Relaxed);
    let batch = FUZZ_BATCH.load(Ordering::Relaxed);
    fn decode_target(input: &[u8]) -> TargetResponse {
        if vehicle_sim::keyless::Command::decode(input).is_some() {
            TargetResponse::Accepted
        } else {
            TargetResponse::Rejected
        }
    }
    let run_with = |batch_size: usize| {
        let mut fuzzer = Fuzzer::new(keyless_command_model(), 7).with_batch_size(batch_size);
        if shards == 1 {
            fuzzer.run(&paths, 10_000, decode_target)
        } else {
            fuzzer.run_parallel(&paths, 10_000, shards, |_| decode_target)
        }
    };
    let report = run_with(1);
    let mut out = String::from("§II-B — Protocol-guided fuzzing from TARA attack paths\n");
    if shards > 1 {
        writeln!(out, "  sharded parallel run: {shards} shards").expect("write");
    }
    if batch > 1 {
        writeln!(out, "  batched run: batch size {batch}").expect("write");
        out.push_str(&check("batched report identical to serial", true, run_with(batch) == report));
    }
    writeln!(
        out,
        "  attack paths: {} over interfaces {:?}",
        paths.len(),
        tree.interfaces().iter().map(|i| i.as_str()).collect::<Vec<_>>()
    )
    .expect("write");
    writeln!(
        out,
        "  {} iterations: {} decoded, {} rejected, {} crashes",
        report.iterations,
        report.accepted,
        report.rejected,
        report.crashes.len()
    )
    .expect("write");
    writeln!(out, "  protocol field coverage: {:.1}%", report.field_coverage_percent())
        .expect("write");
    writeln!(out, "  attack-path coverage:   {:.1}%", report.path_coverage_percent())
        .expect("write");
    out.push_str(&check("coverage measured in percent", true, true));
    out.push_str(&check("decoder crash-free", true, report.crashes.is_empty()));
    out
}

/// Regenerates the crash-triage experiment: deterministic minimization
/// of every crash the seeded-bug oracles produce, with reduction and
/// step statistics per model (backing EXPERIMENTS.md's triage section
/// and `BENCH_triage.json`).
pub fn repro_triage() -> String {
    let export = triage_bench::minimize_stats(10_000, 4_096);
    let mut out = String::from("Crash triage — ddmin minimization of seeded-bug crashes\n");
    writeln!(
        out,
        "  {} iterations per model, step budget {}",
        export.iterations, export.minimize_budget
    )
    .expect("write");
    writeln!(
        out,
        "  {:<18} {:>7} {:>10} {:>10} {:>10} {:>8}",
        "model", "crashes", "mean len", "min len", "reduction", "steps"
    )
    .expect("write");
    for row in &export.rows {
        writeln!(
            out,
            "  {:<18} {:>7} {:>10.1} {:>10.1} {:>9.1}% {:>8.1}",
            row.model,
            row.crashes,
            row.mean_original_len,
            row.mean_minimized_len,
            row.mean_reduction_ratio * 100.0,
            row.mean_steps
        )
        .expect("write");
    }
    out.push_str(&check(
        "every minimized input still crashes",
        true,
        export.rows.iter().all(|r| r.all_still_crash),
    ));
    out.push_str(&check(
        "every minimization 1-minimal within budget",
        true,
        export.rows.iter().all(|r| r.all_one_minimal),
    ));
    // Determinism: a second pass over the same seeds must agree exactly.
    let again = triage_bench::minimize_stats(10_000, 4_096);
    out.push_str(&check(
        "minimization deterministic across runs",
        true,
        export.rows.iter().zip(&again.rows).all(|(a, b)| {
            a.crashes == b.crashes
                && a.mean_minimized_len == b.mean_minimized_len
                && a.mean_steps == b.mean_steps
        }),
    ));
    out
}

/// Runs the full attack campaign and renders the verdict table (backing
/// EXPERIMENTS.md's campaign section).
pub fn repro_campaign() -> String {
    let report = run_campaign(&full_campaign());
    let mut out = String::from("Full attack campaign\n");
    for result in &report.results {
        writeln!(
            out,
            "  {:<10} {:<40} success={:<5} detected={:<5} goals={:?}",
            result.attack_id,
            result.label,
            result.attack_succeeded,
            result.detected,
            result.violated_goals
        )
        .expect("write");
    }
    writeln!(
        out,
        "  {} cases, {} safety impacts, {} detections",
        report.total(),
        report.successes(),
        report.detections()
    )
    .expect("write");
    out
}

/// A named experiment regenerator.
pub type Experiment = (&'static str, fn() -> String);

/// Runs `experiments` in order, timing each under its own name in a
/// [`MemoryRecorder`](saseval_obs::MemoryRecorder)-backed histogram, and
/// returns the rendered outputs plus the metrics snapshot (for
/// [`timing_table`] or report embedding).
pub fn run_experiments_timed(
    experiments: &[Experiment],
) -> (Vec<(&'static str, String)>, MetricsSnapshot) {
    let (obs, recorder) = Obs::memory();
    let outputs = experiments
        .iter()
        .map(|(name, f)| {
            let span = obs.span(name);
            let output = f();
            span.finish();
            (*name, output)
        })
        .collect();
    (outputs, recorder.snapshot())
}

/// Renders the per-experiment wall-time table backing
/// `repro_tables --timings`. `names` fixes the row order (snapshot
/// storage is name-sorted); experiments absent from the snapshot are
/// skipped.
pub fn timing_table(names: &[&str], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("Per-experiment wall time\n");
    writeln!(out, "  {:<22} {:>12}", "experiment", "seconds").expect("write");
    let mut total = 0.0;
    for name in names {
        if let Some(histogram) = snapshot.histogram(name) {
            writeln!(out, "  {:<22} {:>12.4}", name, histogram.sum).expect("write");
            total += histogram.sum;
        }
    }
    writeln!(out, "  {:<22} {:>12.4}", "total", total).expect("write");
    out
}

/// All experiments in DESIGN.md order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1", repro_table_i),
        ("table2", repro_table_ii),
        ("table3", repro_table_iii),
        ("table4", repro_table_iv),
        ("table5", repro_table_v),
        ("uc1-hara", repro_uc1_hara),
        ("uc1-attacks", repro_uc1_attacks),
        ("table6", repro_table_vi),
        ("uc2-hara", repro_uc2_hara),
        ("uc2-attacks", repro_uc2_attacks),
        ("table7", repro_table_vii),
        ("fig1", repro_fig1),
        ("fig2", repro_fig2),
        ("ablation-controls", repro_ablation_controls),
        ("ablation-flood", repro_flood_sweep),
        ("ablation-window", repro_window_sweep),
        ("ablation-pseudonym", repro_ablation_pseudonym),
        ("alt-analyses", repro_alt_analyses),
        ("fuzz", repro_fuzz),
        ("triage", repro_triage),
        ("campaign", repro_campaign),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_reports_no_mismatch() {
        for (name, f) in all_experiments() {
            let output = f();
            assert!(!output.contains("MISMATCH"), "{name}:\n{output}");
            assert!(!output.is_empty());
        }
    }

    #[test]
    fn timed_runner_times_every_selected_experiment() {
        let experiments = all_experiments();
        let subset = &experiments[..2];
        let (outputs, snapshot) = run_experiments_timed(subset);
        assert_eq!(outputs.len(), 2);
        for (name, output) in &outputs {
            assert!(!output.is_empty());
            assert_eq!(snapshot.histogram(name).map(|h| h.count), Some(1), "{name}");
        }
        let table = timing_table(&["table1", "table2"], &snapshot);
        assert!(table.contains("table1"));
        assert!(table.lines().last().unwrap().contains("total"));
    }

    #[test]
    fn truncate_handles_multibyte() {
        assert_eq!(truncate("abc", 10), "abc");
        let t = truncate("äöüäöüäöüä", 5);
        assert!(t.ends_with('…'));
    }
}
