//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p saseval-bench --bin repro_tables                  # everything
//! cargo run -p saseval-bench --bin repro_tables table6           # one experiment
//! cargo run -p saseval-bench --bin repro_tables --timings        # + wall-time table
//! cargo run -p saseval-bench --bin repro_tables --fuzz-shards 4  # sharded fuzzing
//! cargo run -p saseval-bench --bin repro_tables --fuzz-batch 64  # batched fuzzing
//! cargo run -p saseval-bench --bin repro_tables --replay-corpus tests/fixtures/corpus
//! cargo run -p saseval-bench --bin repro_tables --server-floor BENCH_server.json
//! cargo run -p saseval-bench --bin repro_tables --scenario-search 96
//! cargo run -p saseval-bench --bin repro_tables --list
//! ```
//!
//! `--replay-corpus DIR` is a standalone mode: it replays every entry of
//! the regression corpus at `DIR` against the current built-in model
//! oracles and exits non-zero on any regression (or corpus corruption),
//! without running the experiments.
//!
//! `--server-floor FILE` is a standalone regression guard: it reads the
//! committed `BENCH_server.json`, measures the campaign server's current
//! cached-memory round-trip latency (best of 32 repeats at the committed
//! job size), and exits non-zero when the fresh measurement is more than
//! 3x slower than the committed row — catching cached-fast-path
//! regressions without re-running the whole bench grid.
//!
//! `--scenario-search BUDGET` is a standalone determinism and efficacy
//! smoke: it runs the coverage-guided scenario search (two shards) and
//! the pure-random baseline over the built-in keyless space at a fixed
//! seed and the given budget, prints the coverage each reached plus the
//! guided corpus hash (a stable fingerprint CI can pin), and exits
//! non-zero unless the guided search discovered strictly more coverage
//! points than random sampling.

use std::path::PathBuf;

use saseval_bench::server_bench::{current_cached_memory_latency, ServerBenchExport};
use saseval_bench::triage_bench::replay_corpus_table;
use saseval_bench::{
    all_experiments, run_experiments_timed, set_fuzz_batch, set_fuzz_shards, timing_table,
};

/// Removes `flag N` (or `flag=N`) from `args` and returns the requested
/// positive count.
fn take_count_flag(args: &mut Vec<String>, flag: &str) -> Option<usize> {
    let prefix = format!("{flag}=");
    let index = args.iter().position(|a| a == flag || a.starts_with(&prefix))?;
    let matched = args.remove(index);
    let value = match matched.split_once('=') {
        Some((_, value)) => value.to_owned(),
        None if index < args.len() => args.remove(index),
        None => {
            eprintln!("{flag} requires a count");
            std::process::exit(2);
        }
    };
    match value.parse::<usize>() {
        Ok(count) if count >= 1 => Some(count),
        _ => {
            eprintln!("{flag} expects a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

/// Removes `flag PATH` (or `flag=PATH`) from `args` and returns the
/// path.
fn take_path_flag(args: &mut Vec<String>, flag: &str, what: &str) -> Option<PathBuf> {
    let prefix = format!("{flag}=");
    let index = args.iter().position(|a| a == flag || a.starts_with(&prefix))?;
    let matched = args.remove(index);
    match matched.split_once('=') {
        Some((_, value)) => Some(PathBuf::from(value)),
        None if index < args.len() => Some(PathBuf::from(args.remove(index))),
        None => {
            eprintln!("{flag} requires {what}");
            std::process::exit(2);
        }
    }
}

/// The `--server-floor` guard: compare a fresh cached-memory latency
/// measurement against the committed export, with a 3x allowance for
/// hardware and load differences.
fn run_server_floor(file: &PathBuf) -> ! {
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {}: {err}", file.display());
            std::process::exit(1);
        }
    };
    let committed: ServerBenchExport = match serde_json::from_str(&text) {
        Ok(committed) => committed,
        Err(err) => {
            eprintln!("cannot parse {}: {err}", file.display());
            std::process::exit(1);
        }
    };
    let Some(floor) = committed.cached_memory_seconds() else {
        eprintln!("{} has no cached-memory latency row", file.display());
        std::process::exit(1);
    };
    let current = current_cached_memory_latency(committed.job_iterations, 32);
    let allowed = floor * 3.0;
    println!(
        "server floor: committed cached-memory {:.6}s, current best-of-32 {:.6}s (allowed <= {:.6}s)",
        floor, current, allowed,
    );
    if current > allowed {
        eprintln!("cached-memory latency regressed: {:.6}s > 3x committed {:.6}s", current, floor,);
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `--scenario-search` smoke: a fixed-seed guided-vs-random duel
/// over the built-in keyless scenario space. Prints machine-pinnable
/// coverage numbers and corpus hashes, then gates on guided > random.
fn run_scenario_search(budget: usize) -> ! {
    use saseval_fuzz::scenario::{ScenarioSearch, ScenarioSpace};
    const SEED: u64 = 0xC0FFEE;
    const SHARDS: usize = 2;
    let search = ScenarioSearch::new(ScenarioSpace::keyless_default(), SEED);
    let guided = search.run_parallel(budget, SHARDS);
    let random = search.run_random(budget);
    println!(
        "scenario search (seed {SEED:#x}, budget {budget}, {SHARDS} shards): \
         guided cells={} paths={} corpus={} hash={:#018x}",
        guided.cells,
        guided.paths,
        guided.corpus.len(),
        guided.corpus_hash(),
    );
    println!(
        "scenario random (seed {SEED:#x}, budget {budget}): \
         cells={} paths={} corpus={} hash={:#018x}",
        random.cells,
        random.paths,
        random.corpus.len(),
        random.corpus_hash(),
    );
    if guided.coverage_points() <= random.coverage_points() {
        eprintln!(
            "guided search did not beat random sampling: {} <= {} coverage points",
            guided.coverage_points(),
            random.coverage_points(),
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(file) = take_path_flag(&mut args, "--server-floor", "a BENCH_server.json path") {
        run_server_floor(&file);
    }
    if let Some(budget) = take_count_flag(&mut args, "--scenario-search") {
        run_scenario_search(budget);
    }
    if let Some(dir) = take_path_flag(&mut args, "--replay-corpus", "a corpus directory") {
        match replay_corpus_table(&dir) {
            Ok((table, clean)) => {
                print!("{table}");
                if !clean {
                    std::process::exit(1);
                }
            }
            Err(err) => {
                eprintln!("corpus replay failed: {err}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(shards) = take_count_flag(&mut args, "--fuzz-shards") {
        set_fuzz_shards(shards);
    }
    if let Some(batch) = take_count_flag(&mut args, "--fuzz-batch") {
        set_fuzz_batch(batch);
    }
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }
    let timings = args.iter().any(|a| a == "--timings");

    let selected: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let chosen: Vec<_> = experiments
        .into_iter()
        .filter(|(name, _)| selected.is_empty() || selected.contains(name))
        .collect();
    if chosen.is_empty() {
        eprintln!("no experiment matched {selected:?}; use --list");
        std::process::exit(2);
    }

    let (outputs, snapshot) = run_experiments_timed(&chosen);
    let mut mismatches = 0;
    for (name, output) in &outputs {
        println!("==== {name} ====");
        print!("{output}");
        println!();
        mismatches += output.matches("MISMATCH").count();
    }
    if timings {
        let names: Vec<&str> = chosen.iter().map(|(name, _)| *name).collect();
        println!("==== timings ====");
        print!("{}", timing_table(&names, &snapshot));
        println!();
    }
    println!("{} experiment(s), {mismatches} paper-vs-measured mismatch(es).", outputs.len());
    if mismatches > 0 {
        std::process::exit(1);
    }
}
