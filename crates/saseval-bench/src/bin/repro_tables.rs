//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p saseval-bench --bin repro_tables                  # everything
//! cargo run -p saseval-bench --bin repro_tables table6           # one experiment
//! cargo run -p saseval-bench --bin repro_tables --timings        # + wall-time table
//! cargo run -p saseval-bench --bin repro_tables --fuzz-shards 4  # sharded fuzzing
//! cargo run -p saseval-bench --bin repro_tables --fuzz-batch 64  # batched fuzzing
//! cargo run -p saseval-bench --bin repro_tables --replay-corpus tests/fixtures/corpus
//! cargo run -p saseval-bench --bin repro_tables --list
//! ```
//!
//! `--replay-corpus DIR` is a standalone mode: it replays every entry of
//! the regression corpus at `DIR` against the current built-in model
//! oracles and exits non-zero on any regression (or corpus corruption),
//! without running the experiments.

use std::path::PathBuf;

use saseval_bench::triage_bench::replay_corpus_table;
use saseval_bench::{
    all_experiments, run_experiments_timed, set_fuzz_batch, set_fuzz_shards, timing_table,
};

/// Removes `flag N` (or `flag=N`) from `args` and returns the requested
/// positive count.
fn take_count_flag(args: &mut Vec<String>, flag: &str) -> Option<usize> {
    let prefix = format!("{flag}=");
    let index = args.iter().position(|a| a == flag || a.starts_with(&prefix))?;
    let matched = args.remove(index);
    let value = match matched.split_once('=') {
        Some((_, value)) => value.to_owned(),
        None if index < args.len() => args.remove(index),
        None => {
            eprintln!("{flag} requires a count");
            std::process::exit(2);
        }
    };
    match value.parse::<usize>() {
        Ok(count) if count >= 1 => Some(count),
        _ => {
            eprintln!("{flag} expects a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

/// Removes `--replay-corpus DIR` (or `--replay-corpus=DIR`) from `args`
/// and returns the corpus directory.
fn take_replay_corpus(args: &mut Vec<String>) -> Option<PathBuf> {
    let index =
        args.iter().position(|a| a == "--replay-corpus" || a.starts_with("--replay-corpus="))?;
    let flag = args.remove(index);
    match flag.split_once('=') {
        Some((_, value)) => Some(PathBuf::from(value)),
        None if index < args.len() => Some(PathBuf::from(args.remove(index))),
        None => {
            eprintln!("--replay-corpus requires a corpus directory");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(dir) = take_replay_corpus(&mut args) {
        match replay_corpus_table(&dir) {
            Ok((table, clean)) => {
                print!("{table}");
                if !clean {
                    std::process::exit(1);
                }
            }
            Err(err) => {
                eprintln!("corpus replay failed: {err}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(shards) = take_count_flag(&mut args, "--fuzz-shards") {
        set_fuzz_shards(shards);
    }
    if let Some(batch) = take_count_flag(&mut args, "--fuzz-batch") {
        set_fuzz_batch(batch);
    }
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }
    let timings = args.iter().any(|a| a == "--timings");

    let selected: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let chosen: Vec<_> = experiments
        .into_iter()
        .filter(|(name, _)| selected.is_empty() || selected.contains(name))
        .collect();
    if chosen.is_empty() {
        eprintln!("no experiment matched {selected:?}; use --list");
        std::process::exit(2);
    }

    let (outputs, snapshot) = run_experiments_timed(&chosen);
    let mut mismatches = 0;
    for (name, output) in &outputs {
        println!("==== {name} ====");
        print!("{output}");
        println!();
        mismatches += output.matches("MISMATCH").count();
    }
    if timings {
        let names: Vec<&str> = chosen.iter().map(|(name, _)| *name).collect();
        println!("==== timings ====");
        print!("{}", timing_table(&names, &snapshot));
        println!();
    }
    println!("{} experiment(s), {mismatches} paper-vs-measured mismatch(es).", outputs.len());
    if mismatches > 0 {
        std::process::exit(1);
    }
}
