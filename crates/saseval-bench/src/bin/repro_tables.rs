//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p saseval-bench --bin repro_tables            # everything
//! cargo run -p saseval-bench --bin repro_tables table6     # one experiment
//! cargo run -p saseval-bench --bin repro_tables --list
//! ```

use saseval_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }

    let selected: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut ran = 0;
    let mut mismatches = 0;
    for (name, f) in &experiments {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let output = f();
        println!("==== {name} ====");
        print!("{output}");
        println!();
        ran += 1;
        mismatches += output.matches("MISMATCH").count();
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}; use --list");
        std::process::exit(2);
    }
    println!("{ran} experiment(s), {mismatches} paper-vs-measured mismatch(es).");
    if mismatches > 0 {
        std::process::exit(1);
    }
}
