//! Exports the full SaSeVAL validation reports (Markdown) and the raw
//! campaign results (JSON) for both use cases.
//!
//! ```sh
//! cargo run -p saseval-bench --bin export_report [out-dir]
//! ```

use std::fs;
use std::path::PathBuf;

use attack_engine::builtin::full_campaign;
use attack_engine::campaign::run_campaign;
use saseval_core::catalog::{use_case_1, use_case_2};
use saseval_core::export::render_validation_report;
use saseval_threat::builtin::automotive_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "target/saseval-reports".to_owned()),
    );
    fs::create_dir_all(&out_dir)?;

    let library = automotive_library();
    for (catalog, file) in [
        (use_case_1(), "use_case_1_validation_report.md"),
        (use_case_2(), "use_case_2_validation_report.md"),
    ] {
        let report = render_validation_report(&catalog, &library)?;
        let path = out_dir.join(file);
        fs::write(&path, &report)?;
        println!("wrote {} ({} bytes)", path.display(), report.len());
    }

    let campaign = run_campaign(&full_campaign());
    let json = serde_json::to_string_pretty(&campaign.results)?;
    let path = out_dir.join("attack_campaign_results.json");
    fs::write(&path, &json)?;
    println!(
        "wrote {} ({} cases, {} safety impacts)",
        path.display(),
        campaign.total(),
        campaign.successes()
    );
    Ok(())
}
