//! Exports the full SaSeVAL validation reports (Markdown), the raw
//! campaign results (JSON, with the run's metrics snapshot embedded) for
//! both use cases, the fuzzing throughput grid (`BENCH_fuzz.json`:
//! serial vs 2/4-shard inputs-per-second on both protocol models), the
//! crash-triage minimization statistics (`BENCH_triage.json`), and the
//! campaign-server latency/throughput grid (`BENCH_server.json`: cold vs
//! warm vs cached request latency plus jobs/sec under concurrent
//! clients).
//!
//! ```sh
//! cargo run -p saseval-bench --bin export_report [out-dir]
//! ```

use std::fs;
use std::path::PathBuf;

use attack_engine::builtin::full_campaign;
use attack_engine::campaign::run_campaign_with_obs;
use attack_engine::ExecutionResult;
use saseval_core::catalog::{use_case_1, use_case_2};
use saseval_core::export::render_validation_report;
use saseval_lint::{render_json, run_lint, LintConfig, LintContext};
use saseval_obs::{MetricsSnapshot, Obs};
use saseval_threat::builtin::automotive_library;
use serde::Serialize;

/// The JSON document written to `attack_campaign_results.json`: the
/// per-case verdicts plus the metrics collected while producing them.
#[derive(Serialize)]
struct CampaignExport {
    results: Vec<ExecutionResult>,
    metrics: MetricsSnapshot,
}

/// The JSON document written to `BENCH_fuzz.json`: the shard-count
/// throughput grid under `grid`, the warm-prefix strategy comparison
/// (replay-from-zero vs fork-from-snapshot vs batched lockstep) under
/// `warm_prefix`.
#[derive(Serialize)]
struct FuzzBenchExport {
    grid: saseval_bench::fuzz_bench::FuzzThroughputExport,
    warm_prefix: saseval_bench::sim_bench::SimThroughputExport,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "target/saseval-reports".to_owned()),
    );
    fs::create_dir_all(&out_dir)?;

    let library = automotive_library();
    for (catalog, file) in [
        (use_case_1(), "use_case_1_validation_report.md"),
        (use_case_2(), "use_case_2_validation_report.md"),
    ] {
        let report = render_validation_report(&catalog, &library)?;
        let path = out_dir.join(file);
        fs::write(&path, &report)?;
        println!("wrote {} ({} bytes)", path.display(), report.len());
    }

    // Lint both catalogs and embed the findings alongside the reports, so
    // a report bundle carries its own static-analysis verdict.
    let lint_obs = Obs::noop();
    let config = LintConfig::new();
    let reports: Vec<_> = [use_case_1(), use_case_2()]
        .iter()
        .map(|catalog| run_lint(&LintContext::for_catalog(&library, catalog), &config, &lint_obs))
        .collect();
    let report_refs: Vec<_> = reports.iter().collect();
    let lint_json = render_json(&report_refs);
    let path = out_dir.join("lint_report.sarif.json");
    fs::write(&path, &lint_json)?;
    let findings: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    println!("wrote {} ({findings} findings)", path.display());

    let (obs, recorder) = Obs::memory();
    let campaign = run_campaign_with_obs(&full_campaign(), &obs);
    let total = campaign.total();
    let successes = campaign.successes();
    let export = CampaignExport { results: campaign.results, metrics: recorder.snapshot() };
    let json = serde_json::to_string_pretty(&export)?;
    let path = out_dir.join("attack_campaign_results.json");
    fs::write(&path, &json)?;
    println!("wrote {} ({total} cases, {successes} safety impacts)", path.display());

    let metrics_md = saseval_obs::export::to_markdown(&export.metrics);
    let path = out_dir.join("campaign_metrics.md");
    fs::write(&path, &metrics_md)?;
    println!("wrote {} ({} bytes)", path.display(), metrics_md.len());

    // Fuzzing throughput: serial vs 2/4-shard inputs-per-second on the
    // keyless and V2X models, plus the warm-prefix strategy comparison
    // over the simulation oracle (the numbers EXPERIMENTS.md records).
    let export = FuzzBenchExport {
        grid: saseval_bench::fuzz_bench::fuzz_throughput_grid(200_000),
        warm_prefix: saseval_bench::sim_bench::warm_prefix_comparison(256),
    };
    let json = serde_json::to_string_pretty(&export)?;
    let path = out_dir.join("BENCH_fuzz.json");
    fs::write(&path, &json)?;
    println!(
        "wrote {} ({} grid rows, {} hardware threads, fork speedup {:.1}x)",
        path.display(),
        export.grid.rows.len(),
        export.grid.available_parallelism,
        export.warm_prefix.fork_speedup
    );

    // Crash triage: minimization statistics per model on the seeded-bug
    // oracles, with the fuzz.minimize metrics embedded.
    let triage = saseval_bench::triage_bench::minimize_stats(10_000, 4_096);
    let json = serde_json::to_string_pretty(&triage)?;
    let path = out_dir.join("BENCH_triage.json");
    fs::write(&path, &json)?;
    println!(
        "wrote {} ({} models, {} crashes minimized)",
        path.display(),
        triage.rows.len(),
        triage.rows.iter().map(|r| r.crashes).sum::<usize>()
    );

    // Campaign server: cold vs warm vs cached latency over the TCP
    // protocol, the 1/4/16/64-client serial-vs-pipelined cached sweep,
    // and the single-flight coalescing burst (the ISSUE 7 acceptance
    // export — cached repeats must be >= 100x faster than a cold run —
    // extended by ISSUE 9's concurrency grid).
    let server = saseval_bench::server_bench::measure_server(65_536);
    let json = serde_json::to_string_pretty(&server)?;
    let path = out_dir.join("BENCH_server.json");
    fs::write(&path, &json)?;
    println!(
        "wrote {} (cold {:.3}s, cached-memory speedup {:.0}x, burst {} exec / {} req)",
        path.display(),
        server.latency[0].seconds,
        server.cached_speedup_vs_cold,
        server.coalescing.executions,
        server.coalescing.requests
    );
    Ok(())
}
