//! Benchmarks of the batched struct-of-arrays world stepping: N worlds
//! stepped one by one vs in lockstep through
//! [`ConstructionBatch`]/[`KeylessBatch`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_types::{Ftti, SimTime};
use vehicle_sim::construction::{ConstructionConfig, ConstructionWorld};
use vehicle_sim::keyless::{KeylessConfig, KeylessWorld};
use vehicle_sim::{ConstructionBatch, KeylessBatch};

fn construction_worlds(n: usize) -> Vec<ConstructionWorld> {
    (0..n)
        .map(|i| {
            ConstructionWorld::new(ConstructionConfig {
                seed: i as u64,
                initial_speed_mps: 22.0 + i as f64 * 0.5,
                horizon: Ftti::from_secs(5),
                ..Default::default()
            })
        })
        .collect()
}

fn keyless_worlds(n: usize) -> Vec<KeylessWorld> {
    (0..n)
        .map(|i| {
            let mut world = KeylessWorld::new(KeylessConfig {
                seed: i as u64,
                horizon: Ftti::from_secs(5),
                ..Default::default()
            });
            world.schedule_owner_open(SimTime::from_secs(1));
            world.schedule_owner_close(SimTime::from_secs(3));
            world
        })
        .collect()
}

/// Construction: the struct-of-arrays batch vs a serial loop over the
/// same worlds, to completion.
fn bench_construction_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_step_construction");
    group.sample_size(10);
    for lanes in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("serial", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                for mut world in construction_worlds(lanes) {
                    while world.step(&mut ()) {}
                    black_box(world.into_outcome());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let batch = ConstructionBatch::new(construction_worlds(lanes));
                black_box(batch.run_outcomes(&mut |_, _, _| {}));
            });
        });
    }
    group.finish();
}

/// Keyless: lockstep round-robin batch vs a serial loop.
fn bench_keyless_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_step_keyless");
    group.sample_size(10);
    for lanes in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("serial", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                for mut world in keyless_worlds(lanes) {
                    while world.step(&mut ()) {}
                    black_box(world.into_outcome());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let batch = KeylessBatch::new(keyless_worlds(lanes));
                black_box(batch.run_outcomes(&mut |_, _, _| {}));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction_batch, bench_keyless_batch);
criterion_main!(benches);
