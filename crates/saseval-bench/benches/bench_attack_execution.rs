//! Benchmarks of executable attack runs (Tables VI/VII) and the nominal
//! simulations they perturb.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use attack_engine::builtin::{ad08_cases, ad20_cases, full_campaign};
use attack_engine::campaign::{run_campaign, run_campaign_parallel};
use attack_engine::executor::execute;
use saseval_types::SimTime;
use vehicle_sim::construction::{ConstructionConfig, ConstructionWorld};
use vehicle_sim::keyless::{KeylessConfig, KeylessWorld};

fn bench_nominal_worlds(c: &mut Criterion) {
    let mut group = c.benchmark_group("nominal");
    group.sample_size(20);
    group.bench_function("construction_approach", |b| {
        b.iter(|| black_box(ConstructionWorld::new(ConstructionConfig::default()).run_nominal()));
    });
    group.bench_function("keyless_open_close", |b| {
        b.iter(|| {
            let mut world = KeylessWorld::new(KeylessConfig::default());
            world.schedule_owner_open(SimTime::from_secs(1));
            world.schedule_owner_close(SimTime::from_secs(5));
            black_box(world.run_nominal())
        });
    });
    group.finish();
}

fn bench_table_vi(c: &mut Criterion) {
    let cases = ad20_cases();
    let mut group = c.benchmark_group("table_vi_ad20");
    group.sample_size(10);
    for case in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(&case.label), case, |b, case| {
            b.iter(|| black_box(execute(case)));
        });
    }
    group.finish();
}

fn bench_table_vii(c: &mut Criterion) {
    let cases = ad08_cases();
    let mut group = c.benchmark_group("table_vii_ad08");
    group.sample_size(10);
    for case in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(&case.label), case, |b, case| {
            b.iter(|| black_box(execute(case)));
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let cases = full_campaign();
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| black_box(run_campaign(&cases))));
    group.bench_function("parallel_4", |b| b.iter(|| black_box(run_campaign_parallel(&cases, 4))));
    group.finish();
}

criterion_group!(benches, bench_nominal_worlds, bench_table_vi, bench_table_vii, bench_campaign);
criterion_main!(benches);
