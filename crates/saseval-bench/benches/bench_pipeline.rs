//! Benchmarks of the SaSeVAL analysis pipeline (paper Fig. 1 and the
//! Table I–V machinery): threat-library construction, HARA statistics,
//! candidate derivation, full pipeline runs, DSL compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use saseval_core::catalog::{use_case_1, use_case_2};
use saseval_core::derive::{derive_candidates, DerivationConfig};
use saseval_core::identify_safety_concerns;
use saseval_core::pipeline::run_pipeline;
use saseval_dsl::{compile_document, parse_document};
use saseval_threat::builtin::{automotive_library, SC_CONSTRUCTION};

fn bench_threat_library(c: &mut Criterion) {
    c.bench_function("threat_library/build_automotive", |b| {
        b.iter(|| black_box(automotive_library()));
    });
    let lib = automotive_library();
    c.bench_function("threat_library/stats", |b| b.iter(|| black_box(lib.stats())));
}

fn bench_hara(c: &mut Criterion) {
    c.bench_function("hara/build_use_case_1", |b| b.iter(|| black_box(use_case_1())));
    c.bench_function("hara/build_use_case_2", |b| b.iter(|| black_box(use_case_2())));
    let uc1 = use_case_1();
    c.bench_function("hara/distribution_uc1", |b| b.iter(|| black_box(uc1.hara.distribution())));
    c.bench_function("hara/completeness_uc1", |b| b.iter(|| black_box(uc1.hara.completeness())));
}

fn bench_derivation(c: &mut Criterion) {
    let uc1 = use_case_1();
    let lib = automotive_library();
    let concerns = identify_safety_concerns(&uc1.hara);
    c.bench_function("derive/identify_concerns_uc1", |b| {
        b.iter(|| black_box(identify_safety_concerns(&uc1.hara)));
    });
    c.bench_function("derive/candidates_unfiltered", |b| {
        b.iter(|| black_box(derive_candidates(&concerns, &lib, &DerivationConfig::new())));
    });
    let filtered = DerivationConfig::new().scenario(SC_CONSTRUCTION).active_only().min_priority(3);
    c.bench_function("derive/candidates_filtered_rq2", |b| {
        b.iter(|| black_box(derive_candidates(&concerns, &lib, &filtered)));
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let lib = automotive_library();
    let uc1 = use_case_1();
    let uc2 = use_case_2();
    c.bench_function("pipeline/run_use_case_1", |b| {
        b.iter(|| black_box(run_pipeline(&uc1, &lib).expect("pipeline")));
    });
    c.bench_function("pipeline/run_use_case_2", |b| {
        b.iter(|| black_box(run_pipeline(&uc2, &lib).expect("pipeline")));
    });
}

fn bench_dsl(c: &mut Criterion) {
    let source = r#"
attack AD20 {
    description: "Attacker tries to overload the ECU by packet flooding"
    goals: SG01, SG02, SG03
    interface: OBU_RSU
    threat: TS-2.1.4
    types: "Denial of service" / "Disable"
    precondition: "Vehicle is approaching the construction side"
    measures: "Message counter for broken messages"
    success: "Shutdown of service"
    fails: "Security control identifies unwanted sender"
    comments: "Authenticated extra sender"
    execute: v2x-flood(per_tick = 40)
}
"#;
    c.bench_function("dsl/parse", |b| b.iter(|| black_box(parse_document(source).expect("parse"))));
    let document = parse_document(source).expect("parse");
    c.bench_function("dsl/compile", |b| {
        b.iter(|| black_box(compile_document(&document).expect("compile")));
    });
}

criterion_group!(
    benches,
    bench_threat_library,
    bench_hara,
    bench_derivation,
    bench_pipeline,
    bench_dsl
);
criterion_main!(benches);
