//! Benchmarks of the attack-path-guided fuzzer (§II-B testing type 2):
//! input generation, end-to-end fuzzing throughput, coverage accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_fuzz::coverage::CoverageMap;
use saseval_fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval_fuzz::model::{keyless_command_model, v2x_warning_model};
use saseval_fuzz::mutate::Mutator;
use saseval_tara::tree::{AttackTree, TreeNode};
use vehicle_sim::keyless::Command;

fn paths() -> Vec<saseval_tara::AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![TreeNode::leaf_on("replay", "BLE_PHONE"), TreeNode::leaf_on("forge", "ECU_GW")],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_mutation");
    for (name, model) in [("v2x", v2x_warning_model()), ("keyless", keyless_command_model())] {
        let mut mutator = Mutator::new(model, 1);
        group.bench_function(BenchmarkId::new("generate", name), |b| {
            b.iter(|| black_box(mutator.generate()));
        });
    }
    group.finish();
}

fn bench_fuzz_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput");
    group.sample_size(10);
    let attack_paths = paths();
    for iterations in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("decode_target", iterations),
            &iterations,
            |b, &iterations| {
                b.iter(|| {
                    let mut fuzzer = Fuzzer::new(keyless_command_model(), 7);
                    black_box(fuzzer.run(&attack_paths, iterations, |input| {
                        if Command::decode(input).is_some() {
                            TargetResponse::Accepted
                        } else {
                            TargetResponse::Rejected
                        }
                    }));
                });
            },
        );
    }
    group.finish();
}

fn bench_coverage_accounting(c: &mut Criterion) {
    let model = keyless_command_model();
    let mut mutator = Mutator::new(model.clone(), 3);
    let inputs: Vec<_> = (0..1_000).map(|_| mutator.generate()).collect();
    c.bench_function("fuzz_coverage/record_1000", |b| {
        b.iter(|| {
            let mut map = CoverageMap::new(&model, 4);
            for (i, input) in inputs.iter().enumerate() {
                map.record(i % 4, input);
            }
            black_box(map.field_coverage_percent())
        });
    });
}

criterion_group!(benches, bench_mutation, bench_fuzz_throughput, bench_coverage_accounting);
criterion_main!(benches);
