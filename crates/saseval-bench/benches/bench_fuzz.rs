//! Benchmarks of the attack-path-guided fuzzer (§II-B testing type 2):
//! input generation, end-to-end fuzzing throughput, coverage accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_fuzz::coverage::CoverageMap;
use saseval_fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval_fuzz::model::{keyless_command_model, v2x_warning_model};
use saseval_fuzz::mutate::Mutator;
use saseval_tara::tree::{AttackTree, TreeNode};
use vehicle_sim::keyless::Command;

fn paths() -> Vec<saseval_tara::AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![TreeNode::leaf_on("replay", "BLE_PHONE"), TreeNode::leaf_on("forge", "ECU_GW")],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_mutation");
    for (name, model) in [("v2x", v2x_warning_model()), ("keyless", keyless_command_model())] {
        let mut mutator = Mutator::new(model, 1);
        group.bench_function(BenchmarkId::new("generate", name), |b| {
            b.iter(|| black_box(mutator.generate()));
        });
    }
    group.finish();
}

fn bench_fuzz_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput");
    group.sample_size(10);
    let attack_paths = paths();
    for iterations in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("decode_target", iterations),
            &iterations,
            |b, &iterations| {
                b.iter(|| {
                    let mut fuzzer = Fuzzer::new(keyless_command_model(), 7);
                    black_box(fuzzer.run(&attack_paths, iterations, |input| {
                        if Command::decode(input).is_some() {
                            TargetResponse::Accepted
                        } else {
                            TargetResponse::Rejected
                        }
                    }));
                });
            },
        );
    }
    group.finish();
}

/// Sharded parallel fuzzing vs the serial loop: same 20k-input workload
/// on the keyless model at 1/2/4 shards. The `shards=1` row measures the
/// serial-equivalent path, so `shards=4 / shards=1` is the parallel
/// speedup (exported with absolute numbers by
/// `export_report` → `BENCH_fuzz.json`).
fn bench_parallel_fuzz(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_parallel");
    group.sample_size(10);
    let attack_paths = paths();
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("keyless_20k", shards), &shards, |b, &shards| {
            b.iter(|| {
                let fuzzer = Fuzzer::new(keyless_command_model(), 7);
                black_box(fuzzer.run_parallel(&attack_paths, 20_000, shards, |_| {
                    |input: &[u8]| {
                        if Command::decode(input).is_some() {
                            TargetResponse::Accepted
                        } else {
                            TargetResponse::Rejected
                        }
                    }
                }));
            });
        });
    }
    group.finish();
}

/// The allocation-free generation path: `generate_into` with a reused
/// scratch input vs the allocating `generate`.
fn bench_generate_into(c: &mut Criterion) {
    use saseval_fuzz::mutate::GeneratedInput;
    let mut group = c.benchmark_group("fuzz_mutation");
    for (name, model) in [("v2x", v2x_warning_model()), ("keyless", keyless_command_model())] {
        let mut mutator = Mutator::new(model, 1);
        let mut scratch = GeneratedInput::empty();
        group.bench_function(BenchmarkId::new("generate_into", name), |b| {
            b.iter(|| {
                mutator.generate_into(&mut scratch);
                black_box(&scratch);
            });
        });
    }
    group.finish();
}

fn bench_coverage_accounting(c: &mut Criterion) {
    let model = keyless_command_model();
    let mut mutator = Mutator::new(model.clone(), 3);
    let inputs: Vec<_> = (0..1_000).map(|_| mutator.generate()).collect();
    c.bench_function("fuzz_coverage/record_1000", |b| {
        b.iter(|| {
            let mut map = CoverageMap::new(&model, 4);
            for (i, input) in inputs.iter().enumerate() {
                map.record(i % 4, input);
            }
            black_box(map.field_coverage_percent())
        });
    });
}

criterion_group!(
    benches,
    bench_mutation,
    bench_generate_into,
    bench_fuzz_throughput,
    bench_parallel_fuzz,
    bench_coverage_accounting
);
criterion_main!(benches);
