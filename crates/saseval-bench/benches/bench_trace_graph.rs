//! Benchmarks of the whole-campaign trace-graph analyzer: graph
//! construction + fingerprinting over the built-in catalogs, the full
//! rule registry (static-only vs. with executed verdicts), and the
//! assurance-case rendering that `--trace-report` performs per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_core::catalog::{use_case_1, use_case_2};
use saseval_lint::graph::campaign_verdicts;
use saseval_lint::{
    run_lint_with_jobs, AssuranceCase, LintConfig, LintContext, TraceGraph, TraceInputs,
};
use saseval_obs::Obs;
use saseval_threat::builtin::automotive_library;

/// Executes the built-in campaign once and returns catalog-local
/// verdicts for the given use-case tag.
fn builtin_trace(tag: &str) -> TraceInputs {
    let cases = attack_engine::builtin::full_campaign();
    let results = attack_engine::execute_batch(&cases);
    TraceInputs { verdicts: campaign_verdicts(&results, tag), evidence: Vec::new() }
}

fn bench_graph_build(c: &mut Criterion) {
    let library = automotive_library();
    let mut group = c.benchmark_group("trace_graph_build");
    for (tag, catalog) in [("UC1", use_case_1()), ("UC2", use_case_2())] {
        let trace = builtin_trace(tag);
        let ctx = LintContext::for_catalog(&library, &catalog).with_trace(&trace);
        group.bench_function(BenchmarkId::new("build_fingerprint", tag), |b| {
            b.iter(|| TraceGraph::build(black_box(&ctx)).fingerprint());
        });
    }
    group.finish();
}

fn bench_full_registry(c: &mut Criterion) {
    let library = automotive_library();
    let catalog = use_case_2();
    let trace = builtin_trace("UC2");
    let obs = Obs::noop();
    let config = LintConfig::new();
    let mut group = c.benchmark_group("trace_lint_registry");

    let static_ctx = LintContext::for_catalog(&library, &catalog);
    group.bench_function("static_only", |b| {
        b.iter(|| run_lint_with_jobs(black_box(&static_ctx), &config, &obs, 1));
    });

    let traced_ctx = static_ctx.with_trace(&trace);
    group.bench_function("with_verdicts", |b| {
        b.iter(|| run_lint_with_jobs(black_box(&traced_ctx), &config, &obs, 1));
    });
    group.bench_function("with_verdicts_jobs4", |b| {
        b.iter(|| run_lint_with_jobs(black_box(&traced_ctx), &config, &obs, 4));
    });
    group.finish();
}

fn bench_assurance_render(c: &mut Criterion) {
    let library = automotive_library();
    let catalog = use_case_2();
    let trace = builtin_trace("UC2");
    let ctx = LintContext::for_catalog(&library, &catalog).with_trace(&trace);
    let obs = Obs::noop();
    let report = run_lint_with_jobs(&ctx, &LintConfig::new(), &obs, 1);
    let mut group = c.benchmark_group("trace_assurance_case");
    group.bench_function("build", |b| {
        b.iter(|| AssuranceCase::build(black_box(&catalog.name), &ctx, &report));
    });
    let case = AssuranceCase::build(&catalog.name, &ctx, &report);
    group.bench_function("to_json", |b| b.iter(|| black_box(&case).to_json()));
    group.bench_function("to_html", |b| b.iter(|| black_box(&case).to_html()));
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_full_registry, bench_assurance_render);
criterion_main!(benches);
