//! Benchmarks of the crash-triage layer: ddmin minimization cost per
//! model/budget and the content-addressing hash behind the regression
//! corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_bench::triage_bench::seeded_bug_oracle;
use saseval_fuzz::corpus::content_hash;
use saseval_fuzz::fuzzer::TargetResponse;
use saseval_fuzz::minimize::{minimize, MinimizeConfig};
use saseval_obs::Obs;

/// A crashing v2x input with trailing junk the minimizer must strip:
/// `[2, 0]` plus `extra` noise bytes.
fn v2x_crash_input(extra: usize) -> Vec<u8> {
    let mut input = vec![2u8, 0];
    input.extend((0..extra).map(|i| (i % 251) as u8 | 1));
    input
}

/// A crashing keyless frame (33 bytes, cmd 2, zero timestamp) with every
/// other byte non-zero, so zero-simplification has full work to do.
fn keyless_crash_input() -> Vec<u8> {
    let mut input: Vec<u8> = (0..33u8).map(|i| i | 1).collect();
    input[0] = 2;
    input[9..17].fill(0);
    input
}

fn bench_minimize_models(c: &mut Criterion) {
    let obs = Obs::noop();
    let mut group = c.benchmark_group("triage_minimize");
    for (name, input) in [("v2x_64b", v2x_crash_input(62)), ("keyless_33b", keyless_crash_input())]
    {
        let model = if name.starts_with("v2x") { "v2x-warning" } else { "keyless-command" };
        let oracle = seeded_bug_oracle(model);
        let config = MinimizeConfig::default();
        group.bench_function(BenchmarkId::new("ddmin", name), |b| {
            b.iter(|| {
                black_box(minimize(
                    &input,
                    |bytes| oracle(bytes) == TargetResponse::Crash,
                    &config,
                    &obs,
                ))
            });
        });
    }
    group.finish();
}

fn bench_minimize_budgets(c: &mut Criterion) {
    let obs = Obs::noop();
    let mut group = c.benchmark_group("triage_minimize");
    let input = v2x_crash_input(254);
    let oracle = seeded_bug_oracle("v2x-warning");
    for budget in [256usize, 4_096] {
        let config = MinimizeConfig { max_steps: budget };
        group.bench_with_input(BenchmarkId::new("budget_256b_input", budget), &config, |b, cfg| {
            b.iter(|| {
                black_box(minimize(
                    &input,
                    |bytes| oracle(bytes) == TargetResponse::Crash,
                    cfg,
                    &obs,
                ))
            });
        });
    }
    group.finish();
}

fn bench_content_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("triage_corpus");
    for size in [33usize, 4_096] {
        let bytes: Vec<u8> = (0..size).map(|i| i as u8).collect();
        group.bench_with_input(BenchmarkId::new("content_hash", size), &bytes, |b, bytes| {
            b.iter(|| black_box(content_hash(bytes)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimize_models, bench_minimize_budgets, bench_content_hash);
criterion_main!(benches);
