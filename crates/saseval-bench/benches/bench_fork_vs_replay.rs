//! Benchmarks of copy-on-write warm-prefix forking: answering a fuzz
//! input by replaying the world from `t = 0` vs forking from a frozen
//! [`WorldSnapshot`](vehicle_sim::WorldSnapshot) at attack-activation
//! time (the `bench_fork_vs_replay` acceptance gate: forking must be
//! several times faster for warm-prefix inputs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use saseval_fuzz::fuzzer::FuzzTarget;
use saseval_fuzz::sim_target::{SimOracle, FUZZ_SENDER};
use saseval_types::{Ftti, SimTime};
use vehicle_sim::keyless::{KeylessConfig, KeylessWorld};
use vehicle_sim::ControlSelection;

fn config(warm_prefix_ms: u64) -> KeylessConfig {
    KeylessConfig {
        controls: ControlSelection::all(),
        horizon: Ftti::from_millis(warm_prefix_ms + 500),
        ..Default::default()
    }
}

const INPUT: &[u8] = &[7u8; 33];

/// One input answered by re-simulating the whole prefix vs forking the
/// frozen snapshot, at growing prefix lengths — the replay cost grows
/// linearly with the prefix, the fork cost stays flat.
fn bench_fork_vs_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_vs_replay");
    group.sample_size(10);
    for warm_prefix_ms in [1_000u64, 5_000, 20_000] {
        let attack_at = SimTime::from_millis(warm_prefix_ms);
        group.bench_with_input(
            BenchmarkId::new("replay_from_zero", warm_prefix_ms),
            &warm_prefix_ms,
            |b, &warm_prefix_ms| {
                b.iter(|| {
                    let mut world = KeylessWorld::new(config(warm_prefix_ms));
                    world.run_until(attack_at, &mut ());
                    world.send_ble(FUZZ_SENDER, INPUT.to_vec());
                    while world.step(&mut ()) {}
                    black_box(world.into_outcome());
                });
            },
        );
        let mut oracle = SimOracle::keyless(config(warm_prefix_ms), attack_at);
        group.bench_with_input(
            BenchmarkId::new("fork_from_snapshot", warm_prefix_ms),
            &warm_prefix_ms,
            |b, _| {
                b.iter(|| black_box(oracle.respond(INPUT)));
            },
        );
    }
    group.finish();
}

/// Batched forks: a whole fuzzer batch stepped in lockstep vs the same
/// forks answered one by one.
fn bench_batched_forks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_batched");
    group.sample_size(10);
    let attack_at = SimTime::from_millis(1_000);
    let mut oracle = SimOracle::keyless(config(1_000), attack_at);
    let inputs: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; 33]).collect();
    group.bench_function(BenchmarkId::new("sequential", inputs.len()), |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(oracle.respond(input));
            }
        });
    });
    group.bench_function(BenchmarkId::new("lockstep", inputs.len()), |b| {
        let mut out = Vec::new();
        b.iter(|| {
            oracle.respond_batch(&inputs, &mut out);
            black_box(out.len());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fork_vs_replay, bench_batched_forks);
criterion_main!(benches);
