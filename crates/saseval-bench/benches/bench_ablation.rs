//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! control subsets per attack type, flooding-rate sweep, and the ASIL
//! test-effort scaling of RQ2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use attack_engine::builtin::ablation_grid;
use attack_engine::executor::{execute, AttackKind, TestCase};
use saseval_core::catalog::use_case_1;
use saseval_core::derive::{derive_candidates, DerivationConfig};
use saseval_core::identify_safety_concerns;
use saseval_threat::builtin::automotive_library;
use vehicle_sim::config::ControlSelection;

fn bench_ablation_controls(c: &mut Criterion) {
    let grid = ablation_grid();
    let mut group = c.benchmark_group("ablation_controls");
    group.sample_size(10);
    for case in grid.iter().filter(|case| case.attack_id == "AD20") {
        group.bench_with_input(BenchmarkId::new("AD20", &case.label), case, |b, case| {
            b.iter(|| black_box(execute(case)));
        });
    }
    group.finish();
}

fn bench_ablation_floodrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_floodrate");
    group.sample_size(10);
    for per_tick in [1usize, 10, 40, 80] {
        let case = TestCase {
            attack_id: "AD20".into(),
            label: format!("rate-{per_tick}"),
            kind: AttackKind::V2xFlood { per_tick },
            controls: ControlSelection::all(),
            seed: 42,
        };
        group.bench_with_input(BenchmarkId::from_parameter(per_tick), &case, |b, case| {
            b.iter(|| black_box(execute(case)));
        });
    }
    group.finish();
}

fn bench_ablation_asil_effort(c: &mut Criterion) {
    // RQ2: candidate derivation effort scales with the min-priority
    // filter — the lever that keeps the test space tractable.
    let uc1 = use_case_1();
    let lib = automotive_library();
    let concerns = identify_safety_concerns(&uc1.hara);
    let mut group = c.benchmark_group("ablation_rq2_priority");
    for min_priority in [0u8, 2, 3, 4] {
        let config = DerivationConfig::new().min_priority(min_priority);
        group.bench_with_input(BenchmarkId::from_parameter(min_priority), &config, |b, config| {
            b.iter(|| black_box(derive_candidates(&concerns, &lib, config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_controls,
    bench_ablation_floodrate,
    bench_ablation_asil_effort
);
criterion_main!(benches);
