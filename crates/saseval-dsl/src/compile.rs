//! Compilation of parsed DSL documents into validated attack descriptions
//! and executable test-case bindings.

use attack_engine::attacks::KeyGuessStrategy;
use attack_engine::executor::AttackKind;
use saseval_core::AttackDescription;
use saseval_types::{AttackType, AttackerProfile, ThreatType};

use crate::ast::{AttackDecl, Document, ExecSpec};
use crate::error::DslError;

/// A compiled attack: the validated description plus, when the
/// declaration carried an `execute:` clause, the executable binding.
#[derive(Debug, Clone)]
pub struct CompiledAttack {
    /// The validated attack description (paper §III-C structure).
    pub description: AttackDescription,
    /// The executable attack kind, if bound.
    pub executable: Option<AttackKind>,
}

fn compile_exec(spec: &ExecSpec) -> Result<AttackKind, DslError> {
    let fail = |msg: String| DslError::new(0, 0, msg);
    match spec.name.as_str() {
        "v2x-flood" => {
            Ok(AttackKind::V2xFlood { per_tick: spec.int_arg("per_tick").unwrap_or(40) as usize })
        }
        "v2x-fake-limit" => Ok(AttackKind::V2xFakeLimit {
            limit: spec
                .int_arg("limit")
                .ok_or_else(|| fail("v2x-fake-limit requires limit".to_owned()))?
                as u8,
        }),
        "v2x-insider-limit" => Ok(AttackKind::V2xInsiderLimit {
            limit: spec
                .int_arg("limit")
                .ok_or_else(|| fail("v2x-insider-limit requires limit".to_owned()))?
                as u8,
        }),
        "v2x-replay-warning" => Ok(AttackKind::V2xReplayWarning {
            staleness_s: spec.int_arg("staleness_s").unwrap_or(30),
        }),
        "v2x-jam" => Ok(AttackKind::V2xJam),
        "v2x-delay" => {
            Ok(AttackKind::V2xDelay { release_s: spec.int_arg("release_s").unwrap_or(40) })
        }
        "key-spoof" => {
            let strategy = match spec.word_arg("strategy") {
                Some("random") | None => KeyGuessStrategy::Random,
                Some("increment") | Some("incrementing") => KeyGuessStrategy::Incrementing {
                    base: spec
                        .int_arg("base")
                        .ok_or_else(|| fail("incrementing strategy requires base".to_owned()))?,
                },
                Some(other) => return Err(fail(format!("unknown key-spoof strategy `{other}`"))),
            };
            Ok(AttackKind::KeySpoof {
                strategy,
                budget: spec.int_arg("budget").unwrap_or(1_000) as u32,
            })
        }
        "ble-replay-open" => Ok(AttackKind::BleReplayOpen),
        "ble-can-flood" => Ok(AttackKind::BleCanFlood {
            per_tick: spec.int_arg("per_tick").unwrap_or(30) as usize,
        }),
        "ble-jam" => Ok(AttackKind::BleJamming),
        "ble-spoof-close" => Ok(AttackKind::BleSpoofClose),
        "allowlist-tamper" => {
            Ok(AttackKind::AllowlistTamper { insider: spec.word_arg("insider") == Some("true") })
        }
        "can-stub-inject" => Ok(AttackKind::CanStubInject),
        other => Err(fail(format!("unknown executable attack `{other}`"))),
    }
}

fn compile_attack(decl: &AttackDecl) -> Result<CompiledAttack, DslError> {
    let fail = |msg: String| DslError::new(0, 0, format!("attack {}: {msg}", decl.id));

    let threat_type: ThreatType =
        decl.threat_type.parse().map_err(|e| fail(format!("invalid threat type: {e}")))?;
    let attack_type: AttackType =
        decl.attack_type.parse().map_err(|e| fail(format!("invalid attack type: {e}")))?;

    let mut builder = AttackDescription::builder(&decl.id, &decl.description)
        .threat_scenario(&decl.threat)
        .threat_type(threat_type)
        .attack_type(attack_type)
        .precondition(&decl.precondition)
        .expected_measures(&decl.measures)
        .attack_success(&decl.success)
        .attack_fails(&decl.fails)
        .impl_comments(&decl.comments);
    for goal in &decl.goals {
        builder = builder.safety_goal(goal);
    }
    if let Some(interface) = &decl.interface {
        builder = builder.interface(interface);
    }
    if let Some(attacker) = &decl.attacker {
        let profile: AttackerProfile =
            attacker.parse().map_err(|e| fail(format!("invalid attacker: {e}")))?;
        builder = builder.attacker(profile);
    }
    if decl.privacy {
        builder = builder.privacy_relevant();
    }
    let description = builder.build().map_err(|e| fail(e.to_string()))?;
    let executable = decl
        .execute
        .as_ref()
        .map(compile_exec)
        .transpose()
        .map_err(|e| fail(e.message().to_owned()))?;
    Ok(CompiledAttack { description, executable })
}

/// Compiles a parsed document into validated attack descriptions and
/// executable bindings.
///
/// # Errors
///
/// Returns a [`DslError`] naming the offending attack for the first
/// semantic problem: unknown threat/attack type names, attack types
/// outside the declared threat type's Table IV row, missing RQ3 fields,
/// malformed IDs, or unknown `execute:` bindings.
pub fn compile_document(document: &Document) -> Result<Vec<CompiledAttack>, DslError> {
    document.attacks.iter().map(compile_attack).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn compile_src(src: &str) -> Result<Vec<CompiledAttack>, DslError> {
        compile_document(&parse_document(src)?)
    }

    const VALID: &str = r#"
attack AD20 {
    description: "Attacker tries to overload the ECU by packet flooding"
    goals: SG01, SG02, SG03
    interface: OBU_RSU
    threat: TS-2.1.4
    types: "Denial of service" / "Disable"
    precondition: "Vehicle is approaching the construction side"
    measures: "Message counter for broken messages"
    success: "Shutdown of service"
    fails: "Security control identifies unwanted sender"
    comments: "Authenticated extra sender"
    attacker: "remote attacker"
    execute: v2x-flood(per_tick = 40)
}
"#;

    #[test]
    fn compiles_valid_attack() {
        let compiled = compile_src(VALID).unwrap();
        let ad = &compiled[0].description;
        assert_eq!(ad.id().as_str(), "AD20");
        assert_eq!(ad.threat_type(), ThreatType::DenialOfService);
        assert_eq!(ad.attack_type(), AttackType::Disable);
        assert_eq!(ad.attacker(), Some(AttackerProfile::RemoteAttacker));
        assert!(matches!(compiled[0].executable, Some(AttackKind::V2xFlood { per_tick: 40 })));
    }

    #[test]
    fn rejects_type_mismatch() {
        // "Replay" is not in the Denial-of-service row of Table IV.
        let src = VALID.replace("\"Disable\"", "\"Replay\"");
        let err = compile_src(&src).unwrap_err();
        assert!(err.message().contains("AD20"), "{err}");
    }

    #[test]
    fn rejects_unknown_threat_type() {
        let src = VALID.replace("\"Denial of service\"", "\"Quantum\"");
        let err = compile_src(&src).unwrap_err();
        assert!(err.message().contains("invalid threat type"));
    }

    #[test]
    fn rejects_missing_success() {
        let src = VALID.replace("success: \"Shutdown of service\"", "success: \"\"");
        let err = compile_src(&src).unwrap_err();
        assert!(err.message().contains("success"), "{err}");
    }

    #[test]
    fn rejects_unknown_executable() {
        let src = VALID.replace("v2x-flood(per_tick = 40)", "teleport");
        let err = compile_src(&src).unwrap_err();
        assert!(err.message().contains("unknown executable attack"));
    }

    #[test]
    fn key_spoof_strategies() {
        let src = r#"attack A { description: "d" goals: SG01 threat: TS-3.1.4
            types: "Spoofing" / "Spoofing" precondition: "p" success: "s" fails: "f"
            execute: key-spoof(strategy = incrementing, base = 1000, budget = 50) }"#;
        let compiled = compile_src(src).unwrap();
        assert!(matches!(
            compiled[0].executable,
            Some(AttackKind::KeySpoof {
                strategy: KeyGuessStrategy::Incrementing { base: 1000 },
                budget: 50
            })
        ));
        let err = compile_src(&src.replace("incrementing, base = 1000,", "psychic,")).unwrap_err();
        assert!(err.message().contains("unknown key-spoof strategy"));
    }

    #[test]
    fn privacy_attack_without_goals_compiles() {
        let src = r#"attack AD28 { description: "profiles" threat: TS-BLE-TRACK
            types: "Information disclosure" / "Eavesdropping"
            precondition: "p" success: "s" fails: "f" privacy }"#;
        let compiled = compile_src(src).unwrap();
        assert!(compiled[0].description.is_privacy_relevant());
        assert!(compiled[0].executable.is_none());
    }
}
