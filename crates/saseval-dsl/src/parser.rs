//! Recursive-descent parser for the attack-description DSL.
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! document   := attack*
//! attack     := "attack" IDENT "{" field* "}"
//! field      := "description" ":" STR
//!             | "goals" ":" IDENT ("," IDENT)*
//!             | "interface" ":" IDENT
//!             | "threat" ":" IDENT
//!             | "types" ":" STR "/" STR
//!             | "precondition" ":" STR
//!             | "measures" ":" STR
//!             | "success" ":" STR
//!             | "fails" ":" STR
//!             | "comments" ":" STR
//!             | "attacker" ":" STR
//!             | "privacy"
//!             | "execute" ":" IDENT [ "(" arg ("," arg)* ")" ]
//! arg        := IDENT "=" (INT | IDENT)
//! ```

use crate::ast::{AttackDecl, AttackSpans, Document, ExecArg, ExecSpec};
use crate::error::DslError;
use crate::token::{lex, Span, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_span(&self) -> Span {
        self.peek().map(Token::span).unwrap_or_default()
    }

    fn next(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn eof_error(&self, expected: &str) -> DslError {
        let (line, column) = self.tokens.last().map(|t| (t.line, t.column)).unwrap_or((1, 1));
        DslError::new(line, column, format!("unexpected end of input, expected {expected}"))
    }

    fn expect_ident(&mut self, expected: &str) -> Result<String, DslError> {
        match self.next() {
            Some(Token { kind: TokenKind::Ident(s), .. }) => Ok(s),
            Some(tok) => Err(DslError::new(
                tok.line,
                tok.column,
                format!("expected {expected}, found {}", tok.kind.describe()),
            )),
            None => Err(self.eof_error(expected)),
        }
    }

    fn expect_string(&mut self, field: &str) -> Result<String, DslError> {
        match self.next() {
            Some(Token { kind: TokenKind::Str(s), .. }) => Ok(s),
            Some(tok) => Err(DslError::new(
                tok.line,
                tok.column,
                format!("field `{field}` expects a string literal, found {}", tok.kind.describe()),
            )),
            None => Err(self.eof_error("string literal")),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), DslError> {
        match self.next() {
            Some(tok) if tok.kind == *kind => Ok(()),
            Some(tok) => Err(DslError::new(
                tok.line,
                tok.column,
                format!("expected {}, found {}", kind.describe(), tok.kind.describe()),
            )),
            None => Err(self.eof_error(&kind.describe())),
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().is_some_and(|t| t.kind == *kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_exec(&mut self) -> Result<(ExecSpec, Vec<Span>), DslError> {
        let name = self.expect_ident("executable attack name")?;
        let mut args = Vec::new();
        let mut arg_spans = Vec::new();
        if self.eat_kind(&TokenKind::LParen) && !self.eat_kind(&TokenKind::RParen) {
            loop {
                arg_spans.push(self.peek_span());
                let arg_name = self.expect_ident("argument name")?;
                self.expect_kind(&TokenKind::Eq)?;
                let value = match self.next() {
                    Some(Token { kind: TokenKind::Int(n), .. }) => ExecArg::Int(n),
                    Some(Token { kind: TokenKind::Ident(w), .. }) => ExecArg::Word(w),
                    Some(tok) => {
                        return Err(DslError::new(
                            tok.line,
                            tok.column,
                            format!(
                                "argument value must be an integer or word, found {}",
                                tok.kind.describe()
                            ),
                        ))
                    }
                    None => return Err(self.eof_error("argument value")),
                };
                args.push((arg_name, value));
                if self.eat_kind(&TokenKind::RParen) {
                    break;
                }
                self.expect_kind(&TokenKind::Comma)?;
            }
        }
        Ok((ExecSpec { name, args }, arg_spans))
    }

    fn parse_attack(&mut self) -> Result<AttackDecl, DslError> {
        let decl_span = self.peek_span();
        let id = self.expect_ident("attack ID")?;
        self.expect_kind(&TokenKind::LBrace)?;

        let mut decl = AttackDecl {
            id,
            description: String::new(),
            goals: Vec::new(),
            interface: None,
            threat: String::new(),
            threat_type: String::new(),
            attack_type: String::new(),
            precondition: String::new(),
            measures: String::new(),
            success: String::new(),
            fails: String::new(),
            comments: String::new(),
            attacker: None,
            privacy: false,
            execute: None,
            spans: AttackSpans { decl: decl_span, ..AttackSpans::default() },
        };

        loop {
            let tok = self.next().ok_or_else(|| self.eof_error("field or `}`"))?;
            let field_span = tok.span();
            let field = match tok.kind {
                TokenKind::RBrace => break,
                TokenKind::Ident(name) => name,
                other => {
                    return Err(DslError::new(
                        tok.line,
                        tok.column,
                        format!("expected a field name or `}}`, found {}", other.describe()),
                    ))
                }
            };
            if field == "privacy" {
                decl.privacy = true;
                continue;
            }
            self.expect_kind(&TokenKind::Colon)?;
            match field.as_str() {
                "description" => decl.description = self.expect_string("description")?,
                "goals" => {
                    decl.goals.push(self.expect_ident("safety-goal ID")?);
                    while self.eat_kind(&TokenKind::Comma) {
                        decl.goals.push(self.expect_ident("safety-goal ID")?);
                    }
                }
                "interface" => decl.interface = Some(self.expect_ident("interface ID")?),
                "threat" => decl.threat = self.expect_ident("threat-scenario ID")?,
                "types" => {
                    decl.threat_type = self.expect_string("types")?;
                    self.expect_kind(&TokenKind::Slash)?;
                    decl.attack_type = self.expect_string("types")?;
                }
                "precondition" => {
                    decl.spans.precondition = field_span;
                    decl.precondition = self.expect_string("precondition")?;
                }
                "measures" => decl.measures = self.expect_string("measures")?,
                "success" => decl.success = self.expect_string("success")?,
                "fails" => decl.fails = self.expect_string("fails")?,
                "comments" => decl.comments = self.expect_string("comments")?,
                "attacker" => decl.attacker = Some(self.expect_string("attacker")?),
                "execute" => {
                    decl.spans.execute = field_span;
                    let (spec, arg_spans) = self.parse_exec()?;
                    decl.execute = Some(spec);
                    decl.spans.exec_args = arg_spans;
                }
                unknown => {
                    return Err(DslError::new(
                        tok.line,
                        tok.column,
                        format!("unknown field `{unknown}`"),
                    ))
                }
            }
        }
        Ok(decl)
    }

    fn parse_document(&mut self) -> Result<Document, DslError> {
        let mut document = Document::default();
        while let Some(tok) = self.next() {
            match &tok.kind {
                TokenKind::Ident(word) if word == "attack" => {
                    document.attacks.push(self.parse_attack()?);
                }
                other => {
                    return Err(DslError::new(
                        tok.line,
                        tok.column,
                        format!("expected `attack`, found {}", other.describe()),
                    ))
                }
            }
        }
        Ok(document)
    }
}

/// Parses DSL source into a [`Document`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`DslError`], with its source
/// position.
pub fn parse_document(source: &str) -> Result<Document, DslError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.parse_document()
}

#[cfg(test)]
mod tests {
    use super::*;

    const AD08: &str = r#"
attack AD08 {
    description: "The attacker uses modified keys to gain access to the vehicle"
    goals: SG01
    interface: ECU_GW
    threat: TS-3.1.4
    types: "Spoofing" / "Spoofing"
    precondition: "Vehicle is closed. Attacker has an authenticated communication link"
    measures: "Check received vehicles electronic ID with list of allowed IDs"
    success: "Open the vehicle"
    fails: "Opening is rejected"
    comments: "a) Randomly replace IDs of keys and b) test against increasing IDs"
    attacker: "thief"
    execute: key-spoof(strategy = random, budget = 1000)
}
"#;

    #[test]
    fn parses_table_vii_attack() {
        let doc = parse_document(AD08).unwrap();
        assert_eq!(doc.attacks.len(), 1);
        let ad = &doc.attacks[0];
        assert_eq!(ad.id, "AD08");
        assert_eq!(ad.goals, ["SG01"]);
        assert_eq!(ad.interface.as_deref(), Some("ECU_GW"));
        assert_eq!(ad.threat, "TS-3.1.4");
        assert_eq!(ad.threat_type, "Spoofing");
        assert_eq!(ad.attack_type, "Spoofing");
        assert_eq!(ad.attacker.as_deref(), Some("thief"));
        assert!(!ad.privacy);
        let exec = ad.execute.as_ref().unwrap();
        assert_eq!(exec.name, "key-spoof");
        assert_eq!(exec.word_arg("strategy"), Some("random"));
        assert_eq!(exec.int_arg("budget"), Some(1000));
    }

    #[test]
    fn parses_multiple_attacks_and_privacy_flag() {
        let src = r#"
attack A1 { description: "d" goals: SG01 threat: TS-1 types: "Spoofing" / "Spoofing"
            precondition: "p" success: "s" fails: "f" }
attack A2 { description: "d" threat: TS-2 types: "Information disclosure" / "Listen"
            precondition: "p" success: "s" fails: "f" privacy }
"#;
        let doc = parse_document(src).unwrap();
        assert_eq!(doc.attacks.len(), 2);
        assert!(!doc.attacks[0].privacy);
        assert!(doc.attacks[1].privacy);
        assert!(doc.attacks[1].goals.is_empty());
    }

    #[test]
    fn exec_without_args() {
        let src = r#"attack A { description: "d" goals: G threat: T
            types: "Denial of service" / "Jamming"
            precondition: "p" success: "s" fails: "f" execute: v2x-jam }"#;
        let doc = parse_document(src).unwrap();
        assert_eq!(doc.attacks[0].execute.as_ref().unwrap().name, "v2x-jam");
        assert!(doc.attacks[0].execute.as_ref().unwrap().args.is_empty());
    }

    #[test]
    fn spans_recorded_for_lintable_positions() {
        let doc = parse_document(AD08).unwrap();
        let spans = &doc.attacks[0].spans;
        // `attack AD08 {` starts on line 2; the ID is the second token.
        assert_eq!((spans.decl.line, spans.decl.column), (2, 8));
        assert_eq!(spans.precondition.line, 8);
        assert_eq!(spans.execute.line, 14);
        assert_eq!(spans.exec_args.len(), 2);
        assert!(spans.exec_args.iter().all(|s| s.line == spans.execute.line));
        assert!(spans.exec_args[0].column < spans.exec_args[1].column);
    }

    #[test]
    fn programmatic_decls_have_unknown_spans() {
        let doc = parse_document("attack A { description: \"d\" }").unwrap();
        assert!(!doc.attacks[0].spans.precondition.is_known());
        assert!(!doc.attacks[0].spans.execute.is_known());
        assert!(doc.attacks[0].spans.exec_args.is_empty());
    }

    #[test]
    fn error_on_unknown_field() {
        let err = parse_document("attack A { bogus: \"x\" }").unwrap_err();
        assert!(err.message().contains("unknown field"), "{err}");
    }

    #[test]
    fn error_on_missing_brace() {
        let err = parse_document("attack A description").unwrap_err();
        assert!(err.message().contains("`{`"), "{err}");
    }

    #[test]
    fn error_on_wrong_value_type() {
        let err = parse_document("attack A { description: SG01 }").unwrap_err();
        assert!(err.message().contains("string literal"), "{err}");
    }

    #[test]
    fn error_positions_point_into_source() {
        let err = parse_document("attack A {\n  wrong: \"x\"\n}").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn error_on_top_level_garbage() {
        let err = parse_document("defend A {}").unwrap_err();
        assert!(err.message().contains("expected `attack`"));
    }

    #[test]
    fn error_on_eof_inside_block() {
        let err = parse_document("attack A { description: \"d\"").unwrap_err();
        assert!(err.message().contains("unexpected end of input"));
    }
}
