//! Error type for the DSL.

use std::fmt;

/// Error produced while lexing, parsing or compiling DSL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    line: u32,
    column: u32,
    message: String,
}

impl DslError {
    /// Creates an error anchored at a source position (1-based).
    pub fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        DslError { line, column, message: message.into() }
    }

    /// The 1-based source line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The 1-based source column.
    pub fn column(&self) -> u32 {
        self.column
    }

    /// The diagnostic message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_position() {
        let e = DslError::new(3, 14, "unexpected token");
        assert_eq!(e.to_string(), "3:14: unexpected token");
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 14);
    }
}
