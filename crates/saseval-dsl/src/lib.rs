//! The SaSeVAL attack-description DSL.
//!
//! The paper's conclusion (§V) announces "a first version of a domain
//! specific language (DSL). It encodes the attacks such that it can be
//! automatically translated to test cases." This crate is that DSL:
//!
//! * a textual syntax mirroring the attack-description structure of
//!   Tables VI/VII (description, safety goals, interface, threat link,
//!   types, precondition, measures, success/fail criteria, comments),
//! * a lexer ([`token`]) and recursive-descent parser ([`parser`]) with
//!   line/column diagnostics,
//! * a compiler ([`compile`]) producing validated
//!   [`AttackDescription`](saseval_core::AttackDescription)s and — when
//!   the declaration carries an `execute:` clause — executable
//!   [`AttackKind`](attack_engine::executor::AttackKind) bindings for the
//!   attack engine,
//! * a pretty-printer ([`pretty`]) whose output round-trips through the
//!   parser (property-tested).
//!
//! # Example
//!
//! ```
//! use saseval_dsl::{compile_document, parse_document};
//!
//! let source = r#"
//! // Table VI, AD20.
//! attack AD20 {
//!     description: "Attacker tries to overload the ECU by packet flooding"
//!     goals: SG01, SG02, SG03
//!     interface: OBU_RSU
//!     threat: TS-2.1.4
//!     types: "Denial of service" / "Disable"
//!     precondition: "Vehicle is approaching the construction side"
//!     measures: "Message counter for broken messages"
//!     success: "Shutdown of service"
//!     fails: "Security control identifies unwanted sender"
//!     comments: "Authenticated extra sender with high message frequency"
//!     execute: v2x-flood(per_tick = 40)
//! }
//! "#;
//!
//! let document = parse_document(source)?;
//! let compiled = compile_document(&document)?;
//! assert_eq!(compiled.len(), 1);
//! assert_eq!(compiled[0].description.id().as_str(), "AD20");
//! assert!(compiled[0].executable.is_some());
//! # Ok::<(), saseval_dsl::DslError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
mod error;
pub mod parser;
pub mod pretty;
pub mod token;

pub use compile::{compile_document, CompiledAttack};
pub use error::DslError;
pub use parser::parse_document;
pub use pretty::print_document;
