//! Pretty-printer: renders documents back to DSL source.
//!
//! `parse_document(print_document(&doc))` reproduces `doc` exactly — the
//! round-trip is property-tested in the workspace integration tests.

use std::fmt::Write as _;

use crate::ast::{AttackDecl, Document, ExecArg};

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn print_attack(out: &mut String, decl: &AttackDecl) {
    writeln!(out, "attack {} {{", decl.id).expect("string write");
    writeln!(out, "    description: \"{}\"", escape(&decl.description)).expect("string write");
    if !decl.goals.is_empty() {
        writeln!(out, "    goals: {}", decl.goals.join(", ")).expect("string write");
    }
    if let Some(interface) = &decl.interface {
        writeln!(out, "    interface: {interface}").expect("string write");
    }
    writeln!(out, "    threat: {}", decl.threat).expect("string write");
    writeln!(
        out,
        "    types: \"{}\" / \"{}\"",
        escape(&decl.threat_type),
        escape(&decl.attack_type)
    )
    .expect("string write");
    writeln!(out, "    precondition: \"{}\"", escape(&decl.precondition)).expect("string write");
    writeln!(out, "    measures: \"{}\"", escape(&decl.measures)).expect("string write");
    writeln!(out, "    success: \"{}\"", escape(&decl.success)).expect("string write");
    writeln!(out, "    fails: \"{}\"", escape(&decl.fails)).expect("string write");
    writeln!(out, "    comments: \"{}\"", escape(&decl.comments)).expect("string write");
    if let Some(attacker) = &decl.attacker {
        writeln!(out, "    attacker: \"{}\"", escape(attacker)).expect("string write");
    }
    if decl.privacy {
        writeln!(out, "    privacy").expect("string write");
    }
    if let Some(exec) = &decl.execute {
        let args = exec
            .args
            .iter()
            .map(|(name, value)| match value {
                ExecArg::Int(n) => format!("{name} = {n}"),
                ExecArg::Word(w) => format!("{name} = {w}"),
            })
            .collect::<Vec<_>>()
            .join(", ");
        if args.is_empty() {
            writeln!(out, "    execute: {}", exec.name).expect("string write");
        } else {
            writeln!(out, "    execute: {}({args})", exec.name).expect("string write");
        }
    }
    writeln!(out, "}}").expect("string write");
}

/// Renders a document to DSL source.
pub fn print_document(document: &Document) -> String {
    let mut out = String::new();
    for (i, attack) in document.attacks.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_attack(&mut out, attack);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AttackSpans, ExecSpec};
    use crate::parser::parse_document;

    fn sample() -> Document {
        Document {
            attacks: vec![AttackDecl {
                id: "AD08".into(),
                description: "The attacker uses \"modified\" keys".into(),
                goals: vec!["SG01".into()],
                interface: Some("ECU_GW".into()),
                threat: "TS-3.1.4".into(),
                threat_type: "Spoofing".into(),
                attack_type: "Spoofing".into(),
                precondition: "Vehicle is closed".into(),
                measures: "Allow-list check".into(),
                success: "Open the vehicle".into(),
                fails: "Opening is rejected".into(),
                comments: "increment IDs".into(),
                attacker: Some("thief".into()),
                privacy: false,
                execute: Some(ExecSpec {
                    name: "key-spoof".into(),
                    args: vec![
                        ("strategy".into(), ExecArg::Word("random".into())),
                        ("budget".into(), ExecArg::Int(100)),
                    ],
                }),
                spans: AttackSpans::default(),
            }],
        }
    }

    #[test]
    fn round_trip_sample() {
        let doc = sample();
        let printed = print_document(&doc);
        let reparsed = parse_document(&printed).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let mut doc = sample();
        doc.attacks[0].description = "line1\nline2 \\ \"q\"".into();
        let reparsed = parse_document(&print_document(&doc)).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn tab_and_cr_escaped_not_raw() {
        let mut doc = sample();
        doc.attacks[0].description = "col1\tcol2\r\nrow2".into();
        let printed = print_document(&doc);
        let description_line = printed.lines().nth(1).unwrap();
        assert!(description_line.contains("col1\\tcol2\\r\\nrow2"), "{description_line}");
        assert_eq!(parse_document(&printed).unwrap(), doc);
    }

    #[test]
    fn pretty_is_a_fixed_point() {
        // pretty → parse → pretty must be byte-identical, including for
        // strings full of characters the printer has to escape.
        let mut doc = sample();
        doc.attacks[0].description = "a \"b\" \\ c\nd\te\rf".into();
        doc.attacks[0].measures = "\\n is two characters, \n is one".into();
        let printed = print_document(&doc);
        let reparsed = parse_document(&printed).unwrap();
        assert_eq!(print_document(&reparsed), printed);
    }

    #[test]
    fn privacy_and_argless_exec_round_trip() {
        let mut doc = sample();
        doc.attacks[0].privacy = true;
        doc.attacks[0].goals.clear();
        doc.attacks[0].execute = Some(ExecSpec { name: "v2x-jam".into(), args: vec![] });
        let reparsed = parse_document(&print_document(&doc)).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn multiple_attacks_round_trip() {
        let mut doc = sample();
        let mut second = doc.attacks[0].clone();
        second.id = "AD09".into();
        second.execute = None;
        second.attacker = None;
        second.interface = None;
        doc.attacks.push(second);
        let reparsed = parse_document(&print_document(&doc)).unwrap();
        assert_eq!(reparsed, doc);
    }
}
