//! The DSL lexer.
//!
//! Token kinds: identifiers (which may contain `-`, `.` and `_`, matching
//! SaSeVAL artifact IDs like `TS-2.1.4`), double-quoted strings with
//! `\"`/`\\`/`\n`/`\t`/`\r` escapes, unsigned integers, and the
//! punctuation `{ } : , ( ) = /`. Line comments start with `//`. Every
//! token carries its 1-based line/column as a [`Span`] for diagnostics.

use serde::{Deserialize, Serialize};

use crate::error::DslError;

/// A 1-based source position (line and column) of a token or AST node.
///
/// The default span (`0:0`) means "unknown" — documents constructed
/// programmatically rather than parsed carry unknown spans. Spans are
/// carried through the AST so downstream tooling (notably `saseval-lint`)
/// can point diagnostics at the offending source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Span {
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub column: u32,
}

impl Span {
    /// Creates a span at the given 1-based position.
    pub fn new(line: u32, column: u32) -> Self {
        Span { line, column }
    }

    /// Whether this span points at a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier / bare word.
    Ident(String),
    /// Double-quoted string (unescaped content).
    Str(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `/`
    Slash,
}

impl TokenKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::Eq => "`=`".to_owned(),
            TokenKind::Slash => "`/`".to_owned(),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

impl Token {
    /// The token's source position as a [`Span`].
    pub fn span(&self) -> Span {
        Span::new(self.line, self.column)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Lexes DSL source into tokens.
///
/// # Errors
///
/// Returns a [`DslError`] on unterminated strings, unknown escapes or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_column) = (line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        line: tok_line,
                        column: tok_column,
                    });
                }
            }
            '{' => {
                bump!();
                tokens.push(Token { kind: TokenKind::LBrace, line: tok_line, column: tok_column });
            }
            '}' => {
                bump!();
                tokens.push(Token { kind: TokenKind::RBrace, line: tok_line, column: tok_column });
            }
            ':' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Colon, line: tok_line, column: tok_column });
            }
            ',' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Comma, line: tok_line, column: tok_column });
            }
            '(' => {
                bump!();
                tokens.push(Token { kind: TokenKind::LParen, line: tok_line, column: tok_column });
            }
            ')' => {
                bump!();
                tokens.push(Token { kind: TokenKind::RParen, line: tok_line, column: tok_column });
            }
            '=' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Eq, line: tok_line, column: tok_column });
            }
            '"' => {
                bump!();
                let mut value = String::new();
                loop {
                    match bump!() {
                        None => {
                            return Err(DslError::new(
                                tok_line,
                                tok_column,
                                "unterminated string literal",
                            ))
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => value.push('"'),
                            Some('\\') => value.push('\\'),
                            Some('n') => value.push('\n'),
                            Some('t') => value.push('\t'),
                            Some('r') => value.push('\r'),
                            other => {
                                return Err(DslError::new(
                                    line,
                                    column,
                                    format!("unknown escape {other:?} in string literal"),
                                ))
                            }
                        },
                        Some(other) => value.push(other),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    line: tok_line,
                    column: tok_column,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&n) = chars.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                // A digit-led word may still be an identifier (e.g. a
                // hex-ish ID); it is an integer only if fully numeric.
                if text.chars().all(|c| c.is_ascii_digit()) {
                    let value = text.parse::<u64>().map_err(|_| {
                        DslError::new(tok_line, tok_column, format!("integer {text} overflows u64"))
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(value),
                        line: tok_line,
                        column: tok_column,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident(text),
                        line: tok_line,
                        column: tok_column,
                    });
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(&n) = chars.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line: tok_line,
                    column: tok_column,
                });
            }
            other => {
                return Err(DslError::new(
                    tok_line,
                    tok_column,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("attack AD20 { goals: SG01, SG02 }"),
            vec![
                TokenKind::Ident("attack".into()),
                TokenKind::Ident("AD20".into()),
                TokenKind::LBrace,
                TokenKind::Ident("goals".into()),
                TokenKind::Colon,
                TokenKind::Ident("SG01".into()),
                TokenKind::Comma,
                TokenKind::Ident("SG02".into()),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn dotted_and_dashed_ids() {
        assert_eq!(kinds("TS-2.1.4"), vec![TokenKind::Ident("TS-2.1.4".into())]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a \"quoted\" word\n""#),
            vec![TokenKind::Str("a \"quoted\" word\n".into())]
        );
    }

    #[test]
    fn integers_vs_numeric_prefixed_idents() {
        assert_eq!(kinds("40"), vec![TokenKind::Int(40)]);
        assert_eq!(kinds("2fast"), vec![TokenKind::Ident("2fast".into())]);
    }

    #[test]
    fn comments_skipped_slash_kept() {
        assert_eq!(
            kinds("a // comment\n / b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Slash, TokenKind::Ident("b".into()),]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].column), (2, 3));
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("abc $").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 5));
        let err = lex("\"open").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn unknown_escape_rejected() {
        assert!(lex(r#""\q""#).is_err());
    }

    #[test]
    fn tab_and_cr_escapes() {
        assert_eq!(kinds(r#""a\tb\rc""#), vec![TokenKind::Str("a\tb\rc".into())]);
    }

    #[test]
    fn token_span_accessor() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[1].span(), Span::new(2, 3));
        assert!(tokens[1].span().is_known());
        assert!(!Span::default().is_known());
        assert_eq!(Span::new(2, 3).to_string(), "2:3");
    }
}
