//! The DSL abstract syntax tree.

use serde::{Deserialize, Serialize};

/// A whole DSL document: a sequence of attack declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Document {
    /// The attack declarations in source order.
    pub attacks: Vec<AttackDecl>,
}

/// One `attack <ID> { … }` declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackDecl {
    /// The attack description ID (e.g. `AD20`).
    pub id: String,
    /// `description:` text.
    pub description: String,
    /// `goals:` safety-goal IDs (may be empty for privacy attacks).
    pub goals: Vec<String>,
    /// `interface:` targeted interface/ECU, if given.
    pub interface: Option<String>,
    /// `threat:` the linked threat-scenario ID.
    pub threat: String,
    /// `types:` STRIDE threat type name (left of `/`).
    pub threat_type: String,
    /// `types:` attack type name (right of `/`).
    pub attack_type: String,
    /// `precondition:` text.
    pub precondition: String,
    /// `measures:` expected measures text.
    pub measures: String,
    /// `success:` attack-success criteria text.
    pub success: String,
    /// `fails:` attack-fails criteria text.
    pub fails: String,
    /// `comments:` implementation comments text.
    pub comments: String,
    /// `attacker:` profile name, if given.
    pub attacker: Option<String>,
    /// `privacy` flag.
    pub privacy: bool,
    /// `execute:` binding, if given.
    pub execute: Option<ExecSpec>,
}

/// An `execute: name(arg = value, …)` binding to an executable attack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSpec {
    /// The executable attack name (e.g. `v2x-flood`).
    pub name: String,
    /// Named arguments in source order.
    pub args: Vec<(String, ExecArg)>,
}

impl ExecSpec {
    /// Looks up a named argument.
    pub fn arg(&self, name: &str) -> Option<&ExecArg> {
        self.args.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up an integer argument.
    pub fn int_arg(&self, name: &str) -> Option<u64> {
        match self.arg(name) {
            Some(ExecArg::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Looks up a word argument.
    pub fn word_arg(&self, name: &str) -> Option<&str> {
        match self.arg(name) {
            Some(ExecArg::Word(w)) => Some(w),
            _ => None,
        }
    }
}

/// An argument value in an [`ExecSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecArg {
    /// Unsigned integer.
    Int(u64),
    /// Bare word.
    Word(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_spec_lookups() {
        let spec = ExecSpec {
            name: "key-spoof".into(),
            args: vec![
                ("budget".into(), ExecArg::Int(100)),
                ("strategy".into(), ExecArg::Word("random".into())),
            ],
        };
        assert_eq!(spec.int_arg("budget"), Some(100));
        assert_eq!(spec.word_arg("strategy"), Some("random"));
        assert_eq!(spec.int_arg("strategy"), None);
        assert_eq!(spec.arg("missing"), None);
    }
}
