//! The DSL abstract syntax tree.

use serde::{Deserialize, Serialize};

pub use crate::token::Span;

/// A whole DSL document: a sequence of attack declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Document {
    /// The attack declarations in source order.
    pub attacks: Vec<AttackDecl>,
}

/// Source positions recorded for an attack declaration.
///
/// Populated by the parser; declarations constructed programmatically
/// carry default (unknown) spans. Spans are *not* part of a declaration's
/// semantic identity: [`AttackDecl`]'s `PartialEq` ignores them, so a
/// parsed document compares equal to a hand-built one with the same
/// content.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSpans {
    /// Position of the attack ID after the `attack` keyword.
    pub decl: Span,
    /// Position of the `precondition` field name, if present.
    pub precondition: Span,
    /// Position of the `execute` field name, if present.
    pub execute: Span,
    /// Position of each `execute` argument name, in source order.
    pub exec_args: Vec<Span>,
}

/// One `attack <ID> { … }` declaration.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct AttackDecl {
    /// The attack description ID (e.g. `AD20`).
    pub id: String,
    /// `description:` text.
    pub description: String,
    /// `goals:` safety-goal IDs (may be empty for privacy attacks).
    pub goals: Vec<String>,
    /// `interface:` targeted interface/ECU, if given.
    pub interface: Option<String>,
    /// `threat:` the linked threat-scenario ID.
    pub threat: String,
    /// `types:` STRIDE threat type name (left of `/`).
    pub threat_type: String,
    /// `types:` attack type name (right of `/`).
    pub attack_type: String,
    /// `precondition:` text.
    pub precondition: String,
    /// `measures:` expected measures text.
    pub measures: String,
    /// `success:` attack-success criteria text.
    pub success: String,
    /// `fails:` attack-fails criteria text.
    pub fails: String,
    /// `comments:` implementation comments text.
    pub comments: String,
    /// `attacker:` profile name, if given.
    pub attacker: Option<String>,
    /// `privacy` flag.
    pub privacy: bool,
    /// `execute:` binding, if given.
    pub execute: Option<ExecSpec>,
    /// Source positions (default/unknown for programmatic declarations).
    #[serde(default)]
    pub spans: AttackSpans,
}

// Spans are presentation metadata, not content: two declarations with the
// same fields are the same attack regardless of where they were written.
impl PartialEq for AttackDecl {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.description == other.description
            && self.goals == other.goals
            && self.interface == other.interface
            && self.threat == other.threat
            && self.threat_type == other.threat_type
            && self.attack_type == other.attack_type
            && self.precondition == other.precondition
            && self.measures == other.measures
            && self.success == other.success
            && self.fails == other.fails
            && self.comments == other.comments
            && self.attacker == other.attacker
            && self.privacy == other.privacy
            && self.execute == other.execute
    }
}

/// An `execute: name(arg = value, …)` binding to an executable attack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSpec {
    /// The executable attack name (e.g. `v2x-flood`).
    pub name: String,
    /// Named arguments in source order.
    pub args: Vec<(String, ExecArg)>,
}

impl ExecSpec {
    /// Looks up a named argument.
    pub fn arg(&self, name: &str) -> Option<&ExecArg> {
        self.args.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up an integer argument.
    pub fn int_arg(&self, name: &str) -> Option<u64> {
        match self.arg(name) {
            Some(ExecArg::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Looks up a word argument.
    pub fn word_arg(&self, name: &str) -> Option<&str> {
        match self.arg(name) {
            Some(ExecArg::Word(w)) => Some(w),
            _ => None,
        }
    }
}

/// An argument value in an [`ExecSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecArg {
    /// Unsigned integer.
    Int(u64),
    /// Bare word.
    Word(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_spec_lookups() {
        let spec = ExecSpec {
            name: "key-spoof".into(),
            args: vec![
                ("budget".into(), ExecArg::Int(100)),
                ("strategy".into(), ExecArg::Word("random".into())),
            ],
        };
        assert_eq!(spec.int_arg("budget"), Some(100));
        assert_eq!(spec.word_arg("strategy"), Some("random"));
        assert_eq!(spec.int_arg("strategy"), None);
        assert_eq!(spec.arg("missing"), None);
    }

    #[test]
    fn decl_json_without_spans_deserializes() {
        // Documents serialized before spans existed must still load:
        // the `spans` field is `#[serde(default)]`.
        let json = r#"{"id":"AD01","description":"d","goals":[],"interface":null,
            "threat":"TS-1","threat_type":"Spoofing","attack_type":"Spoofing",
            "precondition":"p","measures":"","success":"s","fails":"f",
            "comments":"","attacker":null,"privacy":false,"execute":null}"#;
        let decl: AttackDecl = serde_json::from_str(json).unwrap();
        assert_eq!(decl.id, "AD01");
        assert_eq!(decl.spans, AttackSpans::default());
    }

    #[test]
    fn equality_ignores_spans() {
        let decl = AttackDecl {
            id: "AD01".into(),
            description: "d".into(),
            goals: vec![],
            interface: None,
            threat: "TS-1".into(),
            threat_type: "Spoofing".into(),
            attack_type: "Spoofing".into(),
            precondition: "p".into(),
            measures: String::new(),
            success: "s".into(),
            fails: "f".into(),
            comments: String::new(),
            attacker: None,
            privacy: false,
            execute: None,
            spans: AttackSpans::default(),
        };
        let mut positioned = decl.clone();
        positioned.spans.decl = Span::new(3, 8);
        positioned.spans.exec_args.push(Span::new(4, 1));
        assert_eq!(decl, positioned);
        let mut other = decl.clone();
        other.id = "AD02".into();
        assert_ne!(decl, other);
    }
}
