//! Batched struct-of-arrays world stepping.
//!
//! One thread steps a *batch* of worlds in lockstep. For the
//! construction world, the per-tick work splits into a per-world phase
//! (attacker hook, RSU broadcast, OBU admission, driver decision) and a
//! numeric kinematics integration; the batch keeps the kinematic state of
//! every lane in parallel vectors (`position_m[i]`, `speed_mps[i]`,
//! `accel_mps2[i]`, `dt_secs[i]`) and integrates all lanes in one
//! cache-friendly inner loop over [`Vehicle::step_kinematics`] — the same
//! pure function [`Vehicle::step`] calls, so batched and per-world
//! stepping are bit-identical by construction. The keyless world has no
//! continuous state; its batch steps lanes round-robin, reusing each
//! world's allocation-free owner-script drain
//! ([`crate::kernel::EventQueue::pop_due_into`]).
//!
//! Hooks are per-lane closures `(lane, &mut world, now)`; pass
//! `&mut |_, _, _| {}` for no attacker. [`ConstructionBatch::run`]
//! returns the completed *worlds*, not outcomes, so callers (the fuzz
//! oracle) can still inspect the security log and trace before
//! [`ConstructionWorld::into_outcome`] consumes them.

use saseval_types::SimTime;

use crate::construction::{ConstructionOutcome, ConstructionWorld};
use crate::keyless::{KeylessOutcome, KeylessWorld};
use crate::vehicle::Vehicle;

/// Per-lane attacker hook: called with the lane index, the world and the
/// world's current virtual time, once per tick, before the tick body.
pub type LaneHook<'a, W> = &'a mut dyn FnMut(usize, &mut W, SimTime);

/// A batch of construction worlds stepped in lockstep with a
/// struct-of-arrays kinematics pass.
pub struct ConstructionBatch {
    lanes: Vec<ConstructionWorld>,
    active: Vec<bool>,
    position_m: Vec<f64>,
    speed_mps: Vec<f64>,
    accel_mps2: Vec<f64>,
    dt_secs: Vec<f64>,
}

impl std::fmt::Debug for ConstructionBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstructionBatch").field("lanes", &self.lanes.len()).finish()
    }
}

impl ConstructionBatch {
    /// Wraps `worlds` (possibly mid-run forks) as batch lanes.
    pub fn new(worlds: Vec<ConstructionWorld>) -> Self {
        let n = worlds.len();
        ConstructionBatch {
            lanes: worlds,
            active: vec![false; n],
            position_m: vec![0.0; n],
            speed_mps: vec![0.0; n],
            accel_mps2: vec![0.0; n],
            dt_secs: vec![0.0; n],
        }
    }

    /// Number of lanes (done or not).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The lanes, in construction order.
    pub fn worlds(&self) -> &[ConstructionWorld] {
        &self.lanes
    }

    /// Performs one tick on every unfinished lane. Returns the number of
    /// lanes stepped (0 once every lane is done).
    pub fn step_all(&mut self, hook: LaneHook<'_, ConstructionWorld>) -> usize {
        let mut stepped = 0;
        // Phase 1 — per-world: attacker hook, RSU, OBU, driver decision;
        // then gather the kinematic state into the lanes.
        for (i, world) in self.lanes.iter_mut().enumerate() {
            if world.is_done() {
                self.active[i] = false;
                continue;
            }
            self.active[i] = true;
            stepped += 1;
            let now = world.now();
            hook(i, world, now);
            world.pre_kinematics_tick();
            let vehicle = world.vehicle();
            self.position_m[i] = vehicle.position_m();
            self.speed_mps[i] = vehicle.speed_mps();
            self.accel_mps2[i] = vehicle.accel_mps2();
            self.dt_secs[i] = world.config().tick.as_secs_f64();
        }
        // Phase 2 — the tight struct-of-arrays integration loop.
        for i in 0..self.lanes.len() {
            if !self.active[i] {
                continue;
            }
            let (position, speed, accel) = Vehicle::step_kinematics(
                self.position_m[i],
                self.speed_mps[i],
                self.accel_mps2[i],
                self.dt_secs[i],
            );
            self.position_m[i] = position;
            self.speed_mps[i] = speed;
            self.accel_mps2[i] = accel;
        }
        // Phase 3 — scatter back and commit the tick per world.
        for (i, world) in self.lanes.iter_mut().enumerate() {
            if !self.active[i] {
                continue;
            }
            world.sync_kinematics(self.position_m[i], self.speed_mps[i], self.accel_mps2[i]);
            world.commit_tick();
        }
        stepped
    }

    /// Steps every lane to completion and returns the finished worlds, in
    /// lane order, with logs and traces intact.
    pub fn run(mut self, hook: LaneHook<'_, ConstructionWorld>) -> Vec<ConstructionWorld> {
        while self.step_all(hook) > 0 {}
        self.lanes
    }

    /// [`ConstructionBatch::run`] followed by outcome evaluation per lane.
    pub fn run_outcomes(self, hook: LaneHook<'_, ConstructionWorld>) -> Vec<ConstructionOutcome> {
        self.run(hook).into_iter().map(ConstructionWorld::into_outcome).collect()
    }
}

/// A batch of keyless worlds stepped in lockstep.
///
/// The keyless world is event/message driven with no continuous state to
/// vectorize, so this batch has no numeric lanes: its value is amortizing
/// one dispatch loop over many short-horizon forks (the fuzz oracle's
/// workload) while preserving per-world step order exactly.
pub struct KeylessBatch {
    lanes: Vec<KeylessWorld>,
}

impl std::fmt::Debug for KeylessBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeylessBatch").field("lanes", &self.lanes.len()).finish()
    }
}

impl KeylessBatch {
    /// Wraps `worlds` (possibly mid-run forks) as batch lanes.
    pub fn new(worlds: Vec<KeylessWorld>) -> Self {
        KeylessBatch { lanes: worlds }
    }

    /// Number of lanes (done or not).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The lanes, in construction order.
    pub fn worlds(&self) -> &[KeylessWorld] {
        &self.lanes
    }

    /// Performs one tick on every unfinished lane. Returns the number of
    /// lanes stepped (0 once every lane is done).
    pub fn step_all(&mut self, hook: LaneHook<'_, KeylessWorld>) -> usize {
        let mut stepped = 0;
        for (i, world) in self.lanes.iter_mut().enumerate() {
            if world.is_done() {
                continue;
            }
            stepped += 1;
            let now = world.now();
            hook(i, world, now);
            world.tick_body();
        }
        stepped
    }

    /// Steps every lane to completion and returns the finished worlds, in
    /// lane order, with logs and traces intact.
    pub fn run(mut self, hook: LaneHook<'_, KeylessWorld>) -> Vec<KeylessWorld> {
        while self.step_all(hook) > 0 {}
        self.lanes
    }

    /// [`KeylessBatch::run`] followed by outcome evaluation per lane.
    pub fn run_outcomes(self, hook: LaneHook<'_, KeylessWorld>) -> Vec<KeylessOutcome> {
        self.run(hook).into_iter().map(KeylessWorld::into_outcome).collect()
    }
}

#[cfg(test)]
mod tests {
    use bytes::Bytes;
    use saseval_types::Ftti;

    use super::*;
    use crate::construction::{ConstructionConfig, MSG_RELEASE};
    use crate::keyless::KeylessConfig;
    use crate::ControlSelection;
    use vehicle_net::v2x::V2xMessage;

    fn construction_configs() -> Vec<ConstructionConfig> {
        vec![
            ConstructionConfig::default(),
            ConstructionConfig { seed: 9, initial_speed_mps: 30.0, ..Default::default() },
            ConstructionConfig {
                controls: ControlSelection::none(),
                rsu_range_m: 400.0,
                ..Default::default()
            },
            // A lane that finishes much earlier than the rest.
            ConstructionConfig { horizon: Ftti::from_secs(1), ..Default::default() },
        ]
    }

    #[test]
    fn construction_batch_matches_serial_runs() {
        let serial: Vec<_> = construction_configs()
            .into_iter()
            .map(|config| ConstructionWorld::new(config).run_nominal())
            .collect();
        let batch = ConstructionBatch::new(
            construction_configs().into_iter().map(ConstructionWorld::new).collect(),
        );
        let batched = batch.run_outcomes(&mut |_, _, _| {});
        assert_eq!(batched.len(), serial.len());
        for (lane, (b, s)) in batched.iter().zip(&serial).enumerate() {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap(),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn construction_batch_hook_matches_serial_attacker() {
        // The same per-tick injection, run serially and as a batch lane,
        // must produce identical outcomes and traces.
        let inject = |world: &mut ConstructionWorld, now: SimTime| {
            if now == SimTime::from_secs(20) {
                let msg = V2xMessage::new("EVIL", 3, Bytes::from_static(&[MSG_RELEASE]), now);
                world.channel_mut().broadcast(msg, now);
            }
        };
        struct Hook<F>(F);
        impl<F: FnMut(&mut ConstructionWorld, SimTime)> crate::AttackerHook<ConstructionWorld> for Hook<F> {
            fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
                (self.0)(world, now);
            }
        }
        let mut serial_world = ConstructionWorld::new(ConstructionConfig::default());
        while serial_world.step(&mut Hook(inject)) {}
        let serial_trace = serial_world.trace().clone();
        let serial = serial_world.into_outcome();

        let batch =
            ConstructionBatch::new(vec![ConstructionWorld::new(ConstructionConfig::default())]);
        let mut worlds = batch.run(&mut |_, world, now| inject(world, now));
        let world = worlds.pop().unwrap();
        assert_eq!(world.trace(), &serial_trace);
        let batched = world.into_outcome();
        assert_eq!(
            serde_json::to_string(&batched).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
    }

    #[test]
    fn keyless_batch_matches_serial_runs() {
        let configs = || {
            vec![
                KeylessConfig::default(),
                KeylessConfig { seed: 11, ..Default::default() },
                KeylessConfig { horizon: Ftti::from_secs(2), ..Default::default() },
            ]
        };
        let serial: Vec<_> = configs()
            .into_iter()
            .map(|config| {
                let mut w = KeylessWorld::new(config);
                w.schedule_owner_open(SimTime::from_secs(1));
                w.schedule_owner_close(SimTime::from_secs(5));
                w.run_nominal()
            })
            .collect();
        let batched = KeylessBatch::new(
            configs()
                .into_iter()
                .map(|config| {
                    let mut w = KeylessWorld::new(config);
                    w.schedule_owner_open(SimTime::from_secs(1));
                    w.schedule_owner_close(SimTime::from_secs(5));
                    w
                })
                .collect(),
        )
        .run_outcomes(&mut |_, _, _| {});
        for (lane, (b, s)) in batched.iter().zip(&serial).enumerate() {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap(),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn batch_of_forks_from_one_snapshot_diverges_independently() {
        // Warm a world to t = 1 s, snapshot, fork three lanes, inject a
        // different owner action into each; every lane must see only its
        // own injection.
        let mut base = KeylessWorld::new(KeylessConfig::default());
        base.run_until(SimTime::from_secs(1), &mut ());
        let snapshot = base.snapshot();
        let mut forks: Vec<_> = (0..3).map(|_| snapshot.fork()).collect();
        forks[0].schedule_owner_open(SimTime::from_secs(2));
        forks[1].schedule_owner_open(SimTime::from_secs(2));
        forks[1].schedule_owner_close(SimTime::from_secs(6));
        // forks[2] gets nothing.
        let outcomes = KeylessBatch::new(forks).run_outcomes(&mut |_, _, _| {});
        assert!(outcomes[0].lock_open, "{:?}", outcomes[0]);
        assert!(!outcomes[1].lock_open, "{:?}", outcomes[1]);
        assert_eq!(outcomes[1].transitions, 2);
        assert_eq!(outcomes[2].transitions, 0);
        assert!(outcomes.iter().all(|o| !o.sg01_violated), "owner actions are authorized");
    }

    #[test]
    fn empty_batches_finish_immediately() {
        assert_eq!(ConstructionBatch::new(Vec::new()).run_outcomes(&mut |_, _, _| {}).len(), 0);
        assert_eq!(KeylessBatch::new(Vec::new()).run_outcomes(&mut |_, _, _| {}).len(), 0);
        let mut batch = KeylessBatch::new(Vec::new());
        assert_eq!(batch.step_all(&mut |_, _, _| {}), 0);
        assert!(batch.is_empty());
    }
}
