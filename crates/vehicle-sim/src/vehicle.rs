//! Longitudinal vehicle dynamics and the driver take-over model.

use serde::{Deserialize, Serialize};

use saseval_types::{Ftti, SimTime};

/// Who controls the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMode {
    /// The automation drives.
    Automated,
    /// A take-over was requested; the driver is reacting.
    TakeOverRequested {
        /// When the driver will have control.
        complete_at: SimTime,
    },
    /// The driver drives.
    Manual,
}

/// A point-mass longitudinal vehicle on a straight road.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    position_m: f64,
    speed_mps: f64,
    accel_mps2: f64,
}

impl Vehicle {
    /// Creates a vehicle at position 0 with the given speed.
    pub fn new(speed_mps: f64) -> Self {
        Vehicle { position_m: 0.0, speed_mps: speed_mps.max(0.0), accel_mps2: 0.0 }
    }

    /// Current position along the road in metres.
    pub fn position_m(&self) -> f64 {
        self.position_m
    }

    /// Current speed in m/s.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Current commanded acceleration in m/s².
    pub fn accel_mps2(&self) -> f64 {
        self.accel_mps2
    }

    /// Commands a constant acceleration (negative = braking).
    pub fn set_accel(&mut self, accel_mps2: f64) {
        self.accel_mps2 = accel_mps2;
    }

    /// Overwrites the full kinematic state. Used by the batched
    /// struct-of-arrays stepper to sync lane vectors back into the world;
    /// crate-private so external callers cannot teleport vehicles.
    pub(crate) fn set_state(&mut self, position_m: f64, speed_mps: f64, accel_mps2: f64) {
        self.position_m = position_m;
        self.speed_mps = speed_mps;
        self.accel_mps2 = accel_mps2;
    }

    /// One kinematics step as a pure function of `(position, speed,
    /// accel, dt)` returning the post-step triple. [`Vehicle::step`] and
    /// the struct-of-arrays batch stepper both call this, so batched and
    /// per-world stepping are bit-identical by construction.
    pub fn step_kinematics(
        position_m: f64,
        speed_mps: f64,
        accel_mps2: f64,
        dt_secs: f64,
    ) -> (f64, f64, f64) {
        let new_speed = (speed_mps + accel_mps2 * dt_secs).max(0.0);
        // Trapezoidal position update, clamped at the standstill point.
        let avg = (speed_mps + new_speed) / 2.0;
        let position = position_m + avg * dt_secs;
        let accel = if new_speed == 0.0 && accel_mps2 < 0.0 { 0.0 } else { accel_mps2 };
        (position, new_speed, accel)
    }

    /// Advances the kinematics by `dt`. Speed never goes negative.
    pub fn step(&mut self, dt: Ftti) {
        let (position, speed, accel) = Self::step_kinematics(
            self.position_m,
            self.speed_mps,
            self.accel_mps2,
            dt.as_secs_f64(),
        );
        self.position_m = position;
        self.speed_mps = speed;
        self.accel_mps2 = accel;
    }

    /// Braking distance from the current speed at constant deceleration
    /// `decel_mps2 > 0`.
    pub fn braking_distance_m(&self, decel_mps2: f64) -> f64 {
        if decel_mps2 <= 0.0 {
            return f64::INFINITY;
        }
        self.speed_mps * self.speed_mps / (2.0 * decel_mps2)
    }
}

/// The driver model: reacts to a take-over request after a fixed reaction
/// time, then brakes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Driver {
    /// Time from request to hands-on control.
    pub reaction: Ftti,
    /// Deceleration applied once in control (m/s², positive).
    pub braking_mps2: f64,
}

impl Driver {
    /// Creates a driver with the given reaction time and braking strength.
    pub fn new(reaction: Ftti, braking_mps2: f64) -> Self {
        Driver { reaction, braking_mps2: braking_mps2.max(0.1) }
    }
}

impl Default for Driver {
    fn default() -> Self {
        // 1.5 s reaction, 3 m/s² comfortable braking.
        Driver::new(Ftti::from_millis(1_500), 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_motion() {
        let mut v = Vehicle::new(20.0);
        for _ in 0..100 {
            v.step(Ftti::from_millis(10));
        }
        assert!((v.position_m() - 20.0).abs() < 1e-9);
        assert_eq!(v.speed_mps(), 20.0);
    }

    #[test]
    fn braking_stops_at_zero() {
        let mut v = Vehicle::new(10.0);
        v.set_accel(-5.0);
        for _ in 0..1_000 {
            v.step(Ftti::from_millis(10));
        }
        assert_eq!(v.speed_mps(), 0.0);
        // v²/2a = 100/10 = 10 m stopping distance.
        assert!((v.position_m() - 10.0).abs() < 0.1, "pos {}", v.position_m());
    }

    #[test]
    fn speed_never_negative() {
        let mut v = Vehicle::new(1.0);
        v.set_accel(-100.0);
        v.step(Ftti::from_millis(100));
        assert_eq!(v.speed_mps(), 0.0);
        let p = v.position_m();
        v.step(Ftti::from_millis(100));
        assert_eq!(v.position_m(), p, "no motion after standstill");
    }

    #[test]
    fn braking_distance_formula() {
        let v = Vehicle::new(20.0);
        assert!((v.braking_distance_m(4.0) - 50.0).abs() < 1e-9);
        assert_eq!(v.braking_distance_m(0.0), f64::INFINITY);
    }

    #[test]
    fn negative_initial_speed_clamped() {
        let v = Vehicle::new(-5.0);
        assert_eq!(v.speed_mps(), 0.0);
    }

    #[test]
    fn driver_defaults() {
        let d = Driver::default();
        assert_eq!(d.reaction, Ftti::from_millis(1_500));
        assert!(d.braking_mps2 > 0.0);
        let weak = Driver::new(Ftti::ZERO, -1.0);
        assert!(weak.braking_mps2 > 0.0, "braking floor enforced");
    }
}
