//! Discrete-event kernel: a deterministic time-ordered event queue.
//!
//! The worlds in this crate are tick-driven for their continuous parts
//! (kinematics) but use an [`EventQueue`] for discrete scheduling (RSU
//! broadcast slots, driver take-over completion, attack activation
//! times). Events at equal times dequeue in insertion order, keeping runs
//! bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use saseval_types::SimTime;

/// A deterministic time-ordered event queue.
///
/// # Example
///
/// ```
/// use vehicle_sim::kernel::EventQueue;
/// use saseval_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// assert_eq!(q.pop_due(SimTime::from_millis(5)), vec!["a", "b"]);
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Option<E>>,
    /// Indices of `events` slots vacated by pops, reused by the next
    /// schedules. Without this, `events` grows by one slot per schedule
    /// for the lifetime of the queue — unbounded for long-running worlds
    /// that keep a steady-state number of pending events.
    free_slots: Vec<usize>,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot forking requires queue clones to be *deep*: a fork sharing
/// `free_slots` or `seq` with its parent would hand both worlds the same
/// insertion-order counters, breaking FIFO-at-equal-time determinism the
/// moment they diverge. Every field here is owned data, so the derived
/// field-by-field clone copies the heap, the slot storage, the free list
/// and both counters independently.
impl<E: Clone> Clone for EventQueue<E> {
    fn clone(&self) -> Self {
        EventQueue {
            heap: self.heap.clone(),
            events: self.events.clone(),
            free_slots: self.free_slots.clone(),
            seq: self.seq,
            popped: self.popped,
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("pending", &self.heap.len()).finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.events[slot].is_none(), "free slot still occupied");
                self.events[slot] = Some(event);
                slot
            }
            None => {
                self.events.push(Some(event));
                self.events.len() - 1
            }
        };
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// The time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `now`.
    pub fn pop_next_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse((t, _, _))) if *t <= now => {
                let Reverse((t, _, slot)) = self.heap.pop().expect("peeked");
                let event = self.events[slot].take().expect("event slot");
                self.free_slots.push(slot);
                self.popped += 1;
                Some((t, event))
            }
            _ => None,
        }
    }

    /// Removes and returns all events due at or before `now`, in time then
    /// insertion order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<E> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due
    }

    /// [`EventQueue::pop_due`] writing into a caller-owned buffer. `due`
    /// is cleared first. Step loops that drain the queue every tick keep
    /// one buffer alive across ticks, so steady-state stepping performs
    /// no per-tick allocation once the buffer has warmed up.
    pub fn pop_due_into(&mut self, now: SimTime, due: &mut Vec<E>) {
        due.clear();
        while let Some((_, event)) = self.pop_next_due(now) {
            due.push(event);
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of event slots ever allocated (diagnostics). Stays bounded
    /// by the peak number of simultaneously pending events, not by the
    /// total number of schedules.
    pub fn slot_capacity(&self) -> usize {
        self.events.len()
    }

    /// Total events ever scheduled. Worlds flush this (with
    /// [`EventQueue::popped_total`]) into their metrics recorder at run
    /// end, keeping the hot scheduling path free of dynamic dispatch.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total events ever popped.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.pop_due(SimTime::from_secs(1)), vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_millis(5), i);
        }
        assert_eq!(q.pop_due(SimTime::from_millis(5)), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn respects_due_boundary() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        q.schedule(SimTime::from_millis(1), "early");
        assert_eq!(q.pop_due(SimTime::from_millis(9)), vec!["early"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.pop_due(SimTime::from_millis(10)), vec!["late"]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_next_due_single_step() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), "a");
        assert!(q.pop_next_due(SimTime::from_millis(1)).is_none());
        let (t, e) = q.pop_next_due(SimTime::from_millis(2)).unwrap();
        assert_eq!((t, e), (SimTime::from_millis(2), "a"));
    }

    #[test]
    fn popped_slots_are_reused() {
        let mut q = EventQueue::new();
        // Steady state: one pending event at a time, many schedule/pop
        // cycles. Slot storage must not grow with the cycle count.
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i), i);
            assert_eq!(q.pop_due(SimTime::from_micros(i)), vec![i]);
        }
        assert_eq!(q.slot_capacity(), 1, "slots must be reused, not leaked");

        // Bursty state: capacity tracks the peak pending count.
        for i in 0..64u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        assert_eq!(q.pop_due(SimTime::from_secs(1)).len(), 64);
        for round in 0..100u64 {
            for i in 0..64u64 {
                q.schedule(SimTime::from_micros(round * 100 + i), i);
            }
            assert_eq!(q.pop_due(SimTime::from_secs(1)).len(), 64);
        }
        assert_eq!(q.slot_capacity(), 64, "capacity bounded by peak pending events");
    }

    #[test]
    fn pop_due_into_reuses_buffer_and_clears_stale_events() {
        let mut q = EventQueue::new();
        let mut buffer = vec!["stale"];
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        q.pop_due_into(SimTime::from_millis(2), &mut buffer);
        assert_eq!(buffer, vec!["a", "b"], "buffer cleared before refill");
        let warm_capacity = buffer.capacity();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros(i), "e");
            q.pop_due_into(SimTime::from_micros(i), &mut buffer);
            assert_eq!(buffer.len(), 1);
        }
        assert_eq!(buffer.capacity(), warm_capacity, "steady state reuses the warm buffer");
    }

    #[test]
    fn fork_then_diverge_keeps_fifo_determinism() {
        // A forked queue must own its slot-reuse state: after the fork,
        // parent and child schedule different event streams, and each
        // must preserve FIFO order at equal times independently.
        let mut parent = EventQueue::new();
        parent.schedule(SimTime::from_millis(10), "shared-a");
        parent.schedule(SimTime::from_millis(10), "shared-b");
        // Churn the free list so the fork happens with non-trivial
        // slot-reuse state.
        parent.schedule(SimTime::from_millis(1), "early");
        assert_eq!(parent.pop_due(SimTime::from_millis(1)), vec!["early"]);

        let mut child = parent.clone();
        assert_eq!(child.len(), parent.len());
        assert_eq!(child.scheduled_total(), parent.scheduled_total());
        assert_eq!(child.popped_total(), parent.popped_total());

        // Diverge: both schedule at the same (equal) time, different
        // payloads. Each queue must order its own insertions after the
        // shared prefix, unaffected by the other's schedules.
        parent.schedule(SimTime::from_millis(10), "parent-1");
        parent.schedule(SimTime::from_millis(10), "parent-2");
        child.schedule(SimTime::from_millis(10), "child-1");
        child.schedule(SimTime::from_millis(10), "child-2");

        assert_eq!(
            parent.pop_due(SimTime::from_millis(10)),
            vec!["shared-a", "shared-b", "parent-1", "parent-2"]
        );
        assert_eq!(
            child.pop_due(SimTime::from_millis(10)),
            vec!["shared-a", "shared-b", "child-1", "child-2"]
        );

        // The forked free lists are independent: popping in the child
        // must not hand slots back to the parent (and vice versa).
        parent.schedule(SimTime::from_millis(20), "parent-3");
        child.schedule(SimTime::from_millis(20), "child-3");
        assert_eq!(parent.pop_due(SimTime::from_millis(20)), vec!["parent-3"]);
        assert_eq!(child.pop_due(SimTime::from_millis(20)), vec!["child-3"]);
        assert!(parent.is_empty());
        assert!(child.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        assert_eq!(q.pop_due(SimTime::from_millis(1)), vec![1]);
        q.schedule(SimTime::from_millis(2), 2);
        q.schedule(SimTime::from_millis(2), 3);
        assert_eq!(q.pop_due(SimTime::from_millis(2)), vec![2, 3]);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.popped_total(), 3);
    }
}
