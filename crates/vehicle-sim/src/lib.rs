//! Discrete-event vehicle simulator for the SaSeVAL reproduction.
//!
//! The paper's evaluation ran on two EU-SECREDAS demonstrators we do not
//! have; this crate is their simulated stand-in (see DESIGN.md for the
//! substitution argument):
//!
//! * [`construction`] — **Use Case I** (paper Fig. 2): an autonomous
//!   vehicle approaches a construction site; the road-side unit (RSU)
//!   informs the vehicle via the on-board unit (OBU) so that control is
//!   transferred back to the driver. The world models vehicle kinematics,
//!   periodic signed warnings over a lossy V2X channel, an OBU with a
//!   finite processing budget (so packet flooding can shut the service
//!   down — attack AD20), a driver take-over model and signed signage
//!   (speed limits, SG03).
//! * [`keyless`] — **Use Case II**: a smartphone opens/closes the vehicle
//!   over a BLE link; a gateway validates commands (allow-list of key IDs
//!   as in Table VII, challenge–response, freshness) and forwards them to
//!   the door-lock ECU over the CAN bus — so flooding the gateway with
//!   forwarded BLE requests starves the opening function (SG03).
//!
//! Both worlds expose an [`AttackerHook`] callback invoked every tick;
//! the `attack-engine` crate implements the paper's attack types against
//! these hooks. Outcomes report exactly the attack-success / attack-fails
//! criteria the attack descriptions specify.
//!
//! Everything runs in virtual time with seeded randomness: identical
//! configurations replay identically (RQ3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod construction;
mod error;
pub mod kernel;
pub mod keyless;
pub mod trace;
pub mod vehicle;

pub use batch::{ConstructionBatch, KeylessBatch};
pub use config::ControlSelection;
pub use error::SimError;
pub use trace::{TraceEvent, TraceRecorder};

use std::sync::Arc;

use saseval_types::SimTime;

/// Attacker behaviour injected into a world, invoked once per simulation
/// tick. Implementations live in the `attack-engine` crate; `()` is the
/// no-attack baseline.
pub trait AttackerHook<W> {
    /// Called at every tick with the world state and current time.
    fn on_tick(&mut self, world: &mut W, now: SimTime);
}

impl<W> AttackerHook<W> for () {
    fn on_tick(&mut self, _world: &mut W, _now: SimTime) {}
}

/// A frozen world state at a point in virtual time, shared copy-on-write.
///
/// Capturing a snapshot at the attack-activation time lets many mutated
/// inputs fork from the same warm prefix instead of re-simulating it from
/// `t = 0`: the frozen state lives once behind an [`Arc`]; each
/// [`WorldSnapshot::fork`] deep-clones it into an independent world whose
/// subsequent steps are bit-identical to a from-scratch run brought to
/// the same state (the snapshot-equivalence property gating this crate's
/// determinism contract).
#[derive(Debug, Clone)]
pub struct WorldSnapshot<W> {
    state: Arc<W>,
}

impl<W: Clone> WorldSnapshot<W> {
    /// Freezes `world` as the shared prefix state.
    pub fn new(world: W) -> Self {
        WorldSnapshot { state: Arc::new(world) }
    }

    /// Deep-clones an independent world out of the frozen prefix.
    pub fn fork(&self) -> W {
        (*self.state).clone()
    }

    /// Read-only access to the frozen state.
    pub fn get(&self) -> &W {
        &self.state
    }
}
