//! Simulation trace recording.
//!
//! Attack descriptions require detectable outcomes ("create dedicated log
//! files", §III-C). Beyond the security log of `security-controls`, the
//! worlds record functional events — mode switches, lock transitions,
//! warnings surfaced — in a [`TraceRecorder`]; the attack executor
//! evaluates success criteria against both.

use serde::{Deserialize, Serialize};

use saseval_types::SimTime;

/// One functional trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting component (e.g. `OBU`, `driver`, `lock-actuator`).
    pub source: String,
    /// Event kind (e.g. `take-over-requested`, `lock-open`).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

/// An append-only functional trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        at: SimTime,
        source: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            at,
            source: source.into(),
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of the given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The first event of the given kind, if any.
    pub fn first_of_kind(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_filter() {
        let mut trace = TraceRecorder::new();
        trace.record(SimTime::ZERO, "OBU", "warning-surfaced", "roadworks");
        trace.record(SimTime::from_millis(3), "driver", "take-over", "manual control");
        trace.record(SimTime::from_millis(4), "OBU", "warning-surfaced", "signage");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.of_kind("warning-surfaced").count(), 2);
        assert_eq!(trace.first_of_kind("take-over").unwrap().at, SimTime::from_millis(3));
        assert!(trace.first_of_kind("lock-open").is_none());
    }
}
