//! Use Case II world: keyless car opener via smartphone and BLE
//! (paper §IV-B).
//!
//! The owner's phone opens/closes the vehicle over a [`BleLink`]. A
//! gateway admits commands through its [`ControlStack`] — electronic-ID
//! allow-list (Table VII), MAC, freshness, replay cache,
//! challenge–response — and forwards accepted commands over the
//! [`CanBus`] to the door-lock ECU. Non-command BLE service requests are
//! forwarded to the CAN bus as diagnostic traffic; without gateway rate
//! limiting an attacker can flood the bus through this path and starve
//! the opening function (SG03, the "flooding of the CAN bus by forwarded
//! Bluetooth requests" of §IV-B).
//!
//! Safety goals evaluated: **SG01** keep vehicle closed (no unauthorized
//! open), **SG02** avoid intermittent open/close, **SG03** opening served
//! within its availability budget, **SG04** no closing while a person is
//! entering.

use bytes::Bytes;
use saseval_obs::Obs;
use serde::{Deserialize, Serialize};

use saseval_types::{Ftti, SimTime};
use security_controls::controls::{
    ChallengeResponse, FloodDetector, FreshnessWindow, IdAllowList, MacAuthenticator,
    ReplayDetector,
};
use security_controls::mac::{MacKey, Tag};
use security_controls::{ControlStack, Envelope, SecurityControl, SecurityLog};
use vehicle_net::ble::{BleConfig, BleLink};
use vehicle_net::can::{CanBus, CanBusConfig, CanFrame, CanId};

use crate::config::ControlSelection;
use crate::kernel::EventQueue;
use crate::trace::TraceRecorder;
use crate::AttackerHook;

/// Command byte: open the vehicle.
pub const CMD_OPEN: u8 = 1;
/// Command byte: close the vehicle.
pub const CMD_CLOSE: u8 = 2;
/// Command byte: generic service/diagnostic request (forwarded traffic).
pub const CMD_SERVICE: u8 = 0x10;
/// CAN identifier of body-control (lock) commands.
pub const CAN_LOCK_CMD: u16 = 0x2A0;
/// CAN identifier of forwarded diagnostic traffic (higher priority than
/// lock commands — the flooding lever).
pub const CAN_DIAG: u16 = 0x100;
/// The owner's phone identity.
pub const OWNER_PHONE: &str = "owner-phone";

/// A decoded BLE command frame (33-byte wire layout:
/// `cmd ‖ key_id(8) ‖ ts(8) ‖ challenge_response(8) ‖ tag(8)`).
///
/// The generation timestamp travels *inside* the authenticated payload —
/// a replayed command therefore stays MAC-valid but stale, exactly the
/// situation the §IV-B freshness/challenge–response discussion is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Command {
    /// The command byte ([`CMD_OPEN`], [`CMD_CLOSE`], [`CMD_SERVICE`]).
    pub cmd: u8,
    /// The claimed electronic key ID.
    pub key_id: u64,
    /// Generation timestamp in microseconds of virtual time.
    pub ts: u64,
    /// The challenge response (0 when absent).
    pub response: u64,
    /// The authentication tag (0 when absent).
    pub tag: u64,
}

impl Command {
    /// Encodes the command into its wire layout.
    pub fn encode(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.push(self.cmd);
        out.extend_from_slice(&self.key_id.to_le_bytes());
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.response.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out
    }

    /// Decodes a wire payload; `None` when malformed.
    pub fn decode(payload: &[u8]) -> Option<Command> {
        if payload.len() != 33 {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().expect("8 bytes"));
        Some(Command {
            cmd: payload[0],
            key_id: word(1),
            ts: word(9),
            response: word(17),
            tag: word(25),
        })
    }
}

/// Configuration of the keyless world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeylessConfig {
    /// Simulation tick.
    pub tick: Ftti,
    /// Run horizon.
    pub horizon: Ftti,
    /// Deployed security controls.
    pub controls: ControlSelection,
    /// BLE link parameters.
    pub ble: BleConfig,
    /// CAN bus parameters.
    pub can: CanBusConfig,
    /// The owner's electronic key ID.
    pub owner_key_id: u64,
    /// Availability budget for serving an open request (SG03 FTTI).
    pub open_budget: Ftti,
    /// How long a person is assumed to be entering after an open (SG04).
    pub entry_window: Ftti,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KeylessConfig {
    fn default() -> Self {
        KeylessConfig {
            tick: Ftti::from_millis(10),
            horizon: Ftti::from_secs(30),
            controls: ControlSelection::all(),
            ble: BleConfig::default(),
            can: CanBusConfig { bitrate_bps: 125_000, tx_queue_depth: 64 },
            owner_key_id: 0x0DE5_1234,
            open_budget: Ftti::from_secs(5),
            entry_window: Ftti::from_secs(3),
            seed: 7,
        }
    }
}

/// Outcome of one keyless run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeylessOutcome {
    /// Final lock state (true = open).
    pub lock_open: bool,
    /// First open actuation, if any.
    pub opened_at: Option<SimTime>,
    /// Latency from the owner's request to actuation, if served.
    pub open_latency: Option<Ftti>,
    /// An open actuated with no owner request pending (SG01 violation).
    pub unauthorized_open: bool,
    /// Lock transitions (open↔close) over the run.
    pub transitions: u32,
    /// A close actuated inside the entry window (SG04 violation).
    pub closed_during_entry: bool,
    /// SG01 violated: vehicle did not stay closed against unauthorized
    /// commands.
    pub sg01_violated: bool,
    /// SG02 violated: intermittent open/close.
    pub sg02_violated: bool,
    /// SG03 violated: owner's open not served within the budget.
    pub sg03_violated: bool,
    /// SG04 violated: unintended closing during entry.
    pub sg04_violated: bool,
    /// Senders isolated by the broken-message counter.
    pub isolated_senders: Vec<String>,
    /// When the first sender was isolated (detection latency).
    pub isolated_at: Option<SimTime>,
}

impl KeylessOutcome {
    /// Whether any Use Case II safety goal was violated.
    pub fn any_violation(&self) -> bool {
        self.sg01_violated || self.sg02_violated || self.sg03_violated || self.sg04_violated
    }
}

#[derive(Clone, Copy)]
enum OwnerAction {
    Open,
    Close,
}

/// The running keyless world.
#[derive(Clone)]
pub struct KeylessWorld {
    config: KeylessConfig,
    now: SimTime,
    link: BleLink,
    stack: ControlStack,
    can: CanBus,
    command_key: MacKey,
    config_key: MacKey,
    forward_limiter: Option<FloodDetector>,
    owner_script: EventQueue<OwnerAction>,
    /// Reusable scratch buffers for the per-tick link poll and owner
    /// script drain; keeping them on the world removes the per-tick
    /// allocations from the steady-state step loop.
    frame_buf: Vec<vehicle_net::ble::BleFrame>,
    action_buf: Vec<OwnerAction>,
    lock_open: bool,
    transitions: u32,
    opened_at: Option<SimTime>,
    owner_open_requested_at: Option<SimTime>,
    pending_owner_open: Option<SimTime>,
    open_latency: Option<Ftti>,
    unauthorized_open: bool,
    entering_until: Option<SimTime>,
    closed_during_entry: bool,
    sniffed: Vec<Vec<u8>>,
    trace: TraceRecorder,
    obs: Obs,
    ticks: u64,
}

impl std::fmt::Debug for KeylessWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeylessWorld")
            .field("now", &self.now)
            .field("lock_open", &self.lock_open)
            .field("transitions", &self.transitions)
            .finish()
    }
}

impl KeylessWorld {
    /// Creates the world in its initial (closed, advertising) state.
    pub fn new(config: KeylessConfig) -> Self {
        let command_key = MacKey::new(config.seed ^ 0x4B45_594C); // "KEYL"
        let config_key = MacKey::new(config.seed ^ 0x434F_4E46); // "CONF"
        let mut stack = ControlStack::new("GW");
        let c = config.controls;
        if c.allow_list {
            stack.push(IdAllowList::new([config.owner_key_id], config_key));
        }
        if c.authentication {
            stack.push(MacAuthenticator::new(command_key));
        }
        if c.freshness {
            stack.push(FreshnessWindow::new(Ftti::from_millis(500)));
        }
        if c.replay_protection {
            stack.push(ReplayDetector::new(4_096));
        }
        if c.challenge_response {
            stack.push(ChallengeResponse::new(command_key));
        }
        let forward_limiter = if c.flood_protection {
            // Legitimate companion-app service traffic stays below
            // 20 requests/s.
            Some(FloodDetector::new(20, Ftti::from_secs(1)))
        } else {
            None
        };
        let mut link = BleLink::new(config.ble, config.seed);
        link.start_advertising(SimTime::ZERO);
        let can = CanBus::new(config.can);
        KeylessWorld {
            config,
            now: SimTime::ZERO,
            link,
            stack,
            can,
            command_key,
            config_key,
            forward_limiter,
            owner_script: EventQueue::new(),
            frame_buf: Vec::new(),
            action_buf: Vec::new(),
            lock_open: false,
            transitions: 0,
            opened_at: None,
            owner_open_requested_at: None,
            pending_owner_open: None,
            open_latency: None,
            unauthorized_open: false,
            entering_until: None,
            closed_during_entry: false,
            sniffed: Vec::new(),
            trace: TraceRecorder::new(),
            obs: Obs::noop(),
            ticks: 0,
        }
    }

    /// Attaches a metrics handle. The world emits a
    /// `world.keyless.run_seconds` span, tick/event counters, and
    /// propagates the handle to the BLE link (`net.ble.*`) and the CAN bus
    /// (`net.can.*`).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.link.set_obs(obs.clone());
        self.can.set_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether the vehicle is currently open.
    pub fn lock_open(&self) -> bool {
        self.lock_open
    }

    /// The command MAC key. Table VII's precondition grants the attacker
    /// "an authenticated communication link", so the attack engine may
    /// obtain the key; whether attacks succeed is then up to the
    /// remaining controls (the allow-list, for AD08).
    pub fn command_key(&self) -> MacKey {
        self.command_key
    }

    /// The configuration-write key guarding allow-list changes. Held by
    /// legitimate tooling and, in the insider variant of attack AD24, by
    /// an evil-mechanic attacker.
    pub fn config_key(&self) -> MacKey {
        self.config_key
    }

    /// The BLE link, for attacker injection and jamming.
    pub fn link_mut(&mut self) -> &mut BleLink {
        &mut self.link
    }

    /// All payloads ever sent on the radio — the attacker's eavesdropping
    /// feed (replay attacks record from here).
    pub fn sniffed(&self) -> &[Vec<u8>] {
        &self.sniffed
    }

    /// The gateway's security log.
    pub fn security_log(&self) -> &SecurityLog {
        self.stack.log()
    }

    /// The functional trace.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The world configuration.
    pub fn config(&self) -> &KeylessConfig {
        &self.config
    }

    /// Attempts a configuration write adding `id` to the allow-list
    /// (attack AD24). Returns whether the write was accepted; `None` when
    /// no allow-list is deployed.
    pub fn try_allowlist_write(&mut self, id: u64, auth: Tag) -> Option<bool> {
        self.stack.control_mut::<IdAllowList>("id-allow-list").map(|list| list.try_add(id, auth))
    }

    /// Injects a body-control frame from an exposed CAN stub (attack
    /// AD09: "inject a forged open frame on the CAN bus via a compromised
    /// gateway port"). With gateway filtering enabled the frame is dropped
    /// at the segment boundary and the drop is logged; otherwise it goes
    /// straight to the lock actuator. Returns whether the frame reached
    /// the bus.
    pub fn inject_can_from_stub(&mut self, cmd: u8) -> bool {
        if self.config.controls.can_filtering {
            self.trace.record(
                self.now,
                "gateway",
                "stub-frame-filtered",
                format!("body-control frame {cmd:#x} from untrusted segment dropped"),
            );
            return false;
        }
        let frame = CanFrame::new(
            CanId::new(CAN_LOCK_CMD).expect("const id"),
            Bytes::copy_from_slice(&[cmd]),
            "stub",
        )
        .expect("stub frame");
        self.can.submit(frame, self.now).is_ok()
    }

    /// Schedules the owner to open the vehicle at `at`.
    pub fn schedule_owner_open(&mut self, at: SimTime) {
        self.owner_script.schedule(at, OwnerAction::Open);
    }

    /// Schedules the owner to close the vehicle at `at`.
    pub fn schedule_owner_close(&mut self, at: SimTime) {
        self.owner_script.schedule(at, OwnerAction::Close);
    }

    /// Sends a raw payload on the BLE radio under any sender name — the
    /// attack engine's injection primitive. Connects (or hijacks the
    /// session) if necessary.
    pub fn send_ble(&mut self, sender: &str, payload: Vec<u8>) {
        if !self.link.is_connected() {
            self.link.start_advertising(self.now);
            if self.link.connect(sender, self.now).is_err() {
                return;
            }
        }
        self.sniffed.push(payload.clone());
        let _ = self.link.send(sender, Bytes::from(payload), self.now);
    }

    /// Builds a fully credentialed command as the owner's phone would.
    pub fn owner_command(&mut self, cmd: u8) -> Command {
        let response = match self.stack.control_mut::<ChallengeResponse>("challenge-response") {
            Some(cr) => {
                let nonce = cr.issue(OWNER_PHONE);
                ChallengeResponse::respond(self.command_key, nonce, &[cmd]).raw()
            }
            None => 0,
        };
        let tag = MacAuthenticator::sign(self.command_key, OWNER_PHONE, &[cmd], self.now).raw();
        Command { cmd, key_id: self.config.owner_key_id, ts: self.now.as_micros(), response, tag }
    }

    fn perform_owner_action(&mut self, action: OwnerAction) {
        let cmd = match action {
            OwnerAction::Open => {
                self.owner_open_requested_at.get_or_insert(self.now);
                self.pending_owner_open = Some(self.now);
                self.trace.record(self.now, "owner", "open-requested", "");
                CMD_OPEN
            }
            OwnerAction::Close => {
                self.trace.record(self.now, "owner", "close-requested", "");
                CMD_CLOSE
            }
        };
        let command = self.owner_command(cmd);
        self.send_ble(OWNER_PHONE, command.encode());
    }

    fn gateway_tick(&mut self) {
        let mut frames = std::mem::take(&mut self.frame_buf);
        self.link.poll_into(self.now, &mut frames);
        for frame in frames.drain(..) {
            if self.stack.is_isolated(&frame.sender) {
                continue;
            }
            let Some(command) = Command::decode(&frame.payload) else { continue };
            if command.cmd == CMD_SERVICE {
                // Forwarded service traffic: subject only to the gateway
                // rate limiter, then placed on the CAN bus as diagnostic
                // frames (the §IV-B flooding path).
                if let Some(limiter) = &mut self.forward_limiter {
                    let env = Envelope::new(frame.sender.clone(), frame.sent_at, Vec::new());
                    if limiter.check(&env, self.now).is_err() {
                        continue;
                    }
                }
                let diag = CanFrame::new(
                    CanId::new(CAN_DIAG).expect("const id"),
                    Bytes::from_static(&[CMD_SERVICE]),
                    "GW",
                )
                .expect("diag frame");
                let _ = self.can.submit(diag, self.now);
                continue;
            }
            let mut envelope = Envelope::new(
                frame.sender.clone(),
                SimTime::from_micros(command.ts),
                vec![command.cmd],
            )
            .with_claimed_id(command.key_id);
            if command.tag != 0 {
                envelope = envelope.with_tag(Tag::from_raw(command.tag));
            }
            if command.response != 0 {
                envelope = envelope.with_challenge_response(Tag::from_raw(command.response));
            }
            if !self.stack.admit(&envelope, self.now).is_accepted() {
                continue;
            }
            let lock_cmd = CanFrame::new(
                CanId::new(CAN_LOCK_CMD).expect("const id"),
                Bytes::copy_from_slice(&[command.cmd]),
                "GW",
            )
            .expect("lock frame");
            let _ = self.can.submit(lock_cmd, self.now);
        }
        self.frame_buf = frames;
    }

    fn actuator_tick(&mut self) {
        for delivery in self.can.advance(self.now) {
            if delivery.frame.id().raw() != CAN_LOCK_CMD {
                continue;
            }
            match delivery.frame.payload().first() {
                Some(&CMD_OPEN) if !self.lock_open => {
                    self.lock_open = true;
                    self.transitions += 1;
                    self.opened_at.get_or_insert(delivery.completed_at);
                    self.entering_until = Some(delivery.completed_at + self.config.entry_window);
                    match self.pending_owner_open.take() {
                        Some(req) => {
                            if self.open_latency.is_none() {
                                self.open_latency = Some(delivery.completed_at - req);
                            }
                        }
                        None => self.unauthorized_open = true,
                    }
                    self.trace.record(delivery.completed_at, "lock-actuator", "lock-open", "");
                }
                Some(&CMD_CLOSE) if self.lock_open => {
                    self.lock_open = false;
                    self.transitions += 1;
                    if self.entering_until.is_some_and(|until| delivery.completed_at < until) {
                        self.closed_during_entry = true;
                    }
                    self.trace.record(delivery.completed_at, "lock-actuator", "lock-close", "");
                }
                _ => {}
            }
        }
    }

    fn finish(self) -> KeylessOutcome {
        let owner_requested = self.owner_open_requested_at.is_some();
        let served_in_budget =
            self.open_latency.is_some_and(|latency| latency <= self.config.open_budget);
        let isolation_events: Vec<_> = self
            .stack
            .log()
            .events()
            .iter()
            .filter(|e| e.detail.contains("unwanted sender"))
            .collect();
        let isolated_at = isolation_events.first().map(|e| e.at);
        let isolated_senders = isolation_events.iter().map(|e| e.sender.clone()).collect();
        KeylessOutcome {
            lock_open: self.lock_open,
            opened_at: self.opened_at,
            open_latency: self.open_latency,
            unauthorized_open: self.unauthorized_open,
            transitions: self.transitions,
            closed_during_entry: self.closed_during_entry,
            sg01_violated: self.unauthorized_open,
            sg02_violated: self.transitions > 2,
            sg03_violated: owner_requested && !served_in_budget,
            sg04_violated: self.closed_during_entry,
            isolated_senders,
            isolated_at,
        }
    }

    /// Whether the run has reached the horizon.
    pub fn is_done(&self) -> bool {
        self.now >= SimTime::ZERO + self.config.horizon
    }

    /// Performs one tick under the given attacker. Returns whether a tick
    /// was performed (`false` once [`KeylessWorld::is_done`]).
    pub fn step(&mut self, attacker: &mut dyn AttackerHook<KeylessWorld>) -> bool {
        if self.is_done() {
            return false;
        }
        let now = self.now;
        attacker.on_tick(self, now);
        self.tick_body();
        true
    }

    /// The attacker-independent part of one tick: owner-script drain
    /// (via the allocation-free [`EventQueue::pop_due_into`]), gateway
    /// admission, lock actuation, time advance.
    pub(crate) fn tick_body(&mut self) {
        let mut actions = std::mem::take(&mut self.action_buf);
        self.owner_script.pop_due_into(self.now, &mut actions);
        for action in actions.drain(..) {
            self.perform_owner_action(action);
        }
        self.action_buf = actions;
        self.gateway_tick();
        self.actuator_tick();
        self.now += self.config.tick;
        self.ticks += 1;
    }

    /// Steps until virtual time reaches `until` (or the run ends).
    pub fn run_until(&mut self, until: SimTime, attacker: &mut dyn AttackerHook<KeylessWorld>) {
        while self.now < until && self.step(attacker) {}
    }

    /// Deep-copies the world; the fork replays bit-identically to a
    /// from-scratch run brought to the same state, then diverges
    /// independently (owner script, challenge nonces and replay caches
    /// included).
    pub fn fork(&self) -> KeylessWorld {
        self.clone()
    }

    /// Freezes the current state as a copy-on-write snapshot to fork many
    /// runs from a warm common prefix.
    pub fn snapshot(&self) -> crate::WorldSnapshot<KeylessWorld> {
        crate::WorldSnapshot::new(self.clone())
    }

    /// Builds an attacker-free world under `config`, runs it to `at` and
    /// freezes it — the warm prefix a long-running service keeps resident
    /// so repeat jobs over the same scenario never pay world
    /// construction.
    pub fn warm_snapshot(config: KeylessConfig, at: SimTime) -> crate::WorldSnapshot<KeylessWorld> {
        let mut world = KeylessWorld::new(config);
        world.run_until(at, &mut ());
        world.snapshot()
    }

    /// Consumes the world and evaluates the safety goals on its current
    /// state, flushing the tick/event counters. [`KeylessWorld::run`] is
    /// stepping to completion followed by this.
    pub fn into_outcome(self) -> KeylessOutcome {
        self.obs.counter("world.keyless.ticks", self.ticks);
        self.obs.counter("sim.events.scheduled", self.owner_script.scheduled_total());
        self.obs.counter("sim.events.popped", self.owner_script.popped_total());
        self.finish()
    }

    /// Runs the world to the horizon under the given attacker.
    pub fn run(mut self, attacker: &mut dyn AttackerHook<KeylessWorld>) -> KeylessOutcome {
        let span = self.obs.span("world.keyless.run_seconds");
        while self.step(attacker) {}
        self.obs.counter("world.keyless.ticks", self.ticks);
        self.obs.counter("sim.events.scheduled", self.owner_script.scheduled_total());
        self.obs.counter("sim.events.popped", self.owner_script.popped_total());
        span.finish();
        self.finish()
    }

    /// Runs the world without an attacker.
    pub fn run_nominal(self) -> KeylessOutcome {
        self.run(&mut ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> KeylessWorld {
        KeylessWorld::new(KeylessConfig::default())
    }

    #[test]
    fn command_wire_round_trip() {
        let cmd = Command { cmd: CMD_OPEN, key_id: 0xABCD, ts: 3, response: 7, tag: 99 };
        assert_eq!(Command::decode(&cmd.encode()), Some(cmd));
        assert_eq!(Command::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn owner_opens_and_closes_nominally() {
        let mut w = world();
        w.schedule_owner_open(SimTime::from_secs(1));
        w.schedule_owner_close(SimTime::from_secs(5));
        let outcome = w.run_nominal();
        assert!(outcome.opened_at.is_some(), "{outcome:?}");
        assert!(!outcome.lock_open, "closed again at the end");
        assert_eq!(outcome.transitions, 2);
        assert!(!outcome.sg01_violated);
        assert!(!outcome.sg02_violated);
        assert!(!outcome.sg03_violated);
        // The owner closing after the 3 s entry window is not a SG04
        // violation.
        assert!(!outcome.sg04_violated, "{outcome:?}");
        let latency = outcome.open_latency.unwrap();
        assert!(latency <= Ftti::from_millis(100), "latency {latency}");
    }

    #[test]
    fn nominal_without_any_request_stays_closed() {
        let outcome = world().run_nominal();
        assert!(!outcome.lock_open);
        assert_eq!(outcome.transitions, 0);
        assert!(!outcome.sg01_violated);
        assert!(!outcome.sg03_violated, "no request, no availability demand");
    }

    #[test]
    fn forged_key_id_rejected_with_allow_list() {
        // AD08 with the allow-list deployed: "Opening is rejected".
        struct Spoof;
        impl AttackerHook<KeylessWorld> for Spoof {
            fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
                if now == SimTime::from_millis(100) {
                    let tag =
                        MacAuthenticator::sign(world.command_key(), "attacker", &[CMD_OPEN], now)
                            .raw();
                    let cmd = Command {
                        cmd: CMD_OPEN,
                        key_id: 0xBAD,
                        ts: now.as_micros(),
                        response: 0,
                        tag,
                    };
                    world.send_ble("attacker", cmd.encode());
                }
            }
        }
        let config = KeylessConfig {
            controls: ControlSelection { challenge_response: false, ..ControlSelection::all() },
            ..Default::default()
        };
        let outcome = KeylessWorld::new(config).run(&mut Spoof);
        assert!(!outcome.lock_open);
        assert!(!outcome.sg01_violated);
    }

    #[test]
    fn forged_key_id_opens_without_allow_list() {
        // AD08 without the control: "Open the vehicle".
        struct Spoof;
        impl AttackerHook<KeylessWorld> for Spoof {
            fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
                if now == SimTime::from_millis(100) {
                    let tag =
                        MacAuthenticator::sign(world.command_key(), "attacker", &[CMD_OPEN], now)
                            .raw();
                    let cmd = Command {
                        cmd: CMD_OPEN,
                        key_id: 0xBAD,
                        ts: now.as_micros(),
                        response: 0,
                        tag,
                    };
                    world.send_ble("attacker", cmd.encode());
                }
            }
        }
        let config = KeylessConfig {
            controls: ControlSelection {
                allow_list: false,
                challenge_response: false,
                ..ControlSelection::all()
            },
            ..Default::default()
        };
        let outcome = KeylessWorld::new(config).run(&mut Spoof);
        assert!(outcome.lock_open);
        assert!(outcome.sg01_violated);
    }

    #[test]
    fn allowlist_config_write_requires_auth() {
        let mut w = world();
        assert_eq!(w.try_allowlist_write(0xEE01, Tag::from_raw(1)), Some(false));
        let auth = IdAllowList::write_auth(w.config_key, 0xEE01);
        assert_eq!(w.try_allowlist_write(0xEE01, auth), Some(true));
    }

    #[test]
    fn can_flooding_starves_owner_open_without_flood_control() {
        // AD14: forwarded service requests saturate the CAN bus.
        struct Flood;
        impl AttackerHook<KeylessWorld> for Flood {
            fn on_tick(&mut self, world: &mut KeylessWorld, _now: SimTime) {
                for _ in 0..30 {
                    let cmd = Command { cmd: CMD_SERVICE, key_id: 0, ts: 0, response: 0, tag: 0 };
                    world.send_ble("attacker", cmd.encode());
                }
            }
        }
        let config = KeylessConfig {
            controls: ControlSelection { flood_protection: false, ..ControlSelection::all() },
            horizon: Ftti::from_secs(10),
            ..Default::default()
        };
        let mut w = KeylessWorld::new(config);
        w.schedule_owner_open(SimTime::from_secs(1));
        let outcome = w.run(&mut Flood);
        assert!(outcome.sg03_violated, "{outcome:?}");
    }

    #[test]
    fn can_flooding_mitigated_by_flood_control() {
        struct Flood;
        impl AttackerHook<KeylessWorld> for Flood {
            fn on_tick(&mut self, world: &mut KeylessWorld, _now: SimTime) {
                for _ in 0..30 {
                    let cmd = Command { cmd: CMD_SERVICE, key_id: 0, ts: 0, response: 0, tag: 0 };
                    world.send_ble("attacker", cmd.encode());
                }
            }
        }
        let config = KeylessConfig { horizon: Ftti::from_secs(10), ..Default::default() };
        let mut w = KeylessWorld::new(config);
        w.schedule_owner_open(SimTime::from_secs(1));
        let outcome = w.run(&mut Flood);
        assert!(!outcome.sg03_violated, "{outcome:?}");
        assert!(outcome.open_latency.is_some());
    }

    #[test]
    fn replayed_open_rejected_with_replay_protection() {
        // AD01: the attacker replays the owner's recorded open exchange.
        struct Replay {
            done: bool,
        }
        impl AttackerHook<KeylessWorld> for Replay {
            fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
                // Wait until the owner's frame is on the air, then replay
                // it after the owner closed again.
                if !self.done && now >= SimTime::from_secs(8) {
                    if let Some(frame) = world.sniffed().first().cloned() {
                        world.send_ble(OWNER_PHONE, frame);
                        self.done = true;
                    }
                }
            }
        }
        let config = KeylessConfig {
            controls: ControlSelection { challenge_response: false, ..ControlSelection::all() },
            ..Default::default()
        };
        let mut w = KeylessWorld::new(config);
        w.schedule_owner_open(SimTime::from_secs(1));
        w.schedule_owner_close(SimTime::from_secs(5));
        let outcome = w.run(&mut Replay { done: false });
        assert!(!outcome.lock_open, "replay must not reopen: {outcome:?}");
        assert_eq!(outcome.transitions, 2);
    }

    #[test]
    fn replayed_open_succeeds_with_auth_only() {
        // §IV-B: replay works despite valid end-to-end authentication.
        struct Replay {
            done: bool,
        }
        impl AttackerHook<KeylessWorld> for Replay {
            fn on_tick(&mut self, world: &mut KeylessWorld, now: SimTime) {
                if !self.done && now >= SimTime::from_secs(8) {
                    if let Some(frame) = world.sniffed().first().cloned() {
                        world.send_ble(OWNER_PHONE, frame);
                        self.done = true;
                    }
                }
            }
        }
        let config = KeylessConfig {
            controls: ControlSelection {
                authentication: true,
                allow_list: true,
                ..ControlSelection::none()
            },
            ..Default::default()
        };
        let mut w = KeylessWorld::new(config);
        w.schedule_owner_open(SimTime::from_secs(1));
        w.schedule_owner_close(SimTime::from_secs(5));
        let outcome = w.run(&mut Replay { done: false });
        assert!(outcome.lock_open, "replay reopens the vehicle: {outcome:?}");
        assert!(outcome.sg01_violated, "reopening without a pending request violates SG01");
        assert!(outcome.transitions >= 3);
    }
}
