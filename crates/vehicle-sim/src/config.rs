//! Shared simulation configuration types.

use serde::{Deserialize, Serialize};

/// Which security controls a simulated SUT deploys.
///
//  The control-ablation benches sweep subsets of this struct to show which
//  control defeats which Table IV attack type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlSelection {
    /// Message authentication (MAC over sender, payload, timestamp).
    pub authentication: bool,
    /// Freshness window on generation timestamps.
    pub freshness: bool,
    /// Replay cache.
    pub replay_protection: bool,
    /// Per-sender rate limiting / broken-message counter (Table VI).
    pub flood_protection: bool,
    /// Content plausibility checks (speed-limit range, …).
    pub plausibility: bool,
    /// Electronic-ID allow-list (Table VII; keyless world only).
    pub allow_list: bool,
    /// Challenge–response on commands (§IV-B; keyless world only).
    pub challenge_response: bool,
    /// Gateway filtering of body-control frames from untrusted CAN
    /// segments (the expected measure of attack AD09; keyless world only).
    pub can_filtering: bool,
}

impl ControlSelection {
    /// Every control enabled — the fully defended SUT.
    pub fn all() -> Self {
        ControlSelection {
            authentication: true,
            freshness: true,
            replay_protection: true,
            flood_protection: true,
            plausibility: true,
            allow_list: true,
            challenge_response: true,
            can_filtering: true,
        }
    }

    /// No controls — the undefended baseline.
    pub fn none() -> Self {
        ControlSelection {
            authentication: false,
            freshness: false,
            replay_protection: false,
            flood_protection: false,
            plausibility: false,
            allow_list: false,
            challenge_response: false,
            can_filtering: false,
        }
    }

    /// Authentication and encryption-style controls only — the
    /// configuration the paper argues is *insufficient* ("attacks that
    /// may occur despite having a valid end-to-end encryption", §IV-B).
    pub fn auth_only() -> Self {
        ControlSelection { authentication: true, ..Self::none() }
    }

    /// Number of enabled controls.
    pub fn enabled_count(self) -> usize {
        [
            self.authentication,
            self.freshness,
            self.replay_protection,
            self.flood_protection,
            self.plausibility,
            self.allow_list,
            self.challenge_response,
            self.can_filtering,
        ]
        .into_iter()
        .filter(|b| *b)
        .count()
    }
}

impl Default for ControlSelection {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(ControlSelection::all().enabled_count(), 8);
        assert_eq!(ControlSelection::none().enabled_count(), 0);
        assert_eq!(ControlSelection::auth_only().enabled_count(), 1);
        assert!(ControlSelection::auth_only().authentication);
        assert!(!ControlSelection::auth_only().replay_protection);
        assert_eq!(ControlSelection::default(), ControlSelection::all());
    }
}
