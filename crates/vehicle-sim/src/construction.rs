//! Use Case I world: autonomous vehicle approaching a construction site
//! (paper §IV-A, Fig. 2).
//!
//! The road-side unit (RSU) periodically broadcasts signed road-works
//! warnings and speed-limit signage over the V2X channel once the vehicle
//! is in range. The on-board unit (OBU) admits messages through its
//! [`ControlStack`], surfaces the warning, and requests a driver
//! take-over; the driver reacts after their reaction time and brakes to
//! the zone speed. The OBU has a finite processing budget per tick and a
//! bounded ingress queue — saturating it shuts the service down, which is
//! attack AD20's success criterion ("Shutdown of service", Table VI).
//!
//! The world evaluates the Use Case I safety goals directly:
//!
//! * **SG01** violated when the vehicle enters the work zone without
//!   control having returned to the driver.
//! * **SG02** violated when control switches more often than the nominal
//!   hand-over sequence allows.
//! * **SG03** violated when an accepted signage limit exceeds the true
//!   zone limit.
//! * **SG04** violated when the take-over completes only after zone entry
//!   (warning missing or too late).

use std::collections::VecDeque;

use bytes::Bytes;
use saseval_obs::Obs;
use serde::{Deserialize, Serialize};

use saseval_types::{Ftti, SimTime};
use security_controls::controls::{
    FloodDetector, FreshnessWindow, MacAuthenticator, PlausibilityCheck, ReplayDetector,
};
use security_controls::mac::MacKey;
use security_controls::{ControlStack, Envelope, SecurityLog};
use vehicle_net::v2x::{V2xChannel, V2xConfig, V2xMessage};

use crate::config::ControlSelection;
use crate::trace::TraceRecorder;
use crate::vehicle::{ControlMode, Driver, Vehicle};
use crate::AttackerHook;

/// Payload type byte: road-works warning.
pub const MSG_ROADWORKS: u8 = 1;
/// Payload type byte: speed-limit signage.
pub const MSG_SIGNAGE: u8 = 2;
/// Payload type byte: control-release (automation may resume).
pub const MSG_RELEASE: u8 = 3;
/// The legitimate road-side unit's identity.
pub const RSU_SENDER: &str = "RSU-1";

/// Configuration of the construction-site world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstructionConfig {
    /// Initial (automated) cruise speed in m/s.
    pub initial_speed_mps: f64,
    /// Position of the work-zone entry in metres from the start.
    pub site_position_m: f64,
    /// RSU communication range in metres before the site.
    pub rsu_range_m: f64,
    /// Period between RSU warning broadcasts.
    pub warn_period: Ftti,
    /// True speed limit inside the zone in km/h.
    pub zone_speed_limit_kmh: u8,
    /// The driver model.
    pub driver: Driver,
    /// Simulation tick.
    pub tick: Ftti,
    /// Give-up horizon.
    pub horizon: Ftti,
    /// Messages the OBU can admit per tick while the service is alive.
    pub obu_budget_per_tick: usize,
    /// Ingress queue bound; overflowing it shuts the service down.
    pub obu_queue_limit: usize,
    /// Deployed security controls.
    pub controls: ControlSelection,
    /// V2X channel parameters.
    pub v2x: V2xConfig,
    /// RNG seed for the channel.
    pub seed: u64,
    /// Background traffic: number of other vehicles (`BG-i` senders)
    /// periodically broadcasting unauthenticated status messages. Zero —
    /// the default — adds no messages and no channel RNG draws, so
    /// default-config traces are bit-identical to earlier revisions.
    #[serde(default)]
    pub background_senders: u16,
    /// Platoon followers trailing the ego vehicle. Each follower `i`
    /// drives at `(i + 1) × platoon_spacing_m` behind the ego position
    /// and starts broadcasting status messages once it passes the road
    /// origin. Zero disables the platoon entirely.
    #[serde(default)]
    pub platoon_followers: u16,
    /// Gap between consecutive platoon vehicles in metres.
    #[serde(default)]
    pub platoon_spacing_m: f64,
    /// Additional road-side units (`RSU-2`, `RSU-3`, …) rebroadcasting
    /// the signed warning/signage pair on the same period. Zero — the
    /// default — leaves only the single demonstrator RSU.
    #[serde(default)]
    pub extra_rsus: u16,
}

impl Default for ConstructionConfig {
    fn default() -> Self {
        ConstructionConfig {
            initial_speed_mps: 25.0,
            site_position_m: 1_500.0,
            rsu_range_m: 800.0,
            warn_period: Ftti::from_millis(100),
            zone_speed_limit_kmh: 60,
            driver: Driver::default(),
            tick: Ftti::from_millis(10),
            horizon: Ftti::from_secs(180),
            obu_budget_per_tick: 16,
            obu_queue_limit: 256,
            controls: ControlSelection::all(),
            v2x: V2xConfig { latency_us: 2_000, jitter_us: 500, loss_prob: 0.01 },
            seed: 42,
            background_senders: 0,
            platoon_followers: 0,
            platoon_spacing_m: 0.0,
            extra_rsus: 0,
        }
    }
}

/// Outcome of one construction-site run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstructionOutcome {
    /// When the vehicle entered the work zone (or the horizon elapsed).
    pub entered_zone_at: SimTime,
    /// Speed at zone entry in m/s.
    pub entry_speed_mps: f64,
    /// Whether the vehicle was still under automated control at entry.
    pub entered_automated: bool,
    /// Whether the OBU service shut down (AD20 success criterion).
    pub service_shutdown: bool,
    /// When the take-over was requested, if ever.
    pub takeover_requested_at: Option<SimTime>,
    /// When the driver had manual control, if ever.
    pub manual_at: Option<SimTime>,
    /// Number of control-mode transitions.
    pub mode_switches: u32,
    /// The last accepted signage limit, if any.
    pub applied_limit_kmh: Option<u8>,
    /// SG01 violated: zone entered without control returned to the human.
    pub sg01_violated: bool,
    /// SG02 violated: intermittent control switches.
    pub sg02_violated: bool,
    /// SG03 violated: unsafe speed limit accepted.
    pub sg03_violated: bool,
    /// SG04 violated: take-over missing or completed after zone entry.
    pub sg04_violated: bool,
    /// Senders the broken-message counter isolated (Table VI fail
    /// criterion).
    pub isolated_senders: Vec<String>,
    /// When the first sender was isolated — the detection latency the
    /// flood-sweep ablation reports against the FTTI.
    pub isolated_at: Option<SimTime>,
    /// Warnings accepted while no site was in RSU range — the
    /// "too many unintended warnings" class behind SG05 (attack AD17).
    pub unintended_warnings: u32,
}

impl ConstructionOutcome {
    /// How long the driver had manual control before zone entry — the
    /// safety margin the take-over chain produced. `None` when the driver
    /// never had control before entry.
    pub fn takeover_margin(&self) -> Option<saseval_types::Ftti> {
        self.manual_at.filter(|at| *at < self.entered_zone_at).map(|at| self.entered_zone_at - at)
    }
}

impl ConstructionOutcome {
    /// Whether any Use Case I safety goal was violated.
    pub fn any_violation(&self) -> bool {
        self.sg01_violated || self.sg02_violated || self.sg03_violated || self.sg04_violated
    }
}

/// The running world. Attacker hooks receive `&mut ConstructionWorld` and
/// may inject, replay, alter or jam via [`ConstructionWorld::channel_mut`]
/// and the message helpers.
#[derive(Clone)]
pub struct ConstructionWorld {
    config: ConstructionConfig,
    now: SimTime,
    vehicle: Vehicle,
    mode: ControlMode,
    channel: V2xChannel,
    stack: ControlStack,
    rsu_key: MacKey,
    obu_queue: VecDeque<V2xMessage>,
    /// Reusable scratch buffer for per-tick channel polls; draining into
    /// it keeps the steady-state step loop free of per-tick allocation.
    delivery_buf: Vec<V2xMessage>,
    service_alive: bool,
    next_broadcast: Option<SimTime>,
    applied_limit_kmh: Option<u8>,
    unsafe_limit_accepted: bool,
    unintended_warnings: u32,
    mode_switches: u32,
    takeover_requested_at: Option<SimTime>,
    manual_at: Option<SimTime>,
    sniffed: Vec<V2xMessage>,
    trace: TraceRecorder,
    obs: Obs,
    ticks: u64,
    entered_zone: bool,
}

impl std::fmt::Debug for ConstructionWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstructionWorld")
            .field("now", &self.now)
            .field("position_m", &self.vehicle.position_m())
            .field("mode", &self.mode)
            .field("service_alive", &self.service_alive)
            .finish()
    }
}

impl ConstructionWorld {
    /// Creates the world in its initial state.
    pub fn new(config: ConstructionConfig) -> Self {
        let rsu_key = MacKey::new(config.seed ^ 0x5256_5355); // "RSU"-flavoured
        let mut stack = ControlStack::new("OBU");
        let c = config.controls;
        if c.authentication {
            stack.push(MacAuthenticator::new(rsu_key));
        }
        if c.freshness {
            stack.push(FreshnessWindow::new(Ftti::from_millis(500)));
        }
        if c.replay_protection {
            stack.push(ReplayDetector::new(4_096));
        }
        if c.flood_protection {
            // The legitimate RSU sends ~20 messages/s (warning + signage
            // per 100 ms); 30/s leaves headroom.
            stack.push(FloodDetector::new(30, Ftti::from_secs(1)));
        }
        if c.plausibility {
            stack.push(PlausibilityCheck::new("signage-plausibility", |env, _| {
                match env.payload() {
                    [MSG_SIGNAGE, limit, ..] if !(5..=130).contains(limit) => {
                        Err(format!("speed limit {limit} outside [5, 130]"))
                    }
                    _ => Ok(()),
                }
            }));
        }
        let vehicle = Vehicle::new(config.initial_speed_mps);
        let channel = V2xChannel::new(config.v2x, config.seed);
        ConstructionWorld {
            config,
            now: SimTime::ZERO,
            vehicle,
            mode: ControlMode::Automated,
            channel,
            stack,
            rsu_key,
            obu_queue: VecDeque::new(),
            delivery_buf: Vec::new(),
            service_alive: true,
            next_broadcast: None,
            applied_limit_kmh: None,
            unsafe_limit_accepted: false,
            unintended_warnings: 0,
            mode_switches: 0,
            takeover_requested_at: None,
            manual_at: None,
            sniffed: Vec::new(),
            trace: TraceRecorder::new(),
            obs: Obs::noop(),
            ticks: 0,
            entered_zone: false,
        }
    }

    /// Attaches a metrics handle. The world emits a
    /// `world.construction.run_seconds` span, tick/event counters, and
    /// propagates the handle to the V2X channel (`net.v2x.*`).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.channel.set_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The vehicle state.
    pub fn vehicle(&self) -> &Vehicle {
        &self.vehicle
    }

    /// The current control mode.
    pub fn mode(&self) -> ControlMode {
        self.mode
    }

    /// Whether the OBU service is still alive.
    pub fn service_alive(&self) -> bool {
        self.service_alive
    }

    /// The RSU's signing key. Table VI's implementation comment requires
    /// an *authenticated* attacker ("create an authenticated sender as
    /// attacker besides the original sender"), so the attack engine may
    /// obtain the key.
    pub fn rsu_key(&self) -> MacKey {
        self.rsu_key
    }

    /// Mutable access to the V2X channel for injection and jamming.
    pub fn channel_mut(&mut self) -> &mut V2xChannel {
        &mut self.channel
    }

    /// Every genuine RSU broadcast so far — the attacker's eavesdropping
    /// feed (replay and delay attacks record from here).
    pub fn sniffed(&self) -> &[V2xMessage] {
        &self.sniffed
    }

    /// The OBU's security log.
    pub fn security_log(&self) -> &SecurityLog {
        self.stack.log()
    }

    /// The functional trace.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The world configuration.
    pub fn config(&self) -> &ConstructionConfig {
        &self.config
    }

    /// Builds a correctly signed message from `sender` — used by the RSU
    /// and by authenticated attackers (AD20).
    pub fn signed_message(&self, sender: &str, payload: &[u8], at: SimTime) -> V2xMessage {
        let tag = MacAuthenticator::sign(self.rsu_key, sender, payload, at);
        V2xMessage::new(
            sender,
            u16::from(payload.first().copied().unwrap_or(0)),
            Bytes::copy_from_slice(payload),
            at,
        )
        .with_auth_tag(tag.raw())
    }

    fn rsu_tick(&mut self) {
        let distance_to_site = self.config.site_position_m - self.vehicle.position_m();
        if distance_to_site > self.config.rsu_range_m || distance_to_site <= 0.0 {
            return;
        }
        let due = match self.next_broadcast {
            None => true,
            Some(at) => self.now >= at,
        };
        if !due {
            return;
        }
        self.next_broadcast = Some(self.now + self.config.warn_period);
        let distance_dm = (distance_to_site / 10.0).clamp(0.0, 255.0) as u8;
        let warning = self.signed_message(RSU_SENDER, &[MSG_ROADWORKS, distance_dm], self.now);
        self.sniffed.push(warning.clone());
        self.channel.broadcast(warning, self.now);
        let signage = self.signed_message(
            RSU_SENDER,
            &[MSG_SIGNAGE, self.config.zone_speed_limit_kmh],
            self.now,
        );
        self.sniffed.push(signage.clone());
        self.channel.broadcast(signage, self.now);
        // Additional road-side units rebroadcast the same signed pair
        // from their own sender identities on the shared period —
        // infrastructure density as a scenario dimension.
        for k in 0..self.config.extra_rsus {
            let sender = format!("RSU-{}", k + 2);
            let warning = self.signed_message(&sender, &[MSG_ROADWORKS, distance_dm], self.now);
            self.channel.broadcast(warning, self.now);
            let signage = self.signed_message(
                &sender,
                &[MSG_SIGNAGE, self.config.zone_speed_limit_kmh],
                self.now,
            );
            self.channel.broadcast(signage, self.now);
        }
    }

    /// Payload type byte of background-traffic status messages. Not one
    /// of the `MSG_*` command bytes, so an admitted status message is
    /// channel load only.
    const MSG_TRAFFIC: u8 = 0xCA;
    /// Payload type byte of platoon-follower status messages.
    const MSG_PLATOON: u8 = 0xCB;
    /// Ticks between consecutive status broadcasts of one background or
    /// platoon sender (100 ms at the default 10 ms tick).
    const STATUS_PERIOD_TICKS: u64 = 10;

    /// Background traffic and platoon followers: unauthenticated status
    /// broadcasts that load the channel, the OBU ingress queue and — with
    /// authentication armed — the broken-message isolation counters.
    /// Follower positions are derived from the ego position (follower `i`
    /// trails by `(i + 1) × platoon_spacing_m`), so followers only start
    /// transmitting once they pass the road origin. With both counts at
    /// zero (the default) this is a no-op that draws no channel RNG.
    fn traffic_tick(&mut self) {
        if self.config.background_senders == 0 && self.config.platoon_followers == 0 {
            return;
        }
        if !self.ticks.is_multiple_of(Self::STATUS_PERIOD_TICKS) {
            return;
        }
        for i in 0..self.config.background_senders {
            let msg = V2xMessage::new(
                format!("BG-{i}"),
                u16::from(Self::MSG_TRAFFIC),
                Bytes::copy_from_slice(&[Self::MSG_TRAFFIC, i as u8]),
                self.now,
            );
            self.channel.broadcast(msg, self.now);
        }
        for i in 0..self.config.platoon_followers {
            let trail = f64::from(i + 1) * self.config.platoon_spacing_m;
            if self.vehicle.position_m() - trail < 0.0 {
                continue;
            }
            let msg = V2xMessage::new(
                format!("PLT-{i}"),
                u16::from(Self::MSG_PLATOON),
                Bytes::copy_from_slice(&[Self::MSG_PLATOON, i as u8]),
                self.now,
            );
            self.channel.broadcast(msg, self.now);
        }
    }

    fn obu_tick(&mut self) {
        let mut delivered = std::mem::take(&mut self.delivery_buf);
        self.channel.poll_into(self.now, &mut delivered);
        for msg in delivered.drain(..) {
            // Messages from isolated senders are shed at ingress — the
            // "enforce change of frequency" effect of Table VI.
            if self.stack.is_isolated(msg.sender()) {
                continue;
            }
            self.obu_queue.push_back(msg);
        }
        self.delivery_buf = delivered;
        if self.obu_queue.len() > self.config.obu_queue_limit && self.service_alive {
            self.service_alive = false;
            self.trace.record(
                self.now,
                "OBU",
                "service-shutdown",
                format!("ingress queue exceeded {} messages", self.config.obu_queue_limit),
            );
        }
        if !self.service_alive {
            return;
        }
        for _ in 0..self.config.obu_budget_per_tick {
            let Some(msg) = self.obu_queue.pop_front() else { break };
            let mut envelope =
                Envelope::new(msg.sender(), msg.generated_at(), msg.payload().to_vec());
            if let Some(tag) = msg.auth_tag() {
                envelope = envelope.with_tag(security_controls::mac::Tag::from_raw(tag));
            }
            if !self.stack.admit(&envelope, self.now).is_accepted() {
                continue;
            }
            match *msg.payload().as_ref() {
                [MSG_ROADWORKS, ..] => {
                    let distance = self.config.site_position_m - self.vehicle.position_m();
                    if distance > self.config.rsu_range_m || distance <= 0.0 {
                        // A warning surfaced although no site is in range —
                        // the "unintended warnings" class behind SG05.
                        self.unintended_warnings += 1;
                        self.trace.record(
                            self.now,
                            "OBU",
                            "unintended-warning",
                            "warning accepted outside any site's RSU range",
                        );
                    }
                    if matches!(self.mode, ControlMode::Automated) {
                        let complete_at = self.now + self.config.driver.reaction;
                        self.mode = ControlMode::TakeOverRequested { complete_at };
                        self.mode_switches += 1;
                        self.takeover_requested_at.get_or_insert(self.now);
                        self.trace.record(
                            self.now,
                            "OBU",
                            "take-over-requested",
                            "road-works warning surfaced to driver",
                        );
                    }
                }
                [MSG_SIGNAGE, limit, ..] => {
                    if limit > self.config.zone_speed_limit_kmh {
                        self.unsafe_limit_accepted = true;
                    }
                    if self.applied_limit_kmh != Some(limit) {
                        self.applied_limit_kmh = Some(limit);
                        self.trace.record(
                            self.now,
                            "OBU",
                            "limit-applied",
                            format!("{limit} km/h"),
                        );
                    }
                }
                [MSG_RELEASE, ..] if !matches!(self.mode, ControlMode::Automated) => {
                    self.mode = ControlMode::Automated;
                    self.mode_switches += 1;
                    self.trace.record(self.now, "OBU", "control-released", "automation resumed");
                }
                _ => {}
            }
        }
    }

    /// Driver take-over completion and acceleration decision — the
    /// per-world part of a tick that precedes the (batchable) kinematics
    /// integration.
    fn driver_decision_tick(&mut self) {
        if let ControlMode::TakeOverRequested { complete_at } = self.mode {
            if self.now >= complete_at {
                self.mode = ControlMode::Manual;
                self.mode_switches += 1;
                self.manual_at.get_or_insert(self.now);
                self.trace.record(self.now, "driver", "manual-control", "driver has taken over");
            }
        }
        let zone_speed_mps = f64::from(self.config.zone_speed_limit_kmh) / 3.6;
        match self.mode {
            ControlMode::Manual => {
                if self.vehicle.speed_mps() > zone_speed_mps {
                    self.vehicle.set_accel(-self.config.driver.braking_mps2);
                } else {
                    self.vehicle.set_accel(0.0);
                }
            }
            _ => self.vehicle.set_accel(0.0),
        }
    }

    /// Everything in a tick up to (but excluding) the kinematics
    /// integration: RSU broadcast, OBU admission, driver decision. The
    /// batched stepper runs this per world, then integrates all lanes in
    /// one struct-of-arrays pass.
    pub(crate) fn pre_kinematics_tick(&mut self) {
        self.rsu_tick();
        self.traffic_tick();
        self.obu_tick();
        self.driver_decision_tick();
    }

    /// Overwrites the vehicle's kinematic state from the batch lanes.
    pub(crate) fn sync_kinematics(&mut self, position_m: f64, speed_mps: f64, accel_mps2: f64) {
        self.vehicle.set_state(position_m, speed_mps, accel_mps2);
    }

    /// Advances virtual time past the just-integrated tick and latches
    /// the end condition.
    pub(crate) fn commit_tick(&mut self) {
        self.now += self.config.tick;
        self.ticks += 1;
        if self.vehicle.position_m() >= self.config.site_position_m {
            self.entered_zone = true;
        }
    }

    fn finish(self) -> ConstructionOutcome {
        let entered_zone = self.entered_zone;
        let entered_automated = !matches!(self.mode, ControlMode::Manual);
        let sg01_violated = entered_zone && entered_automated;
        let sg02_violated = self.mode_switches > 2;
        let sg03_violated = self.unsafe_limit_accepted;
        let sg04_violated = match self.manual_at {
            Some(at) => !entered_zone || at >= self.now,
            None => true,
        } && entered_zone;
        let isolation_events: Vec<_> = self
            .stack
            .log()
            .events()
            .iter()
            .filter(|e| e.detail.contains("unwanted sender"))
            .collect();
        let isolated_at = isolation_events.first().map(|e| e.at);
        let isolated_senders = isolation_events.iter().map(|e| e.sender.clone()).collect();
        ConstructionOutcome {
            entered_zone_at: self.now,
            entry_speed_mps: self.vehicle.speed_mps(),
            entered_automated,
            service_shutdown: !self.service_alive,
            takeover_requested_at: self.takeover_requested_at,
            manual_at: self.manual_at,
            mode_switches: self.mode_switches,
            applied_limit_kmh: self.applied_limit_kmh,
            sg01_violated,
            sg02_violated,
            sg03_violated,
            sg04_violated,
            isolated_senders,
            isolated_at,
            unintended_warnings: self.unintended_warnings,
        }
    }

    /// Whether the run has reached its end condition (zone entry or the
    /// horizon).
    pub fn is_done(&self) -> bool {
        self.entered_zone || self.now >= SimTime::ZERO + self.config.horizon
    }

    /// Performs one tick under the given attacker. Returns whether a tick
    /// was performed (`false` once [`ConstructionWorld::is_done`]).
    pub fn step(&mut self, attacker: &mut dyn AttackerHook<ConstructionWorld>) -> bool {
        if self.is_done() {
            return false;
        }
        let now = self.now;
        attacker.on_tick(self, now);
        self.pre_kinematics_tick();
        self.vehicle.step(self.config.tick);
        self.commit_tick();
        true
    }

    /// Steps until virtual time reaches `until` (or the run ends).
    pub fn run_until(
        &mut self,
        until: SimTime,
        attacker: &mut dyn AttackerHook<ConstructionWorld>,
    ) {
        while self.now < until && self.step(attacker) {}
    }

    /// Deep-copies the world; the fork replays bit-identically to a
    /// from-scratch run brought to the same state, then diverges
    /// independently.
    pub fn fork(&self) -> ConstructionWorld {
        self.clone()
    }

    /// Freezes the current state as a copy-on-write snapshot to fork many
    /// runs from a warm common prefix.
    pub fn snapshot(&self) -> crate::WorldSnapshot<ConstructionWorld> {
        crate::WorldSnapshot::new(self.clone())
    }

    /// Builds an attacker-free world under `config`, runs it to `at` and
    /// freezes it — the warm prefix a long-running service keeps resident
    /// so repeat jobs over the same scenario never pay world
    /// construction.
    pub fn warm_snapshot(
        config: ConstructionConfig,
        at: SimTime,
    ) -> crate::WorldSnapshot<ConstructionWorld> {
        let mut world = ConstructionWorld::new(config);
        world.run_until(at, &mut ());
        world.snapshot()
    }

    /// Consumes the world and evaluates the safety goals on its current
    /// state, flushing the tick counter. [`ConstructionWorld::run`] is
    /// stepping to completion followed by this.
    pub fn into_outcome(self) -> ConstructionOutcome {
        self.obs.counter("world.construction.ticks", self.ticks);
        self.finish()
    }

    /// Runs the world to zone entry (or the horizon) under the given
    /// attacker.
    pub fn run(
        mut self,
        attacker: &mut dyn AttackerHook<ConstructionWorld>,
    ) -> ConstructionOutcome {
        let span = self.obs.span("world.construction.run_seconds");
        while self.step(attacker) {}
        self.obs.counter("world.construction.ticks", self.ticks);
        span.finish();
        self.finish()
    }

    /// Runs the world without any attacker (the nominal baseline).
    pub fn run_nominal(self) -> ConstructionOutcome {
        self.run(&mut ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> ConstructionWorld {
        ConstructionWorld::new(ConstructionConfig::default())
    }

    #[test]
    fn nominal_run_hands_over_safely() {
        let outcome = world().run_nominal();
        assert!(!outcome.any_violation(), "{outcome:?}");
        assert!(!outcome.entered_automated);
        assert!(!outcome.service_shutdown);
        assert!(outcome.takeover_requested_at.is_some());
        assert!(outcome.manual_at.is_some());
        assert_eq!(outcome.mode_switches, 2);
        assert_eq!(outcome.applied_limit_kmh, Some(60));
        // Entry speed respects the zone limit (60 km/h ≈ 16.7 m/s).
        assert!(outcome.entry_speed_mps <= 60.0 / 3.6 + 0.1, "{}", outcome.entry_speed_mps);
    }

    #[test]
    fn nominal_run_is_deterministic() {
        let a = world().run_nominal();
        let b = world().run_nominal();
        assert_eq!(a.entered_zone_at, b.entered_zone_at);
        assert_eq!(a.takeover_requested_at, b.takeover_requested_at);
        assert_eq!(a.entry_speed_mps, b.entry_speed_mps);
    }

    #[test]
    fn without_rsu_range_no_takeover() {
        // RSU range 0: the warning never reaches the vehicle; SG01/SG04
        // violated even without an attacker (sanity check of the
        // violation predicates).
        let config = ConstructionConfig { rsu_range_m: 0.0, ..Default::default() };
        let outcome = ConstructionWorld::new(config).run_nominal();
        assert!(outcome.sg01_violated);
        assert!(outcome.sg04_violated);
        assert!(outcome.entered_automated);
    }

    #[test]
    fn jammed_channel_prevents_takeover() {
        struct Jam;
        impl AttackerHook<ConstructionWorld> for Jam {
            fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
                if now == SimTime::ZERO {
                    world.channel_mut().jam(SimTime::from_secs(3_600));
                }
            }
        }
        let outcome = world().run(&mut Jam);
        assert!(outcome.sg01_violated);
        assert!(outcome.takeover_requested_at.is_none());
    }

    #[test]
    fn unsigned_injection_rejected_with_auth() {
        // A forged release message without a valid tag must be ignored
        // when authentication is on.
        struct Inject;
        impl AttackerHook<ConstructionWorld> for Inject {
            fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
                let msg = V2xMessage::new("EVIL", 3, Bytes::from_static(&[MSG_RELEASE]), now);
                world.channel_mut().broadcast(msg, now);
            }
        }
        let outcome = world().run(&mut Inject);
        assert!(!outcome.sg02_violated, "{outcome:?}");
        assert!(!outcome.entered_automated);
        // The forger got isolated by the broken-message counter.
        assert!(outcome.isolated_senders.iter().any(|s| s == "EVIL"));
    }

    #[test]
    fn unsigned_injection_succeeds_without_controls() {
        // The same forged release flips control back with controls off —
        // oscillation (SG02) and automated zone entry (SG01).
        struct Inject;
        impl AttackerHook<ConstructionWorld> for Inject {
            fn on_tick(&mut self, world: &mut ConstructionWorld, now: SimTime) {
                let msg = V2xMessage::new("EVIL", 3, Bytes::from_static(&[MSG_RELEASE]), now);
                world.channel_mut().broadcast(msg, now);
            }
        }
        let config =
            ConstructionConfig { controls: ControlSelection::none(), ..Default::default() };
        let outcome = ConstructionWorld::new(config).run(&mut Inject);
        assert!(outcome.sg02_violated);
        assert!(outcome.sg01_violated);
        assert!(outcome.mode_switches > 2);
    }

    #[test]
    fn horizon_run_reports_no_zone_entry() {
        // A stationary vehicle never reaches the site.
        let config = ConstructionConfig {
            initial_speed_mps: 0.0,
            horizon: Ftti::from_secs(2),
            ..Default::default()
        };
        let outcome = ConstructionWorld::new(config).run_nominal();
        assert!(!outcome.sg01_violated, "no zone entry, no SG01 violation");
        assert!(!outcome.sg04_violated);
    }

    #[test]
    fn scenario_traffic_knobs_preserve_nominal_safety() {
        // Background traffic, a platoon and extra RSUs load the channel
        // and the OBU, but the nominal hand-over chain still completes:
        // unauthenticated status spam is rejected (and eventually
        // isolated), signed rebroadcasts are benign.
        let config = ConstructionConfig {
            background_senders: 3,
            platoon_followers: 2,
            platoon_spacing_m: 20.0,
            extra_rsus: 2,
            ..Default::default()
        };
        let outcome = ConstructionWorld::new(config.clone()).run_nominal();
        assert!(!outcome.any_violation(), "{outcome:?}");
        assert!(!outcome.service_shutdown);
        assert!(
            outcome.isolated_senders.iter().any(|s| s.starts_with("BG-")),
            "background spam senders get isolated: {:?}",
            outcome.isolated_senders
        );
        // Deterministic under the scenario knobs too.
        let again = ConstructionWorld::new(config).run_nominal();
        assert_eq!(outcome.entered_zone_at, again.entered_zone_at);
        assert_eq!(outcome.entry_speed_mps, again.entry_speed_mps);
    }

    #[test]
    fn trace_records_the_handover() {
        let config = ConstructionConfig::default();
        let world = ConstructionWorld::new(config);
        // Run on a clone-like fresh world to inspect the trace via outcome
        // is not possible (run consumes); instead re-run and check the
        // outcome-level facts already asserted above. Here we check the
        // signed-message helper round-trips through the control stack.
        let msg = world.signed_message(RSU_SENDER, &[MSG_ROADWORKS, 80], SimTime::ZERO);
        assert_eq!(msg.sender(), RSU_SENDER);
        assert!(msg.auth_tag().is_some());
    }
}
