//! Error type for the simulator.

use std::fmt;

/// Error returned by simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value is out of its valid range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// The simulation horizon elapsed before the scenario concluded.
    HorizonExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field {field}: {reason}")
            }
            SimError::HorizonExceeded => {
                write!(f, "simulation horizon elapsed before the scenario concluded")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::InvalidConfig { field: "tick", reason: "must be positive".into() };
        assert!(e.to_string().contains("tick"));
        assert!(SimError::HorizonExceeded.to_string().contains("horizon"));
    }
}
