//! Option strategies (`prop::option::of`).

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` from `inner` most of the time, `None` occasionally.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.inner.random_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
