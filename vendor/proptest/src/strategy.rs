//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks one of several same-typed strategies uniformly (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.inner.random_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.random_range(self.clone())
    }
}

/// A string literal used as a strategy is treated as a regex, matching
/// upstream proptest (`sender in "[a-z]{1,10}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
    (A, B, C, D, E, F, G, H, I, J, K, L, M)
    (A, B, C, D, E, F, G, H, I, J, K, L, M, N)
    (A, B, C, D, E, F, G, H, I, J, K, L, M, N, O)
    (A, B, C, D, E, F, G, H, I, J, K, L, M, N, O, P)
}
