//! A minimal, deterministic stand-in for the `proptest` crate.
//!
//! Covers the surface used by the SaSeVAL test suite: the [`Strategy`]
//! trait with `prop_map`/`boxed`, range/tuple/collection/option/regex
//! strategies, `any::<T>()`, and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!` and `prop_compose!` macros. Cases are
//! generated from fixed seeds, so runs are fully reproducible; there is
//! no shrinking.
//!
//! [`Strategy`]: strategy::Strategy

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The items a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

/// Declares property tests: each `fn` body runs once per generated case.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    $config,
                    &($($strategy,)+),
                    |($($arg,)+)| {
                        let outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        outcome
                    },
                );
            }
        )*
    };
}

/// Fails the current case (returns `Err`) unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case unless both sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Picks uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident: $param_ty:ty),* $(,)?)
        ($($var:pat_param in $strategy:expr),+ $(,)?)
     -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $param_ty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strategy,)+),
                move |($($var,)+)| $body,
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        let strat = crate::string::string_regex("[a-c]{2,4}").unwrap();
        let mut rng = crate::test_runner::TestRng::test_only(9);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("[z-a]").is_err());
    }

    proptest! {
        #[test]
        fn oneof_and_ranges_compose(
            x in prop_oneof![Just(1u8), Just(2u8)],
            v in prop::collection::vec(0u16..10, 0..5),
            s in "[a-z]{1,3}",
            flag in any::<bool>(),
        ) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_eq!(flag, flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(n in 0u64..5) {
            prop_assert!(n < 5);
        }
    }

    prop_compose! {
        fn pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works(p in pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
