//! Deterministic test execution: a fixed number of cases, each drawn from
//! a per-case seeded RNG. There is no shrinking; the failing input is
//! printed as-is.

use std::fmt::{self, Debug, Display};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for upstream compatibility.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to [`Strategy::generate`].
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    #[cfg(test)]
    pub(crate) fn test_only(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    fn for_case(case: u32) -> Self {
        // Fixed base seed: every run of the suite sees the same inputs.
        TestRng { inner: StdRng::seed_from_u64(0x5153_4556_4131u64 ^ (u64::from(case) << 32)) }
    }
}

/// Drives one property: generates `config.cases` inputs and panics on the
/// first failing case, printing the input that triggered it.
pub fn run<S, F>(config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(case);
        let value = strategy.generate(&mut rng);
        let shown = truncate(format!("{value:?}"));
        if let Err(err) = test(value) {
            panic!("property failed at case {case}/{}: {err}\n    input: {shown}", config.cases);
        }
    }
}

fn truncate(mut text: String) -> String {
    const LIMIT: usize = 600;
    if text.len() > LIMIT {
        let mut cut = LIMIT;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        text.push('…');
    }
    text
}
