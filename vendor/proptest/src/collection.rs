//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive element-count band for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (start, end) = r.into_inner();
        assert!(start <= end, "empty collection size range");
        SizeRange { min: start, max: end + 1 }
    }
}

/// Generates a `Vec` whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner.random_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
