//! String generation from a small regex subset
//! (`proptest::string::string_regex`).
//!
//! Supported grammar: a sequence of atoms, where an atom is either a
//! literal character or a character class `[...]` of single characters
//! and `a-z` ranges, optionally followed by a `{n}` / `{m,n}` repetition.
//! This covers every pattern used in the workspace test suite; anything
//! else (alternation, groups, `*`/`+`/`?`, escapes) is rejected with an
//! error so misuse fails loudly instead of silently generating garbage.

use std::fmt::{self, Display};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Regex-compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compiles `pattern` into a strategy producing matching strings.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    parse(pattern).map(|atoms| RegexGeneratorStrategy { atoms })
}

/// The result of [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

#[derive(Debug, Clone)]
struct Atom {
    /// The candidate characters of this position.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.inner.random_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.chars[rng.inner.random_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

fn parse(pattern: &str) -> Result<Vec<Atom>, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let candidates = match c {
            '[' => parse_class(&mut chars, pattern)?,
            '{' | '}' | ']' | '(' | ')' | '|' | '*' | '+' | '?' | '\\' | '.' | '^' | '$' => {
                return Err(Error(format!(
                    "unsupported regex construct `{c}` in {pattern:?} (vendored subset)"
                )));
            }
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            parse_repetition(&mut chars, pattern)?
        } else {
            (1, 1)
        };
        atoms.push(Atom { chars: candidates, min, max });
    }
    Ok(atoms)
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Result<Vec<char>, Error> {
    let mut candidates = Vec::new();
    loop {
        let c = chars
            .next()
            .ok_or_else(|| Error(format!("unterminated character class in {pattern:?}")))?;
        match c {
            ']' => break,
            '^' if candidates.is_empty() => {
                return Err(Error(format!(
                    "negated character class unsupported in {pattern:?} (vendored subset)"
                )));
            }
            start => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.next() {
                        // A trailing `-` before `]` is a literal dash.
                        Some(']') => {
                            candidates.push(start);
                            candidates.push('-');
                            break;
                        }
                        Some(end) => {
                            if end < start {
                                return Err(Error(format!(
                                    "inverted range `{start}-{end}` in {pattern:?}"
                                )));
                            }
                            candidates.extend(start..=end);
                        }
                        None => {
                            return Err(Error(format!(
                                "unterminated character class in {pattern:?}"
                            )));
                        }
                    }
                } else {
                    candidates.push(start);
                }
            }
        }
    }
    if candidates.is_empty() {
        return Err(Error(format!("empty character class in {pattern:?}")));
    }
    Ok(candidates)
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Result<(usize, usize), Error> {
    let mut text = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => text.push(c),
            None => return Err(Error(format!("unterminated repetition in {pattern:?}"))),
        }
    }
    let parse_count = |part: &str| {
        part.trim()
            .parse::<usize>()
            .map_err(|_| Error(format!("invalid repetition `{{{text}}}` in {pattern:?}")))
    };
    let (min, max) = match text.split_once(',') {
        Some((lo, hi)) => (parse_count(lo)?, parse_count(hi)?),
        None => {
            let n = parse_count(&text)?;
            (n, n)
        }
    };
    if min > max {
        return Err(Error(format!("inverted repetition `{{{text}}}` in {pattern:?}")));
    }
    Ok((min, max))
}
