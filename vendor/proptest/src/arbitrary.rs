//! The [`Arbitrary`] trait behind `any::<T>()`.

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner.random()
            }
        }
    )+};
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII with an occasional arbitrary scalar value.
        if rng.inner.random_bool(0.9) {
            rng.inner.random_range(0x20u32..0x7F).try_into().expect("printable ASCII")
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.inner.random_range(0u32..=0x10_FFFF)) {
                    return c;
                }
            }
        }
    }
}

/// A strategy producing arbitrary values of `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
