//! A minimal stand-in for the `criterion` benchmark harness.
//!
//! Behaviour by invocation mode:
//!
//! - `cargo bench` passes `--bench` to the target: each benchmark is
//!   warmed up and then timed over `sample_size` samples, and a
//!   mean/min/max summary line is printed.
//! - any other invocation (notably `cargo test`, which builds and runs
//!   bench targets as smoke tests) runs every benchmark body exactly once
//!   so the suite stays fast.
//!
//! There is no statistical analysis, plotting or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    measure: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure, default_sample_size: 100 }
    }
}

impl Criterion {
    /// Benchmarks one closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&id.into().full_name(None), sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }

    /// Prints the closing summary (no-op in this subset).
    pub fn final_summary(&mut self) {}

    fn run_one(&mut self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { measure: self.measure, sample_size, samples: Vec::new() };
        f(&mut bencher);
        if self.measure {
            bencher.report(name);
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks one closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().full_name(Some(&self.name));
        let sample_size = self.sample_size.unwrap_or(self.parent.default_sample_size);
        self.parent.run_one(&name, sample_size, &mut f);
        self
    }

    /// Benchmarks one closure over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (no-op in this subset; dropping works too).
    pub fn finish(self) {}
}

/// Times the benchmark body.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            return;
        }
        // One untimed warmup call, then `sample_size` timed calls.
        black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<50} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Identifies a benchmark, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value (the group provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function_name: None, parameter: Some(parameter.to_string()) }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts = Vec::new();
        if let Some(group) = group {
            parts.push(group.to_owned());
        }
        parts.extend(self.function_name.clone());
        parts.extend(self.parameter.clone());
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function_name: Some(name.to_owned()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function_name: Some(name), parameter: None }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_bodies_once() {
        let mut c = Criterion { measure: false, default_sample_size: 100 };
        let mut calls = 0;
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);

        let mut group_calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, n| b.iter(|| group_calls += *n));
        group.finish();
        assert_eq!(group_calls, 3);
    }

    #[test]
    fn id_names_compose() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(Some("g")), "g/f/3");
        assert_eq!(BenchmarkId::from_parameter("x").full_name(Some("g")), "g/x");
        assert_eq!(BenchmarkId::from("plain").full_name(None), "plain");
    }
}
