//! A minimal, deterministic stand-in for the `rand` crate covering the
//! workspace's call surface: `StdRng::seed_from_u64`, `random::<T>()`,
//! `random_range(..)` and `random_bool(p)`.
//!
//! The generator is SplitMix64 — a small, fast, statistically solid PRNG.
//! It is NOT the same stream as upstream `rand`'s `StdRng`, so seeded
//! simulations produce different (but still deterministic) trajectories.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's full range.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),+) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as `random_range` bounds.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = uniform_below(rng, span);
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = self.into_inner();
                    assert!(start <= end, "empty range in random_range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 + 1 {
                        // Full-width range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    let offset = uniform_below(rng, span);
                    (start as i128 + offset as i128) as $t
                }
            }
        )+
    };
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` via widening multiply (span <= 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Samples a value uniformly over the type's full range.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the classic `Rng` name.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Small-footprint generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0..=0usize);
            assert_eq!(z, 0);
            let f = rng.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_probability_mid_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000");
    }
}
