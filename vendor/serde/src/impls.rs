//! [`Serialize`]/[`Deserialize`] implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, Serializer};
use crate::Value;

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(u64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let n = match value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    other => {
                        return Err(de::Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(n).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let n = u64::deserialize(deserializer)?;
        usize::try_from(n).map_err(|_| de::Error::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(i64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let n: i64 = match value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        de::Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    other => {
                        return Err(de::Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(n).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let n = i64::deserialize(deserializer)?;
        isize::try_from(n).map_err(|_| de::Error::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::custom(format!("expected float, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.encode_utf8(&mut [0u8; 4]))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

/// Deserializing into a `&'static str` leaks the string. This exists so
/// that derived structs holding static table text (e.g. the paper's table
/// rows) can implement `Deserialize`; those structs are only ever
/// serialized in practice, so the leak path is effectively dead code.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(|s| &*s.leak())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(()),
            other => Err(de::Error::custom(format!("expected null, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Pointers and wrappers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// `Value` serializes/deserializes as itself (upstream serde_json offers
// the same identity impls for its `Value`), letting callers parse
// arbitrary JSON into the data model and write it back out.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => de::from_value::<T, D::Error>(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

fn serialize_iter<'a, S, T, I>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut seq = Vec::new();
    for item in iter {
        seq.push(ser::to_value(item).map_err(ser::Error::custom)?);
    }
    serializer.serialize_value(Value::Seq(seq))
}

fn expect_seq<E: de::Error>(value: Value) -> Result<Vec<Value>, E> {
    match value {
        Value::Seq(items) => Ok(items),
        other => Err(de::Error::custom(format!("expected sequence, got {}", other.kind()))),
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        expect_seq::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(de::from_value::<T, D::Error>)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        expect_seq::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(de::from_value::<T, D::Error>)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash, H: BuildHasher + Default> Deserialize<'de>
    for HashSet<T, H>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        expect_seq::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(de::from_value::<T, D::Error>)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impl {
    ($($len:expr => ($($t:ident . $idx:tt),+),)+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(ser::to_value(&self.$idx).map_err(ser::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(seq))
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items = expect_seq::<D::Error>(deserializer.take_value()?)?;
                if items.len() != $len {
                    return Err(de::Error::custom(format!(
                        "expected a sequence of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok((
                    $(de::from_value::<$t, D::Error>(iter.next().expect("length checked"))?,)+
                ))
            }
        }
    )+};
}

tuple_impl! {
    1 => (T0.0),
    2 => (T0.0, T1.1),
    3 => (T0.0, T1.1, T2.2),
    4 => (T0.0, T1.1, T2.2, T3.3),
    5 => (T0.0, T1.1, T2.2, T3.3, T4.4),
    6 => (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5),
    7 => (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6),
    8 => (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6, T7.7),
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = Vec::new();
    for (k, v) in iter {
        let key = ser::to_value(k).and_then(ser::key_to_string).map_err(ser::Error::custom)?;
        map.push((key, ser::to_value(v).map_err(ser::Error::custom)?));
    }
    serializer.serialize_value(Value::Map(map))
}

fn expect_map<E: de::Error>(value: Value) -> Result<Vec<(String, Value)>, E> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(de::Error::custom(format!("expected map, got {}", other.kind()))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        expect_map::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|(k, v)| {
                Ok((de::key_from_string::<K, D::Error>(k)?, de::from_value::<V, D::Error>(v)?))
            })
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        expect_map::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|(k, v)| {
                Ok((de::key_from_string::<K, D::Error>(k)?, de::from_value::<V, D::Error>(v)?))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Ranges (serialized as `{"start": .., "end": ..}`, matching upstream)
// ---------------------------------------------------------------------------

impl<Idx: Serialize> Serialize for std::ops::Range<Idx> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let start = ser::to_value(&self.start).map_err(ser::Error::custom)?;
        let end = ser::to_value(&self.end).map_err(ser::Error::custom)?;
        serializer
            .serialize_value(Value::Map(vec![("start".to_owned(), start), ("end".to_owned(), end)]))
    }
}

impl<'de, Idx: Deserialize<'de>> Deserialize<'de> for std::ops::Range<Idx> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (start, end) = range_bounds::<Idx, D>(deserializer)?;
        Ok(start..end)
    }
}

impl<Idx: Serialize> Serialize for std::ops::RangeInclusive<Idx> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let start = ser::to_value(self.start()).map_err(ser::Error::custom)?;
        let end = ser::to_value(self.end()).map_err(ser::Error::custom)?;
        serializer
            .serialize_value(Value::Map(vec![("start".to_owned(), start), ("end".to_owned(), end)]))
    }
}

impl<'de, Idx: Deserialize<'de>> Deserialize<'de> for std::ops::RangeInclusive<Idx> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (start, end) = range_bounds::<Idx, D>(deserializer)?;
        Ok(start..=end)
    }
}

fn range_bounds<'de, Idx: Deserialize<'de>, D: Deserializer<'de>>(
    deserializer: D,
) -> Result<(Idx, Idx), D::Error> {
    let mut start = None;
    let mut end = None;
    for (key, value) in expect_map::<D::Error>(deserializer.take_value()?)? {
        match key.as_str() {
            "start" => start = Some(de::from_value::<Idx, D::Error>(value)?),
            "end" => end = Some(de::from_value::<Idx, D::Error>(value)?),
            _ => {}
        }
    }
    match (start, end) {
        (Some(start), Some(end)) => Ok((start, end)),
        _ => Err(de::Error::custom("range needs both `start` and `end`")),
    }
}
