//! A small, self-contained reimplementation of the subset of the `serde`
//! API surface this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal substitutes for its external dependencies.
//! This crate keeps the familiar `serde` names — [`Serialize`],
//! [`Deserialize`], [`Serializer`], [`Deserializer`], `ser::Error`,
//! `de::Error` and the two derive macros — but routes everything through a
//! single JSON-shaped [`Value`] data model instead of serde's visitor
//! machinery. That is sufficient for the workspace's needs (derived
//! structs/enums plus a handful of hand-written string-based impls) while
//! staying a few hundred lines of dependency-free code.

pub mod de;
mod impls;
pub mod ser;
mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
