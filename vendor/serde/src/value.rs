//! The JSON-shaped data model every serializer/deserializer in this
//! vendored serde speaks.

/// A self-describing value: the intermediate representation produced by
/// [`crate::Serialize`] impls and consumed by [`crate::Deserialize`] impls.
///
/// Maps preserve insertion order so that derived struct serialization
/// emits fields in declaration order, matching upstream `serde_json`
/// output for derived types.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
