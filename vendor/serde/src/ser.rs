//! Serialization half of the vendored serde data model.

use std::fmt::{self, Display};

use crate::Value;

/// Trait of errors a [`Serializer`] may produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializer: consumes a [`Value`] and produces some output.
///
/// Unlike upstream serde there is exactly one required method; the
/// convenience `serialize_*` methods all funnel into
/// [`Serializer::serialize_value`].
pub trait Serializer: Sized {
    /// Output type on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built [`Value`].
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::U64(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_value(Value::U64(v as u64))
        } else {
            self.serialize_value(Value::I64(v))
        }
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    /// Serializes a unit value (JSON `null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    /// Serializes `None` (JSON `null`).
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    /// Serializes `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
}

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Error of the in-memory [`ValueSerializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(String);

impl Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer that materializes the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serializes any [`Serialize`] type into the in-memory [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Renders a map key, accepting strings and numbers (numbers are
/// stringified, mirroring `serde_json`).
pub fn key_to_string(key: Value) -> Result<String, ValueError> {
    match key {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(ValueError::custom(format!("map key must be a string, got {}", other.kind()))),
    }
}
