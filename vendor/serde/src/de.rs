//! Deserialization half of the vendored serde data model.

use std::fmt::Display;
use std::marker::PhantomData;

use crate::Value;

/// Trait of errors a [`Deserializer`] may produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A deserializer: hands out the self-describing [`Value`] it wraps.
///
/// The `'de` lifetime exists for signature compatibility with upstream
/// serde (`impl<'de> Deserialize<'de> for …`); this vendored model always
/// produces owned data.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the deserializer, yielding its [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializer over an in-memory [`Value`], generic in the error type so
/// nested field deserialization can surface the caller's error.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value, _marker: PhantomData }
    }
}

impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Deserializes a `T` from an in-memory [`Value`] with error type `E`.
pub fn from_value<'de, T: Deserialize<'de>, E: Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

/// Deserializes a map key. JSON keys are always strings; integer-keyed
/// maps therefore retry numeric interpretation when the direct string
/// deserialization fails (mirroring `serde_json`'s key deserializer).
pub fn key_from_string<'de, T: Deserialize<'de>, E: Error>(key: String) -> Result<T, E> {
    let numeric = if key.starts_with('-') {
        key.parse::<i64>().ok().map(Value::I64)
    } else {
        key.parse::<u64>().ok().map(Value::U64)
    };
    match from_value::<T, E>(Value::Str(key)) {
        Ok(v) => Ok(v),
        Err(e) => match numeric {
            Some(n) => from_value::<T, E>(n).map_err(|_| e),
            None => Err(e),
        },
    }
}
