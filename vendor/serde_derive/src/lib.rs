//! Derive macros for the vendored serde subset.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, which are
//! unavailable offline). Supports the shapes this workspace actually
//! derives: non-generic structs (named, tuple/newtype, unit) and enums
//! with unit, newtype, tuple and struct variants — serialized in serde's
//! default externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Field, Fields, Input, Variant};

/// Derives the `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse::parse_input(input) {
        Ok(parsed) => gen(&parsed).parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("literal"),
    }
}

/// Emits the code that serializes the fields of a braced field list into a
/// `Vec<(String, Value)>` bound to `map`, reading each field through the
/// expression produced by `access` (e.g. `&self.name` or a binding).
fn push_named_fields(out: &mut String, fields: &[Field], access: impl Fn(&str) -> String) {
    out.push_str("let mut map: Vec<(String, ::serde::Value)> = Vec::new();");
    for field in fields {
        let name = &field.name;
        out.push_str(&format!(
            "map.push(({name:?}.to_owned(), \
             ::serde::ser::to_value({access}).map_err(<S::Error as ::serde::ser::Error>::custom)?));",
            access = access(name),
        ));
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        parse::Data::Struct(Fields::Unit) => {
            body.push_str("serializer.serialize_value(::serde::Value::Null)");
        }
        parse::Data::Struct(Fields::Tuple(1)) => {
            body.push_str("::serde::Serialize::serialize(&self.0, serializer)");
        }
        parse::Data::Struct(Fields::Tuple(n)) => {
            body.push_str("let mut seq: Vec<::serde::Value> = Vec::new();");
            for i in 0..*n {
                body.push_str(&format!(
                    "seq.push(::serde::ser::to_value(&self.{i})\
                     .map_err(<S::Error as ::serde::ser::Error>::custom)?);"
                ));
            }
            body.push_str("serializer.serialize_value(::serde::Value::Seq(seq))");
        }
        parse::Data::Struct(Fields::Named(fields)) => {
            push_named_fields(&mut body, fields, |f| format!("&self.{f}"));
            body.push_str("serializer.serialize_value(::serde::Value::Map(map))");
        }
        parse::Data::Enum(variants) => {
            body.push_str("match self {");
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vname} => serializer\
                         .serialize_value(::serde::Value::Str({vname:?}.to_owned())),"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(f0) => {{\
                         let inner = ::serde::ser::to_value(f0)\
                         .map_err(<S::Error as ::serde::ser::Error>::custom)?;\
                         serializer.serialize_value(::serde::Value::Map(vec![({vname:?}\
                         .to_owned(), inner)]))}},"
                    )),
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\
                             let mut seq: Vec<::serde::Value> = Vec::new();",
                            binds = bindings.join(", "),
                        ));
                        for b in &bindings {
                            body.push_str(&format!(
                                "seq.push(::serde::ser::to_value({b})\
                                 .map_err(<S::Error as ::serde::ser::Error>::custom)?);"
                            ));
                        }
                        body.push_str(&format!(
                            "serializer.serialize_value(::serde::Value::Map(vec![({vname:?}\
                             .to_owned(), ::serde::Value::Seq(seq))]))}},"
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds =
                            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        body.push_str(&format!("{name}::{vname} {{ {binds} }} => {{"));
                        push_named_fields(&mut body, fields, |f| f.to_owned());
                        body.push_str(&format!(
                            "serializer.serialize_value(::serde::Value::Map(vec![({vname:?}\
                             .to_owned(), ::serde::Value::Map(map))]))}},"
                        ));
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
         -> Result<S::Ok, S::Error> {{ {body} }}\n\
         }}"
    )
}

/// Emits code that consumes `entries: Vec<(String, Value)>` and builds the
/// constructor expression `ctor { field: …, … }`, erroring on missing
/// fields — unless they carry `#[serde(default)]` — and ignoring unknown
/// ones (serde's default).
fn extract_named_fields(out: &mut String, type_name: &str, ctor: &str, fields: &[Field]) {
    for Field { name, .. } in fields {
        out.push_str(&format!("let mut opt_{name}: Option<::serde::Value> = None;"));
    }
    out.push_str("for (key, value) in entries { match key.as_str() {");
    for Field { name, .. } in fields {
        out.push_str(&format!("{name:?} => opt_{name} = Some(value),"));
    }
    out.push_str("_ => {} } }");
    out.push_str(&format!("Ok({ctor} {{"));
    for Field { name, default } in fields {
        let missing = if *default {
            "::core::default::Default::default()".to_owned()
        } else {
            format!(
                "return Err(<D::Error as ::serde::de::Error>::custom(\
                 concat!(\"missing field `{name}` for \", {type_name:?})))"
            )
        };
        out.push_str(&format!(
            "{name}: match opt_{name} {{\
             Some(value) => ::serde::de::from_value::<_, D::Error>(value)?,\
             None => {missing},\
             }},"
        ));
    }
    out.push_str("})");
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        parse::Data::Struct(Fields::Unit) => {
            body.push_str(&format!(
                "match deserializer.take_value()? {{\
                 ::serde::Value::Null => Ok({name}),\
                 other => Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected null for unit struct {name}, got {{}}\", other.kind()))),\
                 }}"
            ));
        }
        parse::Data::Struct(Fields::Tuple(1)) => {
            body.push_str(&format!(
                "Ok({name}(::serde::de::from_value::<_, D::Error>(deserializer.take_value()?)?))"
            ));
        }
        parse::Data::Struct(Fields::Tuple(n)) => {
            body.push_str(&format!(
                "let items = match deserializer.take_value()? {{\
                 ::serde::Value::Seq(items) => items,\
                 other => return Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected sequence for tuple struct {name}, got {{}}\", other.kind()))),\
                 }};\
                 if items.len() != {n} {{\
                 return Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", items.len())));\
                 }}\
                 let mut iter = items.into_iter();\
                 Ok({name}("
            ));
            for _ in 0..*n {
                body.push_str(
                    "::serde::de::from_value::<_, D::Error>(iter.next().expect(\"len\"))?,",
                );
            }
            body.push_str("))");
        }
        parse::Data::Struct(Fields::Named(fields)) => {
            body.push_str(&format!(
                "let entries = match deserializer.take_value()? {{\
                 ::serde::Value::Map(entries) => entries,\
                 other => return Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected map for struct {name}, got {{}}\", other.kind()))),\
                 }};"
            ));
            extract_named_fields(&mut body, name, name, fields);
        }
        parse::Data::Enum(variants) => {
            body.push_str("match deserializer.take_value()? {");
            body.push_str("::serde::Value::Str(tag) => match tag.as_str() {");
            for Variant { name: vname, fields } in variants {
                if matches!(fields, Fields::Unit) {
                    body.push_str(&format!("{vname:?} => Ok({name}::{vname}),"));
                }
            }
            body.push_str(&format!(
                "other => Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown unit variant `{{other}}` for enum {name}\"))),\
                 }},"
            ));
            body.push_str(
                "::serde::Value::Map(mut tagged) if tagged.len() == 1 => {\
                 let (tag, content) = tagged.remove(0);\
                 match tag.as_str() {",
            );
            for Variant { name: vname, fields } in variants {
                match fields {
                    Fields::Unit => body.push_str(&format!(
                        "{vname:?} => match content {{\
                         ::serde::Value::Null => Ok({name}::{vname}),\
                         _ => Err(<D::Error as ::serde::de::Error>::custom(\
                         \"expected null content for unit variant\")),\
                         }},"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(\
                         ::serde::de::from_value::<_, D::Error>(content)?)),"
                    )),
                    Fields::Tuple(n) => {
                        body.push_str(&format!(
                            "{vname:?} => {{\
                             let items = match content {{\
                             ::serde::Value::Seq(items) => items,\
                             other => return Err(<D::Error as ::serde::de::Error>::custom(\
                             format!(\"expected sequence for variant {vname}, got {{}}\",\
                             other.kind()))),\
                             }};\
                             if items.len() != {n} {{\
                             return Err(<D::Error as ::serde::de::Error>::custom(\
                             format!(\"expected {n} elements for {name}::{vname}, got {{}}\",\
                             items.len())));\
                             }}\
                             let mut iter = items.into_iter();\
                             Ok({name}::{vname}("
                        ));
                        for _ in 0..*n {
                            body.push_str(
                                "::serde::de::from_value::<_, D::Error>\
                                 (iter.next().expect(\"len\"))?,",
                            );
                        }
                        body.push_str("))},");
                    }
                    Fields::Named(fields) => {
                        body.push_str(&format!(
                            "{vname:?} => {{\
                             let entries = match content {{\
                             ::serde::Value::Map(entries) => entries,\
                             other => return Err(<D::Error as ::serde::de::Error>::custom(\
                             format!(\"expected map for variant {vname}, got {{}}\",\
                             other.kind()))),\
                             }};"
                        ));
                        extract_named_fields(&mut body, name, &format!("{name}::{vname}"), fields);
                        body.push_str("},");
                    }
                }
            }
            body.push_str(&format!(
                "other => Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{other}}` for enum {name}\"))),\
                 }} }},"
            ));
            body.push_str(&format!(
                "other => Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected string or map for enum {name}, got {{}}\", other.kind()))),\
                 }}"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\
         -> Result<Self, D::Error> {{ {body} }}\n\
         }}"
    )
}

/// Shared by the parser: true if the token tree is a group with the given
/// delimiter.
pub(crate) fn is_group(tree: &TokenTree, delimiter: Delimiter) -> bool {
    matches!(tree, TokenTree::Group(g) if g.delimiter() == delimiter)
}
