//! Minimal token-level parser for `derive` input: enough to recover the
//! name, data kind (struct/enum) and field/variant shapes of non-generic
//! items. Attributes (including doc comments) and visibilities are
//! skipped — except `#[serde(default)]` on named fields, which is
//! recorded; types are never interpreted — generated code relies on
//! inference.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use crate::is_group;

pub(crate) struct Input {
    pub name: String,
    pub data: Data,
}

pub(crate) enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub(crate) struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub(crate) enum Fields {
    Unit,
    /// Tuple fields, by count (1 = newtype).
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<Field>),
}

/// One named field and the serde attributes it carries.
pub(crate) struct Field {
    pub name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when the field
    /// is missing during deserialization.
    pub default: bool,
}

type Cursor = std::iter::Peekable<std::vec::IntoIter<TokenTree>>;

fn cursor(stream: TokenStream) -> Cursor {
    stream.into_iter().collect::<Vec<_>>().into_iter().peekable()
}

/// Whether a `#[…]` bracket group body is a `serde(…)` list containing the
/// bare `default` flag.
fn serde_attr_has_default(body: TokenStream) -> bool {
    let mut inner = body.into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skips `#[…]` attributes (including doc comments) and `pub`/`pub(…)`
/// visibility qualifiers, reporting whether a `#[serde(default)]` was
/// among them.
fn skip_attrs_and_vis(tokens: &mut Cursor) -> bool {
    let mut default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        default |= serde_attr_has_default(g.stream());
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if tokens.peek().is_some_and(|t| is_group(t, Delimiter::Parenthesis)) {
                    tokens.next();
                }
            }
            _ => return default,
        }
    }
}

fn expect_ident(tokens: &mut Cursor, context: &str) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("serde_derive: expected identifier ({context}), got {other:?}")),
    }
}

/// Consumes tokens until a top-level `,`, tracking `<…>` nesting so commas
/// inside generic arguments don't terminate the field type.
fn skip_type(tokens: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(tree) = tokens.peek() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = cursor(stream);
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        fields.push(Field { name: expect_ident(&mut tokens, "field name")?, default });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive: expected `:` after field, got {other:?}")),
        }
        skip_type(&mut tokens);
        tokens.next(); // the `,`, if any
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = cursor(stream);
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut tokens);
        tokens.next(); // the `,`, if any
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = cursor(stream);
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return Ok(variants);
        }
        let name = expect_ident(&mut tokens, "variant name")?;
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(count)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for tree in tokens.by_ref() {
            if matches!(&tree, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
}

pub(crate) fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = cursor(input);
    skip_attrs_and_vis(&mut tokens);
    let kind = expect_ident(&mut tokens, "struct/enum keyword")?;
    let name = expect_ident(&mut tokens, "type name")?;
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }
    let data = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => {
                return Err(format!("serde_derive: unexpected struct body for {name}: {other:?}"))
            }
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => {
                return Err(format!("serde_derive: unexpected enum body for {name}: {other:?}"))
            }
        },
        other => return Err(format!("serde_derive: cannot derive for `{other}` items")),
    };
    Ok(Input { name, data })
}
