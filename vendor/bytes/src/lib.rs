//! A minimal stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer. Clones share the underlying allocation;
//! `from_static` borrows the static data without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>, usize, usize),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Repr::Static(&[]) }
    }

    /// Wraps a static byte slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Repr::Static(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => s,
            Repr::Shared(arc, start, end) => &arc[*start..*end],
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice {start}..{end} out of bounds for {len}");
        match &self.data {
            Repr::Static(s) => Bytes { data: Repr::Static(&s[start..end]) },
            Repr::Shared(arc, s, _) => {
                Bytes { data: Repr::Shared(arc.clone(), s + start, s + end) }
            }
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Repr::Shared(Arc::from(v), 0, len) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7F).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        Vec::<u8>::deserialize(deserializer).map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.slice(1..3).as_slice(), &[2, 3]);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_is_printable() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
