//! A minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The API difference that matters to callers: `lock()` returns the guard
//! directly instead of a `Result`. Poisoning is ignored — a panic while
//! holding the lock does not poison it for later users, matching
//! `parking_lot` semantics.

use std::fmt;
use std::sync::{RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion lock whose `lock()` never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose acquisition methods never fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_panicking_holder() {
        let lock = std::sync::Arc::new(Mutex::new(5));
        let peer = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = peer.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 5);
        *lock.lock() += 1;
        let lock = std::sync::Arc::try_unwrap(lock).expect("sole owner after join");
        assert_eq!(lock.into_inner(), 6);
    }
}
