//! JSON text output.

use serde::Value;

pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Floats print via `{:?}`, which matches upstream's shortest round-trip
/// representation including the `1.0` form for integral values; non-finite
/// values become `null` exactly as in upstream `serde_json`.
fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
