//! JSON serialization for the vendored serde subset: `to_string`,
//! `to_string_pretty` and `from_str` with upstream-compatible text output
//! (declaration-order fields, `1.0`-style floats, UTF-8 passthrough).

mod read;
mod write;

use std::fmt::{self, Display};

use serde::{de, ser, Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

/// Error raised by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching upstream `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write::compact(&value, &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write::pretty(&value, 0, &mut out);
    Ok(out)
}

/// Converts a value into the in-memory [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    ser::to_value(value).map_err(|e| Error(e.to_string()))
}

/// Deserializes a value from a JSON string.
pub fn from_str<T>(s: &str) -> Result<T>
where
    T: for<'de> Deserialize<'de>,
{
    let value = read::parse(s)?;
    de::from_value(value)
}

/// Deserializes a value from the in-memory [`Value`] model.
pub fn from_value<T>(value: Value) -> Result<T>
where
    T: for<'de> Deserialize<'de>,
{
    de::from_value(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi\nthere").unwrap(), "\"hi\\nthere\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\u00e9b\"").unwrap(), "aéb");
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u8, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u8>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_owned(), 1u8);
        m.insert("b".to_owned(), 2u8);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        assert_eq!(from_str::<std::collections::BTreeMap<String, u8>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let ugly = "quote:\" backslash:\\ tab:\t nul:\u{0} unicode:é✓";
        let json = to_string(&ugly).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), ugly);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
