//! A recursive-descent JSON parser producing the shared [`Value`] model.

use serde::Value;

use crate::Error;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(depth),
            Some(b'{') => self.map(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn seq(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn map(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number slice is valid UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes in one UTF-8 slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a trailing low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else {
                    hi as u32
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid code point"))?);
            }
            _ => return Err(self.error("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value = u16::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }
}
