//! Attack campaign: execute the paper's concrete attack descriptions
//! (AD20 of Table VI, AD08 of Table VII, the replay/flooding/jamming
//! attacks of §IV) against the simulated SUTs, with and without their
//! expected measures, and print the verdicts.
//!
//! ```sh
//! cargo run --example attack_campaign
//! ```

use saseval::engine::builtin::full_campaign;
use saseval::engine::campaign::run_campaign_parallel;

fn main() {
    let cases = full_campaign();
    println!("Executing {} bound attack test cases…\n", cases.len());
    let report = run_campaign_parallel(&cases, 4);

    println!(
        "{:<10} {:<38} {:>9} {:>9}  violated goals",
        "attack", "configuration", "success", "detected"
    );
    println!("{}", "-".repeat(88));
    for result in &report.results {
        println!(
            "{:<10} {:<38} {:>9} {:>9}  {}",
            result.attack_id,
            result.label,
            if result.attack_succeeded { "YES" } else { "no" },
            if result.detected { "yes" } else { "-" },
            if result.violated_goals.is_empty() {
                "-".to_owned()
            } else {
                result.violated_goals.join(" ")
            }
        );
    }
    println!("{}", "-".repeat(88));
    println!(
        "{} of {} attacks achieved a safety impact; {} produced detection evidence.",
        report.successes(),
        report.total(),
        report.detections()
    );
    println!(
        "Shape check (paper Tables VI/VII): attacks succeed against the undefended SUT \
         and fail once the expected measures are deployed."
    );
}
