//! Risk-analysis walkthrough: rate the keyless-opener replay threat with
//! all three techniques the paper names (§III-A2) — TARA's
//! impact × feasibility matrix, SAHARA and HEAVENS — run the TARA↔HARA
//! cross-check (§II-B), and sweep the pseudonym-rotation privacy measure
//! behind SG06.
//!
//! ```sh
//! cargo run --example tara_analysis
//! ```

use saseval::controls::pseudonym::{eavesdrop_campaign, PseudonymScheme};
use saseval::core::catalog::use_case_2;
use saseval::tara::heavens::{heavens_security_level, impact_level, ThreatParameters};
use saseval::tara::sahara::{Criticality, KnowHow, Resources, SaharaRating};
use saseval::tara::{
    cross_check, risk_level, DamageScenario, FeasibilityFactors, ImpactCategory, ImpactLevel,
};
use saseval::types::Ftti;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Rating the keyless replay threat (TS-BLE-REPLAY) ===\n");

    // --- TARA (ISO/SAE 21434 style): impact x attack feasibility. ---
    let damage = DamageScenario::builder(
        "DS-REPLAY-OPEN",
        "Vehicle opens unnoticed after the owner leaves; doors unlock in traffic",
    )
    .impact(ImpactCategory::Safety, ImpactLevel::Severe)
    .impact(ImpactCategory::Financial, ImpactLevel::Major)
    .asset("BLE_LINK")
    .build()?;
    let factors = FeasibilityFactors::new(0, 1, 0, 1, 1); // off-the-shelf radio
    let risk = risk_level(damage.max_impact(), factors.feasibility());
    println!(
        "TARA   : impact {:?} x feasibility {:?} -> {risk}",
        damage.max_impact(),
        factors.feasibility()
    );

    // --- SAHARA (Macher et al.). ---
    let sahara = SaharaRating::new("TS-BLE-REPLAY", Resources::R1, KnowHow::K1, Criticality::T3)?;
    println!(
        "SAHARA : R1/K1/T3 -> {} (safety-relevant: {})",
        sahara.security_level(),
        sahara.is_safety_relevant()
    );

    // --- HEAVENS (Lautenbach et al.). ---
    let tl = ThreatParameters::new(0, 0, 1, 1).threat_level();
    let il = impact_level(&[
        (ImpactCategory::Safety, ImpactLevel::Severe),
        (ImpactCategory::Financial, ImpactLevel::Major),
    ]);
    println!("HEAVENS: TL {tl:?} x IL {il:?} -> {}", heavens_security_level(tl, il));

    // --- TARA <-> HARA cross-check (§II-B). ---
    println!("\n=== TARA-HARA cross-check against the Use Case II HARA ===\n");
    let uc2 = use_case_2();
    let scenarios = [
        damage,
        DamageScenario::builder(
            "DS-LOCKOUT",
            "Owner stranded: opening unavailable at the roadside",
        )
        .impact(ImpactCategory::Safety, ImpactLevel::Moderate)
        .impact(ImpactCategory::Operational, ImpactLevel::Major)
        .build()?,
        DamageScenario::builder("DS-USAGE-PROFILE", "Open/close patterns reveal owner presence")
            .impact(ImpactCategory::Privacy, ImpactLevel::Major)
            .build()?,
    ];
    let report = cross_check(&scenarios, &uc2.hara);
    for m in &report.matches {
        println!(
            "  {:<18} -> {:?}{}",
            m.damage_scenario.as_str(),
            m.outcome,
            if m.matched_hazards.is_empty() {
                String::new()
            } else {
                format!(" (hazards: {:?})", m.matched_hazards)
            }
        );
    }

    // --- Pseudonym rotation ablation (SG06 / AD28). ---
    println!("\n=== Pseudonym rotation vs eavesdropper linkability ===\n");
    println!("  {:<16} {:>12} {:>10}", "rotation", "linkability", "pseudonyms");
    let interval = Ftti::from_secs(1);
    let duration = Ftti::from_secs(600);
    let static_scheme = PseudonymScheme::static_identifier(7);
    let obs = eavesdrop_campaign(&static_scheme, 42, interval, duration);
    println!(
        "  {:<16} {:>12.3} {:>10}",
        "none (static)",
        obs.linkability(),
        obs.distinct_pseudonyms()
    );
    for period_s in [600u64, 60, 10, 2] {
        let scheme = PseudonymScheme::new(Ftti::from_secs(period_s), 7);
        let obs = eavesdrop_campaign(&scheme, 42, interval, duration);
        println!(
            "  {:<16} {:>12.3} {:>10}",
            format!("{period_s}s"),
            obs.linkability(),
            obs.distinct_pseudonyms()
        );
    }
    println!("\nAll three analyses converge: the replay threat is top-priority,");
    println!("aligns with the HARA's unintended-opening hazard, and the privacy");
    println!("measure (rotation) trades linkability against pseudonym churn.");
    Ok(())
}
