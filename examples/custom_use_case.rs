//! Authoring a new use case from scratch — the adoption path for a
//! downstream project.
//!
//! The paper's Table I lists a third scenario, "Advanced access to
//! vehicle" (cloud-based vehicle sharing), that §IV does not work out.
//! This example works it out with the public API: extend the threat
//! library, write the HARA, derive candidate attacks, author attack
//! descriptions (including a justification for a deliberately untested
//! threat), run the pipeline and export the validation report.
//!
//! ```sh
//! cargo run --example custom_use_case
//! ```

use saseval::core::catalog::UseCaseCatalog;
use saseval::core::derive::{derive_candidates, DerivationConfig};
use saseval::core::export::render_validation_report;
use saseval::core::pipeline::run_pipeline;
use saseval::core::{identify_safety_concerns, AttackDescription, Justification};
use saseval::hara::{Hara, HazardRating, ItemFunction, SafetyGoal};
use saseval::threat::builtin::{automotive_library, SC_ACCESS};
use saseval::threat::ThreatScenario;
use saseval::types::{
    AttackType, Controllability as C, Exposure as E, FailureMode as FM, Ftti, ScenarioId,
    Severity as S, ThreatType,
};

fn build_hara() -> Result<Hara, Box<dyn std::error::Error>> {
    let mut hara = Hara::new("Use Case III - Cloud-based vehicle sharing");
    hara.add_function(ItemFunction::new("S1", "Grant vehicle access from a cloud booking")?)?;
    hara.add_function(ItemFunction::new("S2", "Revoke vehicle access at booking end")?)?;

    // Guideword grid for S1 (grant access).
    let ratings = [
        HazardRating::builder("SRat01", "S1", FM::No)
            .hazard("Booked traveller stranded at the pick-up location")
            .situation("Remote pick-up, no staff on site")
            .rate(S::S1, E::E4, C::C2), // A
        HazardRating::builder("SRat02", "S1", FM::Unintended)
            .hazard("Access granted to a non-booker; vehicle taken into traffic")
            .situation("Vehicle parked, no booking active")
            .rate(S::S3, E::E3, C::C3), // C
        HazardRating::builder("SRat03", "S1", FM::TooEarly)
            .hazard("Access active before payment/driver checks complete")
            .situation("Booking pending verification")
            .rate(S::S2, E::E3, C::C2), // A
        HazardRating::builder("SRat04", "S1", FM::TooLate)
            .hazard("Traveller waits; service degraded")
            .situation("Pick-up time reached")
            .rate(S::S1, E::E3, C::C1), // QM
        HazardRating::builder("SRat06", "S1", FM::More)
            .hazard("Access granted for additional vehicles of the fleet")
            .situation("Fleet lot with many vehicles")
            .rate(S::S2, E::E2, C::C2), // QM
        HazardRating::builder("SRat08", "S1", FM::Intermittent)
            .hazard("Access drops while the vehicle is driven; lockout mid-trip")
            .situation("Active rental on the motorway")
            .rate(S::S3, E::E2, C::C2), // A
        // Guideword grid for S2 (revoke access).
        HazardRating::builder("SRat09", "S2", FM::No)
            .hazard("Access persists after booking end; unauthorized reuse")
            .situation("Vehicle returned to the lot")
            .rate(S::S2, E::E3, C::C3), // B
        HazardRating::builder("SRat10", "S2", FM::Unintended)
            .hazard("Revocation fires during an active rental; driver locked out of functions")
            .situation("Active rental in city traffic")
            .rate(S::S3, E::E2, C::C3), // B
        HazardRating::builder("SRat12", "S2", FM::TooLate)
            .hazard("Grace window lets the previous renter re-enter")
            .situation("Hand-over between two bookings")
            .rate(S::S1, E::E3, C::C2), // QM
    ];
    for builder in ratings {
        hara.add_rating(builder.build()?)?;
    }
    for (id, fm, why) in [
        ("SRat05", FM::Less, "Access grant is a discrete operation without magnitude"),
        ("SRat07", FM::Inverted, "The inverse of granting is the revocation function S2"),
        ("SRat11", FM::TooEarly, "Earlier revocation is the Unintended case in another situation"),
        ("SRat13", FM::Less, "Revocation is a discrete operation"),
        ("SRat14", FM::More, "Cannot revoke more than all access"),
        ("SRat15", FM::Inverted, "The inverse of revocation is the granting function S1"),
        ("SRat16", FM::Intermittent, "Flapping revocation is the Unintended case repeated"),
    ] {
        hara.add_rating(
            HazardRating::builder(id, if id < "SRat11" { "S1" } else { "S2" }, fm)
                .not_applicable(why)
                .build()?,
        )?;
    }

    let goals = [
        SafetyGoal::builder("SG01", "Grant access only to the verified booker")
            .ftti(Ftti::from_secs(1))
            .safe_state("Vehicle locked and immobilized")
            .covers("SRat02")
            .covers("SRat03"),
        SafetyGoal::builder("SG02", "Never revoke access or functions during an active rental")
            .ftti(Ftti::from_millis(500))
            .safe_state("Current rental session latched until standstill")
            .covers("SRat08")
            .covers("SRat10"),
        SafetyGoal::builder("SG03", "Terminate access reliably at booking end")
            .safe_state("Access tokens expired and actuators locked")
            .covers("SRat09"),
        SafetyGoal::builder("SG04", "Keep the access service available for bookers")
            .ftti(Ftti::from_secs(30))
            .safe_state("Fallback access path offered")
            .covers("SRat01"),
    ];
    for goal in goals {
        hara.add_safety_goal(goal.build()?)?;
    }
    Ok(hara)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extend the built-in threat library with sharing-specific threats.
    let mut library = automotive_library();
    library.add_threat_scenario(
        ThreatScenario::builder(
            "TS-CLOUD-SPOOF",
            "Forged booking confirmations grant access without a valid booking",
            ThreatType::Spoofing,
        )
        .asset("CLOUD_SHARING")
        .scenario(SC_ACCESS)
        .build()?,
    )?;
    library.add_threat_scenario(
        ThreatScenario::builder(
            "TS-CLOUD-DOS",
            "The booking service is flooded so access grants cannot be served",
            ThreatType::DenialOfService,
        )
        .asset("CLOUD_SHARING")
        .scenario(SC_ACCESS)
        .build()?,
    )?;
    library.add_threat_scenario(
        ThreatScenario::builder(
            "TS-CLOUD-LEAK",
            "Booking and movement data of travellers leaks from the sharing backend",
            ThreatType::InformationDisclosure,
        )
        .asset("CLOUD_SHARING")
        .scenario(SC_ACCESS)
        .build()?,
    )?;
    library.validate()?;

    // 2. Write the HARA.
    let hara = build_hara()?;
    println!("HARA: {}", hara.distribution());
    let concerns = identify_safety_concerns(&hara);
    for concern in &concerns {
        println!("  concern {} ({})", concern.goal(), concern.asil());
    }

    // 3. Let the derivation suggest candidates (RQ2-filtered), then author
    //    the attack descriptions.
    let config = DerivationConfig::new().scenario(SC_ACCESS).active_only();
    let candidates = derive_candidates(&concerns, &library, &config);
    println!(
        "\n{} candidate (goal x threat x attack type) combinations suggested",
        candidates.len()
    );

    let ad = |id: &str,
              desc: &str,
              goal: &str,
              threat: &str,
              tt,
              at: AttackType,
              pre: &str,
              succ: &str,
              fail: &str| {
        AttackDescription::builder(id, desc)
            .safety_goal(goal)
            .interface("CLOUD_API")
            .threat_scenario(threat)
            .threat_type(tt)
            .attack_type(at)
            .precondition(pre)
            .expected_measures("Signed bookings; backend rate limiting; revocation audit")
            .attack_success(succ)
            .attack_fails(fail)
            .impl_comments("Drive the cloud API mock with forged/bulk requests")
            .build()
    };
    let attacks = vec![
        ad(
            "SAD01",
            "Forge a booking confirmation to obtain vehicle access",
            "SG01",
            "TS-CLOUD-SPOOF",
            ThreatType::Spoofing,
            AttackType::FakeMessages,
            "No booking active for the attacker",
            "Vehicle grants access to the attacker",
            "Forged confirmation rejected; incident logged",
        )?,
        ad(
            "SAD02",
            "Tamper with booking records to extend an expired rental",
            "SG03",
            "TS-CLOUD-TAMPER",
            ThreatType::Tampering,
            AttackType::Alter,
            "Attacker's booking just ended",
            "Access persists past booking end",
            "Record integrity check fails; access revoked",
        )?,
        ad(
            "SAD03",
            "Flood the booking service to deny pick-ups",
            "SG04",
            "TS-CLOUD-DOS",
            ThreatType::DenialOfService,
            AttackType::DenialOfService,
            "Traveller attempting a pick-up",
            "Access grant not served within the availability budget",
            "Flood shed; grant latency within budget",
        )?,
        ad(
            "SAD04",
            "Replay a revocation message during an active rental",
            "SG02",
            "TS-CLOUD-TAMPER",
            ThreatType::Tampering,
            AttackType::Manipulate,
            "Active rental in traffic",
            "Functions revoked while driving",
            "Stale revocation rejected; session latched",
        )?,
    ];

    // 4. One library threat is deliberately not attacked: justify it
    //    (the inductive completeness escape hatch of §III).
    let justifications = vec![Justification::new(
        "TS-CLOUD-LEAK",
        "Backend data leakage is privacy-only and validated by the operator's data-protection \
         programme; it cannot violate the vehicle-level safety goals of this SUT",
    )?];

    let catalog = UseCaseCatalog {
        name: "Use Case III - Cloud-based vehicle sharing".to_owned(),
        hara,
        scenarios: vec![ScenarioId::new(SC_ACCESS)?],
        attacks,
        justifications,
    };

    // 5. Run the pipeline and export the report.
    let report = run_pipeline(&catalog, &library)?;
    println!("\nPipeline:");
    for stage in &report.stages {
        println!("  [{}] {}: {}", stage.stage, stage.title, stage.summary);
    }
    let (attacked, justified, uncovered) = report.inductive.counts();
    println!(
        "\nInductive coverage: {attacked} attacked, {justified} justified, {uncovered} uncovered"
    );
    assert!(report.is_complete(), "RQ1 must hold for the new use case");

    let rendered = render_validation_report(&catalog, &library)?;
    println!(
        "\nValidation report rendered: {} bytes (see export_report for file output)",
        rendered.len()
    );
    Ok(())
}
