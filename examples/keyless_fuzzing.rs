//! Protocol-guided fuzzing of the keyless-opener command decoder, driven
//! by TARA attack paths (paper §II-B, testing type 2).
//!
//! Builds the attack tree for the "open the vehicle" goal, extracts the
//! attack paths (which name the fuzzable interfaces), and fuzzes the
//! 33-byte keyless command frame against the gateway's decoder +
//! admission stack. Coverage is reported in percent, as the paper
//! prescribes.
//!
//! ```sh
//! cargo run --example keyless_fuzzing
//! ```

use saseval::controls::controls::{FreshnessWindow, MacAuthenticator, ReplayDetector};
use saseval::controls::mac::{MacKey, Tag};
use saseval::controls::{ControlStack, Envelope};
use saseval::fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval::fuzz::model::keyless_command_model;
use saseval::sim::keyless::Command;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::types::{Ftti, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // TARA attack tree for Use Case II's SG01 (paper §II-B).
    let tree = AttackTree::new(
        "Open the vehicle without authorization",
        TreeNode::or(
            "entry strategies",
            vec![
                TreeNode::and(
                    "relay attack",
                    vec![
                        TreeNode::leaf_on("relay BLE advertisement", "BLE_PHONE"),
                        TreeNode::leaf_on("forward challenge to real key", "BLE_PHONE"),
                    ],
                ),
                TreeNode::leaf_on("replay recorded open command", "BLE_PHONE"),
                TreeNode::leaf_on("forge command with guessed key ID", "ECU_GW"),
                TreeNode::and(
                    "malware path",
                    vec![
                        TreeNode::leaf_on("exploit BLE stack", "BLE_PHONE"),
                        TreeNode::leaf_on("inject open frame on CAN", "CAN_GW"),
                    ],
                ),
            ],
        ),
    )?;
    let paths = tree.paths()?;
    println!("Attack tree: goal {:?}", tree.goal());
    println!(
        "  {} leaves, {} attack paths, interfaces: {:?}\n",
        tree.leaf_count(),
        paths.len(),
        tree.interfaces().iter().map(|i| i.as_str()).collect::<Vec<_>>()
    );
    for (i, path) in paths.iter().enumerate() {
        println!("  path {i}: {}", path.steps().collect::<Vec<_>>().join(" -> "));
    }

    // The fuzz target: decode + admission through the gateway stack.
    let key = MacKey::new(0xF00D);
    let mut stack = ControlStack::new("GW-fuzz");
    stack.push(MacAuthenticator::new(key));
    stack.push(FreshnessWindow::new(Ftti::from_millis(500)));
    stack.push(ReplayDetector::new(8_192));

    let mut fuzzer = Fuzzer::new(keyless_command_model(), 0xC0FFEE);
    let now = SimTime::from_secs(1);
    let report = fuzzer.run(&paths, 20_000, |input| {
        let Some(command) = Command::decode(input) else {
            return TargetResponse::Rejected;
        };
        let mut envelope =
            Envelope::new("fuzz-sender", SimTime::from_micros(command.ts), vec![command.cmd])
                .with_claimed_id(command.key_id);
        if command.tag != 0 {
            envelope = envelope.with_tag(Tag::from_raw(command.tag));
        }
        if stack.admit(&envelope, now).is_accepted() {
            TargetResponse::Accepted
        } else {
            TargetResponse::Rejected
        }
    });

    println!("\nFuzzing report ({} iterations):", report.iterations);
    println!("  accepted: {}, rejected: {}", report.accepted, report.rejected);
    println!("  crashes/violations: {}", report.crashes.len());
    println!("  protocol field coverage: {:.1}%", report.field_coverage_percent());
    println!("  attack-path coverage:   {:.1}%", report.path_coverage_percent());
    assert!(report.crashes.is_empty(), "the admission stack must never crash");
    Ok(())
}
