//! Coverage-guided search over the keyless-entry scenario space
//! (paper §III-A: deriving validation scenarios, ROADMAP item 2).
//!
//! Declares the searchable scenario space (channel degradation,
//! attacker placement, FTTI variant, armed controls), runs the guided
//! search and a pure-random baseline at the same budget, and prints the
//! coverage each strategy reached plus the guided corpus — the compact
//! set of scenarios that together exercise every discovered
//! dimension-bucket × verdict cell.
//!
//! ```sh
//! cargo run --release --example scenario_search
//! ```

use saseval::fuzz::scenario::{ScenarioSearch, ScenarioSpace, DIM_NAMES};

fn main() {
    let space = ScenarioSpace::keyless_default();
    space.validate().expect("the built-in space is well-formed");
    println!("Scenario space (keyless world):");
    for (dim, name) in DIM_NAMES.iter().enumerate() {
        let range = space.range(dim);
        if range.is_pinned() {
            println!("  {name}: pinned at {}", range.lo);
        } else {
            println!("  {name}: {}..={}", range.lo, range.hi);
        }
    }

    const BUDGET: usize = 96;
    const SEED: u64 = 0xC0FFEE;
    let search = ScenarioSearch::new(space, SEED);
    let guided = search.run_parallel(BUDGET, 4);
    let random = search.run_random(BUDGET);

    println!("\nAt a budget of {BUDGET} scenario evaluations (seed {SEED:#x}):");
    println!(
        "  guided: {} cells, {} verdict paths, corpus of {} ({} evaluated)",
        guided.cells,
        guided.paths,
        guided.corpus.len(),
        guided.evaluated
    );
    println!(
        "  random: {} cells, {} verdict paths, corpus of {} ({} evaluated)",
        random.cells,
        random.paths,
        random.corpus.len(),
        random.evaluated
    );

    println!("\nGuided corpus (each scenario lit at least one new cell):");
    for record in &guided.corpus {
        let spec = &record.spec;
        println!(
            "  #{:>3} [{:?}] {:?}/{:?}/{:?} ftti={}ms  (+{} cells)",
            record.iteration,
            record.verdict,
            spec.channel,
            spec.attacker,
            spec.controls,
            spec.ftti_ms,
            record.new_cells
        );
    }

    assert!(
        guided.coverage_points() > random.coverage_points(),
        "guided search must beat random sampling at equal budget"
    );
    println!("\nGuided search beat random sampling at equal budget.");
}
