//! Quickstart: run the complete SaSeVAL process for both use cases of the
//! paper and print the artifacts the evaluation section reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use saseval::core::catalog::{use_case_1, use_case_2, UseCaseCatalog};
use saseval::core::pipeline::run_pipeline;
use saseval::core::report::TraceMatrix;
use saseval::threat::builtin::automotive_library;
use saseval::threat::ThreatLibrary;

fn run_use_case(
    catalog: &UseCaseCatalog,
    library: &ThreatLibrary,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {} ===", catalog.name);
    let report = run_pipeline(catalog, library)?;

    for stage in &report.stages {
        println!("  [{}] {}: {}", stage.stage, stage.title, stage.summary);
    }

    println!("  Safety concerns (test objectives, by descending ASIL):");
    for concern in &report.concerns {
        println!(
            "    {} ({}) — {} [effort x{}]",
            concern.goal(),
            concern.asil(),
            concern.statement(),
            concern.test_effort()
        );
    }

    println!(
        "  Attack descriptions: {} ({} safety, {} privacy)",
        report.attack_count,
        catalog.safety_attacks().count(),
        catalog.privacy_attacks().count()
    );

    let matrix = TraceMatrix::from_catalog(catalog);
    println!("  Attacks per safety goal (deductive trace):");
    for (goal, count) in matrix.attacks_per_goal() {
        println!("    {goal}: {count}");
    }

    let (attacked, justified, uncovered) = report.inductive.counts();
    println!(
        "  Inductive threat coverage: {attacked} attacked, {justified} justified, \
         {uncovered} uncovered ({:.0}%)",
        report.inductive.coverage_ratio() * 100.0
    );
    println!(
        "  RQ1 completeness: {}",
        if report.is_complete() { "PASS (deductive + inductive)" } else { "FAIL" }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = automotive_library();
    let stats = library.stats();
    println!(
        "Threat library: {} scenarios, {} assets, {} threat scenarios\n",
        stats.scenarios, stats.assets, stats.threat_scenarios
    );

    run_use_case(&use_case_1(), &library)?;
    run_use_case(&use_case_2(), &library)?;
    Ok(())
}
