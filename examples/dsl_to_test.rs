//! DSL round trip: author attack descriptions in the SaSeVAL DSL,
//! compile them to validated descriptions plus executable test cases, and
//! run them against the simulated SUT — the automation the paper's §V
//! conclusion announces ("It encodes the attacks such that it can be
//! automatically translated to test cases").
//!
//! ```sh
//! cargo run --example dsl_to_test
//! ```

use saseval::dsl::{compile_document, parse_document, print_document};
use saseval::engine::executor::{execute, TestCase};
use saseval::sim::config::ControlSelection;

const SOURCE: &str = r#"
// Table VI of the paper, encoded in the SaSeVAL DSL.
attack AD20 {
    description: "Attacker tries to overload the ECU by packet flooding"
    goals: SG01, SG02, SG03
    interface: OBU_RSU
    threat: TS-2.1.4
    types: "Denial of service" / "Disable"
    precondition: "Vehicle is approaching the construction side"
    measures: "Message counter for broken messages"
    success: "Shutdown of service"
    fails: "Security control identifies unwanted sender, enforce change of frequency"
    comments: "Create an authenticated sender as attacker besides the original sender"
    attacker: "remote attacker"
    execute: v2x-flood(per_tick = 40)
}

// Table VII of the paper, encoded in the SaSeVAL DSL.
attack AD08 {
    description: "The attacker uses modified keys to gain access to the vehicle"
    goals: SG01
    interface: ECU_GW
    threat: TS-3.1.4
    types: "Spoofing" / "Spoofing"
    precondition: "Vehicle is closed. Attacker has an authenticated communication link"
    measures: "Check received vehicles electronic ID with list of allowed IDs"
    success: "Open the vehicle"
    fails: "Opening is rejected"
    comments: "a) Randomly replace IDs of keys and b) test against increasing IDs"
    attacker: "thief"
    execute: key-spoof(strategy = random, budget = 1000)
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let document = parse_document(SOURCE)?;
    println!("Parsed {} attack declarations.", document.attacks.len());

    let compiled = compile_document(&document)?;
    for attack in &compiled {
        let ad = &attack.description;
        println!(
            "\n{}: {} [{} / {}]",
            ad.id(),
            ad.description(),
            ad.threat_type(),
            ad.attack_type()
        );
        println!("  precondition: {}", ad.precondition());
        println!("  expected measures: {}", ad.expected_measures());

        let Some(kind) = &attack.executable else {
            println!("  (no execute binding — concept-level only)");
            continue;
        };
        // Run against the undefended and the fully defended SUT.
        for (label, controls) in [
            ("undefended", ControlSelection::none()),
            ("expected measures deployed", ControlSelection::all()),
        ] {
            let case = TestCase {
                attack_id: ad.id().to_string(),
                label: label.to_owned(),
                kind: kind.clone(),
                controls,
                seed: 42,
            };
            let result = execute(&case);
            println!(
                "  [{label}] attack {} — criteria: success={:?} / fails detected={}",
                if result.attack_succeeded { "SUCCEEDED" } else { "failed" },
                result.violated_goals,
                result.detected
            );
        }
    }

    // The pretty-printer round-trips: regenerated source reparses to the
    // same document.
    let regenerated = print_document(&document);
    assert_eq!(parse_document(&regenerated)?, document);
    println!("\nPretty-printer round trip: OK ({} bytes regenerated).", regenerated.len());
    Ok(())
}
