//! # SaSeVAL — Safety/Security-Aware Validation of Safety-Critical Systems
//!
//! A Rust reproduction of *SaSeVAL: A Safety/Security-Aware Approach for
//! Validation of Safety-Critical Systems* (DSN 2021): a systematic process
//! that derives security **attack descriptions** from **safety goals**, so
//! that security testing provably covers every safety concern.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `saseval-types` | ASIL/STRIDE/attack-type vocabulary, IDs, sim time |
//! | [`hara`] | `saseval-hara` | ISO 26262 hazard analysis & risk assessment |
//! | [`tara`] | `saseval-tara` | Threat analysis, risk matrix, attack trees, HARA cross-check |
//! | [`threat`] | `saseval-threat` | The threat library (Tables I–V) |
//! | [`core`] | `saseval-core` | The SaSeVAL pipeline: concerns, attack descriptions, coverage |
//! | [`dsl`] | `saseval-dsl` | The attack-description DSL (§V) |
//! | [`net`] | `vehicle-net` | CAN / V2X / BLE network substrates |
//! | [`sim`] | `vehicle-sim` | The two use-case worlds (construction site, keyless opener) |
//! | [`controls`] | `security-controls` | MAC, freshness, replay, flood, allow-list, plausibility |
//! | [`engine`] | `attack-engine` | Executable attacks, executor, campaigns |
//! | [`fuzz`] | `saseval-fuzz` | Attack-path-guided protocol fuzzing |
//! | [`obs`] | `saseval-obs` | Counters/gauges/histograms/spans + JSON/Markdown export |
//! | [`lint`] | `saseval-lint` | Static analysis: `SASE…` diagnostics over all artifacts |
//! | [`server`] | `saseval-server` | Campaign server: TCP job protocol, result cache, warm worker pool |
//!
//! # Quickstart
//!
//! ```
//! use saseval::core::catalog::use_case_1;
//! use saseval::core::pipeline::run_pipeline;
//! use saseval::threat::builtin::automotive_library;
//!
//! // Run the full SaSeVAL process for the paper's Use Case I.
//! let report = run_pipeline(&use_case_1(), &automotive_library())?;
//! assert!(report.is_complete());          // RQ1: both coverage arguments hold
//! assert_eq!(report.attack_count, 23);    // §IV-A: 23 attack descriptions
//! # Ok::<(), saseval::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use attack_engine as engine;
pub use saseval_core as core;
pub use saseval_dsl as dsl;
pub use saseval_fuzz as fuzz;
pub use saseval_hara as hara;
pub use saseval_lint as lint;
pub use saseval_obs as obs;
pub use saseval_server as server;
pub use saseval_tara as tara;
pub use saseval_threat as threat;
pub use saseval_types as types;
pub use security_controls as controls;
pub use vehicle_net as net;
pub use vehicle_sim as sim;
