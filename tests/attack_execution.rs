//! End-to-end execution of the paper's attack descriptions against the
//! simulated SUTs — the shape claims of Tables VI/VII and the §IV prose.

use saseval::engine::builtin::{
    ablation_grid, ad08_cases, ad20_cases, can_flood_cases, full_campaign, jamming_cases,
    replay_cases,
};
use saseval::engine::campaign::{run_campaign, run_campaign_parallel};
use saseval::engine::executor::WorldOutcome;
use saseval::types::Ftti;

#[test]
fn ad20_table_vi_shape() {
    // "Attack Success: Shutdown of service" without the control;
    // "Attack Fails: Security control identifies unwanted sender" with it.
    let report = run_campaign(&ad20_cases());
    let undefended = &report.results[0];
    assert!(undefended.attack_succeeded);
    let WorldOutcome::Construction(o) = &undefended.outcome else { panic!("wrong world") };
    assert!(o.service_shutdown);
    assert!(o.sg01_violated, "safety impact: no control hand-over");

    let defended = &report.results[1];
    assert!(!defended.attack_succeeded);
    assert!(defended.detected, "unwanted sender identified");
    let WorldOutcome::Construction(o) = &defended.outcome else { panic!("wrong world") };
    assert!(!o.service_shutdown);
    assert!(!o.any_violation(), "{o:?}");
    assert!(o.isolated_senders.iter().any(|s| s == "attacker"));
}

#[test]
fn ad08_table_vii_shape() {
    // "Attack Success: Open the vehicle" / "Attack Fails: Opening is
    // rejected", for both guessing variants of the impl comments.
    let report = run_campaign(&ad08_cases());
    assert!(!report.results[0].attack_succeeded, "random IDs rejected");
    assert!(!report.results[1].attack_succeeded, "incrementing IDs rejected");
    assert!(report.results[2].attack_succeeded, "no allow-list: vehicle opens");
    let WorldOutcome::Keyless(o) = &report.results[2].outcome else { panic!("wrong world") };
    assert!(o.lock_open);
}

#[test]
fn replay_beats_encryption_alone() {
    // §IV-B: "attacks that may occur despite having a valid end-to-end
    // encryption … replay attacks" — defeated by timestamps /
    // challenge-response, not by authentication.
    let report = run_campaign(&replay_cases());
    let by_label =
        |label: &str| report.results.iter().find(|r| r.label == label).unwrap().attack_succeeded;
    assert!(!by_label("opening replay, full controls"));
    assert!(by_label("opening replay, authentication only"));
    assert!(!by_label("warning replay, full controls"));
    assert!(by_label("warning replay, no freshness"));
}

#[test]
fn can_flood_availability_shape() {
    // §IV-B: flooding the CAN bus via forwarded Bluetooth requests
    // reduces availability of the opening function (SG03).
    let report = run_campaign(&can_flood_cases());
    let undefended = &report.results[0];
    assert!(undefended.attack_succeeded);
    let WorldOutcome::Keyless(o) = &undefended.outcome else { panic!("wrong world") };
    assert!(o.sg03_violated);
    assert!(o.open_latency.is_none() || o.open_latency.unwrap() > Ftti::from_secs(5));

    let defended = &report.results[1];
    assert!(!defended.attack_succeeded);
    let WorldOutcome::Keyless(o) = &defended.outcome else { panic!("wrong world") };
    let latency = o.open_latency.expect("open served");
    assert!(latency <= Ftti::from_secs(5), "latency {latency}");
}

#[test]
fn jamming_is_a_residual_risk() {
    // Physical-layer jamming defeats every message-level control — the
    // class of attacks "not covered by classical security controls"
    // (§IV-A discussion).
    let report = run_campaign(&jamming_cases());
    for result in &report.results {
        assert!(result.attack_succeeded, "{} should succeed", result.label);
    }
}

#[test]
fn ablation_controls_monotone() {
    // Per attack, moving from no controls to the full stack never turns a
    // defeated attack back into a successful one.
    let report = run_campaign(&ablation_grid());
    let order = ["none", "auth-only", "auth+freshness+replay", "full"];
    for attack in ["AD20", "UC1-AD10", "UC1-AD17", "UC2-AD01", "UC2-AD14"] {
        let successes: Vec<bool> = order
            .iter()
            .map(|label| {
                report
                    .for_attack(attack)
                    .find(|r| r.label == *label)
                    .unwrap_or_else(|| panic!("{attack}/{label}"))
                    .attack_succeeded
            })
            .collect();
        // Once an attack is stopped it stays stopped as controls grow.
        let mut stopped = false;
        for (i, success) in successes.iter().enumerate() {
            if stopped {
                assert!(!success, "{attack}: succeeded again at {}", order[i]);
            }
            if !success {
                stopped = true;
            }
        }
        assert!(successes[0], "{attack} succeeds undefended");
        assert!(!successes[3], "{attack} defeated by the full stack");
    }
}

#[test]
fn campaign_parallel_equals_serial() {
    let cases = full_campaign();
    let serial = run_campaign(&cases);
    let parallel = run_campaign_parallel(&cases, 8);
    assert_eq!(serial.total(), parallel.total());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.attack_id, p.attack_id);
        assert_eq!(s.label, p.label);
        assert_eq!(s.attack_succeeded, p.attack_succeeded);
        assert_eq!(s.detected, p.detected);
        assert_eq!(s.violated_goals, p.violated_goals);
    }
}

#[test]
fn campaign_results_serialize() {
    // The repro binaries persist campaign reports as JSON.
    let report = run_campaign(&ad20_cases());
    let json = serde_json::to_string(&report.results).expect("serialize");
    assert!(json.contains("AD20"));
    assert!(json.contains("attack_succeeded"));
}
