//! Properties of the coverage-guided scenario search:
//!
//! 1. a fixed `(seed, shards)` pair reproduces a byte-identical report —
//!    serialized JSON and corpus hash — across repeated executions;
//! 2. `run_parallel` with one shard equals the serial `run`, and the
//!    report agrees across several shard counts for the same seed;
//! 3. sampled specs, spaces and scenario files survive a serde
//!    round-trip unchanged (same value, same canonical hash);
//! 4. the mutation operators never leave the declared search space.
//!
//! Budgets are tiny: every evaluation forks a full vehicle world per
//! fuzzed input, so the suite buys its confidence from many small
//! campaigns rather than a few large ones.

use proptest::prelude::*;

use saseval::fuzz::scenario::{
    NamedScenario, ScenarioFile, ScenarioSampler, ScenarioSearch, ScenarioSpace, ScenarioSpec,
    DIMENSIONS,
};

fn space_for(construction: bool) -> ScenarioSpace {
    if construction {
        ScenarioSpace::construction_default()
    } else {
        ScenarioSpace::keyless_default()
    }
}

fn search_for(construction: bool, seed: u64) -> ScenarioSearch {
    ScenarioSearch::new(space_for(construction), seed).with_eval_iterations(1)
}

proptest! {
    // Each case runs full scenario evaluations against the simulator;
    // keep the sample count low and the budgets small.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline determinism contract: fixed `(seed, shards)` means a
    /// byte-identical serialized report, hence a byte-identical corpus.
    #[test]
    fn fixed_seed_and_shards_reproduce_byte_identical_reports(
        seed in 0u64..1_000,
        budget in 1usize..=4,
        shards in 1usize..=3,
        construction in any::<bool>(),
    ) {
        let run = || {
            let report = search_for(construction, seed).run_parallel(budget, shards);
            let bytes = serde_json::to_string(&report).expect("report serializes");
            (bytes, report.corpus_hash())
        };
        prop_assert_eq!(run(), run());
    }

    /// `shards == 1` takes the same code path as the serial entry point.
    #[test]
    fn one_shard_equals_serial(
        seed in 0u64..1_000,
        budget in 1usize..=4,
        construction in any::<bool>(),
    ) {
        let serial = search_for(construction, seed).run(budget);
        let sharded = search_for(construction, seed).run_parallel(budget, 1);
        prop_assert_eq!(serial, sharded);
    }

    /// Sampled specs and their enclosing space survive serialization:
    /// the round-tripped value is equal and hashes to the same canonical
    /// key, so cache keys never drift across the wire.
    #[test]
    fn sampler_output_round_trips_through_serde(
        seed in any::<u64>(),
        draws in 1usize..16,
        construction in any::<bool>(),
    ) {
        let space = space_for(construction);
        let json = serde_json::to_string(&space).expect("space serializes");
        let back: ScenarioSpace = serde_json::from_str(&json).expect("space parses");
        prop_assert_eq!(back, space);

        let mut sampler = ScenarioSampler::new(space, seed);
        for _ in 0..draws {
            let spec = sampler.sample();
            prop_assert!(space.validate_spec(&spec).is_ok(), "sampled spec in range");
            let json = serde_json::to_string(&spec).expect("spec serializes");
            let back: ScenarioSpec = serde_json::from_str(&json).expect("spec parses");
            prop_assert_eq!(back, spec);
            prop_assert_eq!(back.canonical_hash(), spec.canonical_hash());
        }
    }

    /// Mutation never escapes the declared space, no matter how many
    /// times it is applied in sequence.
    #[test]
    fn mutations_never_leave_the_search_space(
        seed in any::<u64>(),
        steps in 1usize..48,
        construction in any::<bool>(),
    ) {
        let space = space_for(construction);
        let mut sampler = ScenarioSampler::new(space, seed);
        let mut spec = sampler.sample();
        for step in 0..steps {
            spec = sampler.mutate(&spec);
            prop_assert!(
                space.validate_spec(&spec).is_ok(),
                "mutation step {step} left the space: {:?}",
                spec
            );
            for dim in 0..DIMENSIONS {
                prop_assert!(space.range(dim).contains(spec.value(dim)), "dim {dim} in range");
            }
        }
    }

    /// Scenario data files — the `.scn.json` format the linter checks —
    /// round-trip through serde without loss.
    #[test]
    fn scenario_files_round_trip_through_serde(
        seed in any::<u64>(),
        count in 1usize..5,
        construction in any::<bool>(),
    ) {
        let space = space_for(construction);
        let mut sampler = ScenarioSampler::new(space, seed);
        let scenarios = (0..count)
            .map(|i| NamedScenario { name: format!("case-{i}"), spec: sampler.sample() })
            .collect();
        let file = ScenarioFile { space, scenarios };
        let json = serde_json::to_string_pretty(&file).expect("file serializes");
        let back: ScenarioFile = serde_json::from_str(&json).expect("file parses");
        prop_assert_eq!(back, file);
    }
}

/// Exhaustive small-case check (not proptest-sampled): every shard count
/// from 1 to 4 over a fixed workload reproduces itself, and the merged
/// corpus is sorted by global iteration with unique parameter sets.
#[test]
fn all_small_shard_counts_are_reproducible_and_canonically_ordered() {
    for construction in [false, true] {
        for shards in 1..=4usize {
            let run = || search_for(construction, 11).run_parallel(6, shards);
            let report = run();
            assert_eq!(report, run(), "{shards} shards reproduce");
            assert_eq!(report.budget, 6);
            assert!(report.evaluated <= report.budget);
            let mut seen = std::collections::HashSet::new();
            for pair in report.corpus.windows(2) {
                assert!(pair[0].iteration < pair[1].iteration, "corpus sorted by iteration");
            }
            for record in &report.corpus {
                assert!(seen.insert(record.spec.canonical_hash()), "corpus specs unique");
            }
        }
    }
}
