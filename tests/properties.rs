//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use saseval::controls::controls::{
    FloodDetector, FreshnessWindow, MacAuthenticator, ReplayDetector,
};
use saseval::controls::mac::{MacKey, Tag};
use saseval::controls::pseudonym::{eavesdrop_campaign, PseudonymScheme};
use saseval::controls::{Envelope, SecurityControl};
use saseval::net::can::{CanBus, CanBusConfig, CanFrame, CanId};
use saseval::sim::kernel::EventQueue;
use saseval::types::{
    determine_asil, AsilLevel, Controllability, Exposure, Ftti, RatingClass, Severity, SimTime,
};

fn severity() -> impl Strategy<Value = Severity> {
    prop_oneof![Just(Severity::S0), Just(Severity::S1), Just(Severity::S2), Just(Severity::S3),]
}

fn exposure() -> impl Strategy<Value = Exposure> {
    prop_oneof![
        Just(Exposure::E0),
        Just(Exposure::E1),
        Just(Exposure::E2),
        Just(Exposure::E3),
        Just(Exposure::E4),
    ]
}

fn controllability() -> impl Strategy<Value = Controllability> {
    prop_oneof![
        Just(Controllability::C0),
        Just(Controllability::C1),
        Just(Controllability::C2),
        Just(Controllability::C3),
    ]
}

proptest! {
    /// The explicit ISO 26262 table always agrees with the sum rule.
    #[test]
    fn asil_table_equals_sum_rule(s in severity(), e in exposure(), c in controllability()) {
        let computed = determine_asil(s, e, c);
        let expected = if s == Severity::S0 || e == Exposure::E0 || c == Controllability::C0 {
            RatingClass::Qm
        } else {
            match s.value() + e.value() + c.value() {
                7 => RatingClass::Asil(AsilLevel::A),
                8 => RatingClass::Asil(AsilLevel::B),
                9 => RatingClass::Asil(AsilLevel::C),
                10 => RatingClass::Asil(AsilLevel::D),
                _ => RatingClass::Qm,
            }
        };
        prop_assert_eq!(computed, expected);
    }

    /// ASIL determination is monotone in every parameter.
    #[test]
    fn asil_monotone(s in severity(), e in exposure(), c in controllability()) {
        let here = determine_asil(s, e, c);
        for s2 in Severity::ALL {
            if s2 >= s {
                prop_assert!(determine_asil(s2, e, c) >= here || s == Severity::S0);
            }
        }
    }

    /// CAN arbitration: with everything submitted at t=0, deliveries are
    /// sorted by identifier (lowest first), and nothing is silently lost.
    #[test]
    fn can_arbitration_orders_by_id(ids in prop::collection::vec(0u16..0x7FF, 1..20)) {
        let mut bus = CanBus::new(CanBusConfig { bitrate_bps: 500_000, tx_queue_depth: 64 });
        for (i, id) in ids.iter().enumerate() {
            let frame = CanFrame::new(
                CanId::new(*id).unwrap(),
                bytes::Bytes::from_static(&[0u8; 4]),
                format!("node-{i}"),
            )
            .unwrap();
            bus.submit(frame, SimTime::ZERO).unwrap();
        }
        let deliveries = bus.advance(SimTime::from_secs(10));
        prop_assert_eq!(deliveries.len(), ids.len());
        let delivered_ids: Vec<u16> = deliveries.iter().map(|d| d.frame.id().raw()).collect();
        let mut sorted = delivered_ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(delivered_ids, sorted);
        // Completion times strictly increase (one bus, serial medium).
        for pair in deliveries.windows(2) {
            prop_assert!(pair[0].completed_at < pair[1].completed_at);
        }
    }

    /// The replay detector accepts any first-seen message and rejects its
    /// exact re-delivery while it is in the cache.
    #[test]
    fn replay_detector_soundness(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..30)
    ) {
        let mut detector = ReplayDetector::new(1024);
        let mut seen: Vec<Vec<u8>> = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            let env = Envelope::new("s", SimTime::from_micros(i as u64), payload.clone());
            prop_assert!(detector.check(&env, SimTime::ZERO).is_ok(), "fresh message accepted");
            seen.push(payload.clone());
            // Every previously seen (sender, time, payload) triple rejects.
            let replay = Envelope::new("s", SimTime::from_micros(i as u64), payload.clone());
            prop_assert!(detector.check(&replay, SimTime::ZERO).is_err());
        }
    }

    /// MAC: verify(sign(m)) holds; flipping any payload byte breaks it.
    #[test]
    fn mac_sign_verify(data in prop::collection::vec(any::<u8>(), 0..64), flip in any::<usize>()) {
        let key = MacKey::new(0xFEED);
        let tag = key.sign(&data);
        prop_assert!(key.verify(&data, tag));
        if !data.is_empty() {
            let mut corrupted = data.clone();
            let at = flip % corrupted.len();
            corrupted[at] ^= 0x01;
            prop_assert!(!key.verify(&corrupted, tag));
        }
        // A random tag guess is (practically) never valid.
        prop_assert!(!key.verify(&data, Tag::from_raw(tag.raw().wrapping_add(1))));
    }

    /// Freshness: accepts exactly the window [now - w, now + skew].
    #[test]
    fn freshness_window_boundaries(age_ms in 0u64..2_000, window_ms in 1u64..1_000) {
        let mut control = FreshnessWindow::new(Ftti::from_millis(window_ms));
        let now = SimTime::from_secs(10);
        let generated = SimTime::from_micros(now.as_micros() - age_ms * 1_000);
        let env = Envelope::new("s", generated, vec![]);
        let accepted = control.check(&env, now).is_ok();
        prop_assert_eq!(accepted, age_ms <= window_ms);
    }

    /// The event queue dequeues in (time, insertion) order regardless of
    /// schedule order.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u64..1_000, 1..50)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(*t), (*t, i));
        }
        let drained = queue.pop_due(SimTime::from_secs(1));
        prop_assert_eq!(drained.len(), times.len());
        for pair in drained.windows(2) {
            let (t1, i1) = pair[0];
            let (t2, i2) = pair[1];
            prop_assert!(t1 < t2 || (t1 == t2 && i1 < i2));
        }
    }

    /// Authenticated-envelope round trip: what a legitimate sender signs,
    /// the authenticator accepts; any change of sender identity breaks it.
    #[test]
    fn mac_authenticator_binds_sender(
        payload in prop::collection::vec(any::<u8>(), 0..32),
        sender in "[a-z]{1,10}",
        impostor in "[A-Z]{1,10}",
    ) {
        let key = MacKey::new(7);
        let mut auth = MacAuthenticator::new(key);
        let t = SimTime::from_millis(5);
        let tag = MacAuthenticator::sign(key, &sender, &payload, t);
        let genuine = Envelope::new(sender.clone(), t, payload.clone()).with_tag(tag);
        prop_assert!(auth.check(&genuine, t).is_ok());
        let stolen = Envelope::new(impostor, t, payload).with_tag(tag);
        prop_assert!(auth.check(&stolen, t).is_err());
    }

    /// The flood detector admits at most `max` messages per sender within
    /// any trailing window, regardless of the arrival pattern.
    #[test]
    fn flood_detector_never_exceeds_rate(
        arrivals_ms in prop::collection::vec(0u64..5_000, 1..200),
        max in 1usize..20,
    ) {
        let window_ms = 1_000u64;
        let mut sorted = arrivals_ms.clone();
        sorted.sort_unstable();
        let mut detector = FloodDetector::new(max, Ftti::from_millis(window_ms));
        let env = Envelope::new("s", SimTime::ZERO, vec![]);
        let mut accepted: Vec<u64> = Vec::new();
        for t in &sorted {
            if detector.check(&env, SimTime::from_millis(*t)).is_ok() {
                accepted.push(*t);
            }
        }
        // In any trailing window ending at an accepted arrival, at most
        // `max` acceptances.
        for (i, t) in accepted.iter().enumerate() {
            let in_window = accepted[..=i]
                .iter()
                .filter(|a| t - *a <= window_ms)
                .count();
            prop_assert!(in_window <= max, "window ending {t} holds {in_window} > {max}");
        }
    }

    /// Faster pseudonym rotation never increases eavesdropper linkability.
    #[test]
    fn pseudonym_rotation_monotone(seed in any::<u64>()) {
        let interval = Ftti::from_secs(1);
        let duration = Ftti::from_secs(300);
        let mut last = f64::INFINITY;
        for period_s in [300u64, 60, 10, 2] {
            let scheme = PseudonymScheme::new(Ftti::from_secs(period_s), seed);
            let observer = eavesdrop_campaign(&scheme, 42, interval, duration);
            let linkability = observer.linkability();
            prop_assert!(linkability <= last, "period {period_s}: {linkability} > {last}");
            last = linkability;
        }
    }

    /// CAN bandwidth conservation: the bus never delivers more bits per
    /// virtual second than its configured bit rate.
    #[test]
    fn can_bandwidth_conserved(
        submissions in prop::collection::vec((0u16..0x7FF, 0usize..9), 1..60),
    ) {
        let bitrate = 125_000u32;
        let mut bus = CanBus::new(CanBusConfig { bitrate_bps: bitrate, tx_queue_depth: 128 });
        for (i, (id, len)) in submissions.iter().enumerate() {
            let frame = CanFrame::new(
                CanId::new(*id).unwrap(),
                bytes::Bytes::from(vec![0u8; *len]),
                format!("n{i}"),
            )
            .unwrap();
            bus.submit(frame, SimTime::ZERO).unwrap();
        }
        let horizon = SimTime::from_secs(10);
        let deliveries = bus.advance(horizon);
        prop_assert_eq!(deliveries.len(), submissions.len(), "nothing lost below queue depth");
        let total_bits: u64 =
            deliveries.iter().map(|d| u64::from(d.frame.wire_bits())).sum();
        let last = deliveries.last().unwrap().completed_at;
        // bits delivered by `last` must fit into the bit budget of the
        // elapsed time (integer truncation gives the bus ≤1 bit slack per
        // frame; allow the frame count as tolerance).
        let budget =
            last.as_micros() * u64::from(bitrate) / 1_000_000 + deliveries.len() as u64;
        prop_assert!(
            total_bits <= budget,
            "delivered {total_bits} bits by {last} exceeds budget {budget}"
        );
    }
}
