//! Failure injection: the simulated SUTs under degraded environments —
//! channel loss sweeps, jamming windows, bus-off recovery, connection
//! supervision, horizon exhaustion.

use bytes::Bytes;

use saseval::net::ble::{BleConfig, BleLink};
use saseval::net::can::{CanBus, CanBusConfig, CanFrame, CanId, NodeErrorState};
use saseval::net::v2x::V2xConfig;
use saseval::sim::config::ControlSelection;
use saseval::sim::construction::{ConstructionConfig, ConstructionWorld};
use saseval::sim::keyless::{KeylessConfig, KeylessWorld};
use saseval::types::{Ftti, SimTime};

#[test]
fn construction_tolerates_moderate_channel_loss() {
    // The RSU re-broadcasts every 100 ms; even 50% loss leaves plenty of
    // accepted warnings over an 800 m approach.
    for loss in [0.0, 0.1, 0.3, 0.5] {
        let config = ConstructionConfig {
            v2x: V2xConfig { latency_us: 2_000, jitter_us: 500, loss_prob: loss },
            ..Default::default()
        };
        let outcome = ConstructionWorld::new(config).run_nominal();
        assert!(!outcome.any_violation(), "loss {loss}: {outcome:?}");
    }
}

#[test]
fn construction_fails_safe_visibility_at_extreme_loss() {
    // At 100% loss no warning ever arrives: the violation predicates must
    // report it (this is the oracle the jamming attacks rely on).
    let config = ConstructionConfig {
        v2x: V2xConfig { latency_us: 2_000, jitter_us: 0, loss_prob: 1.0 },
        ..Default::default()
    };
    let outcome = ConstructionWorld::new(config).run_nominal();
    assert!(outcome.sg01_violated);
    assert!(outcome.takeover_requested_at.is_none());
}

#[test]
fn loss_sweep_outcomes_are_reproducible_per_seed() {
    let run = |seed| {
        let config = ConstructionConfig {
            v2x: V2xConfig { latency_us: 2_000, jitter_us: 500, loss_prob: 0.4 },
            seed,
            ..Default::default()
        };
        let o = ConstructionWorld::new(config).run_nominal();
        (o.entered_zone_at, o.takeover_requested_at, o.mode_switches)
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn can_bus_off_and_recovery() {
    let mut bus = CanBus::new(CanBusConfig::default());
    let frame = |sender: &str| {
        CanFrame::new(CanId::new(0x100).unwrap(), Bytes::from_static(b"data"), sender).unwrap()
    };
    // Drive the node to bus-off with injected transmission errors.
    for _ in 0..32 {
        bus.report_error("ECU");
    }
    assert_eq!(bus.error_state("ECU"), NodeErrorState::BusOff);
    assert!(bus.submit(frame("ECU"), SimTime::ZERO).is_err());
    // Other nodes keep communicating.
    assert!(bus.submit(frame("GW"), SimTime::ZERO).is_ok());
    assert_eq!(bus.advance(SimTime::from_secs(1)).len(), 1);
    // After recovery the node transmits again.
    bus.recover("ECU");
    assert!(bus.submit(frame("ECU"), SimTime::from_secs(1)).is_ok());
    assert_eq!(bus.advance(SimTime::from_secs(2)).len(), 1);
}

#[test]
fn ble_supervision_drop_and_reconnect() {
    let config = BleConfig {
        latency_us: 1_000,
        loss_prob: 0.0,
        supervision_timeout: Ftti::from_millis(100),
    };
    let mut link = BleLink::new(config, 1);
    link.start_advertising(SimTime::ZERO);
    link.connect("phone", SimTime::ZERO).unwrap();
    link.send("phone", Bytes::from_static(b"x"), SimTime::ZERO).unwrap();
    link.poll(SimTime::from_millis(2));
    // Silence beyond the supervision timeout drops the connection …
    link.poll(SimTime::from_millis(500));
    assert!(!link.is_connected());
    assert_eq!(link.stats().supervision_drops, 1);
    // … and the peripheral is advertising again, so reconnection works.
    link.connect("phone", SimTime::from_millis(600)).unwrap();
    assert!(link.is_connected());
}

#[test]
fn keyless_open_survives_lossy_link() {
    // 20% frame loss: the single open command may be lost, but the run
    // must stay deterministic and never report an unauthorized open.
    for seed in 0..10 {
        let config = KeylessConfig {
            ble: BleConfig {
                latency_us: 5_000,
                loss_prob: 0.2,
                supervision_timeout: Ftti::from_secs(2),
            },
            seed,
            ..Default::default()
        };
        let mut world = KeylessWorld::new(config);
        world.schedule_owner_open(SimTime::from_secs(1));
        let outcome = world.run_nominal();
        assert!(!outcome.unauthorized_open, "seed {seed}");
        assert!(!outcome.sg02_violated, "seed {seed}");
        // Either served (usually) or lost to the channel — never both
        // open and unserved.
        if outcome.lock_open {
            assert!(outcome.open_latency.is_some(), "seed {seed}");
        }
    }
}

#[test]
fn stationary_vehicle_exhausts_horizon_without_violations() {
    let config = ConstructionConfig {
        initial_speed_mps: 0.0,
        horizon: Ftti::from_secs(3),
        ..Default::default()
    };
    let outcome = ConstructionWorld::new(config).run_nominal();
    assert!(!outcome.sg01_violated);
    assert!(!outcome.sg04_violated);
}

#[test]
fn controls_off_baseline_still_nominal_without_attacker() {
    // Removing every control must not break nominal operation — controls
    // only reject, they never create safety functions.
    let config = ConstructionConfig { controls: ControlSelection::none(), ..Default::default() };
    let outcome = ConstructionWorld::new(config).run_nominal();
    assert!(!outcome.any_violation(), "{outcome:?}");

    let kconfig = KeylessConfig { controls: ControlSelection::none(), ..Default::default() };
    let mut world = KeylessWorld::new(kconfig);
    world.schedule_owner_open(SimTime::from_secs(1));
    world.schedule_owner_close(SimTime::from_secs(6));
    let outcome = world.run_nominal();
    assert!(!outcome.sg01_violated);
    assert!(!outcome.sg03_violated);
    assert_eq!(outcome.transitions, 2);
}

#[test]
fn obu_queue_bound_enforced_even_without_attack() {
    // A pathologically slow OBU (budget 0) starves itself: the service
    // must shut down rather than grow its queue without bound.
    let config = ConstructionConfig {
        obu_budget_per_tick: 0,
        obu_queue_limit: 8,
        horizon: Ftti::from_secs(60),
        ..Default::default()
    };
    let outcome = ConstructionWorld::new(config).run_nominal();
    assert!(outcome.service_shutdown);
    assert!(outcome.sg01_violated);
}
