//! Golden-file tests for `saseval-lint`.
//!
//! A seeded-defect catalog, DSL document and scenario file trigger every
//! rule in the registry exactly once; the rendered text and SARIF JSON
//! outputs are compared byte-for-byte against checked-in golden files,
//! and the run is repeated to prove the ordering is deterministic.
//!
//! Regenerate the golden files after an intentional output change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test lint_golden
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use saseval::core::catalog::UseCaseCatalog;
use saseval::core::{AttackDescription, Justification};
use saseval::fuzz::scenario::ScenarioFile;
use saseval::hara::{Hara, HazardRating, ItemFunction, SafetyGoal};
use saseval::lint::{
    registry, render_json, render_text, run_lint, EvidenceRecord, LintConfig, LintContext,
    LintReport, ScenarioDocument, SourceDocument, TraceInputs, VerdictRecord,
};
use saseval::obs::Obs;
use saseval::threat::{Asset, ThreatLibrary, ThreatScenario};
use saseval::types::{
    AssetGroup, AttackType, Controllability, Exposure, FailureMode, Ftti, Severity, ThreatType,
};

/// Relative fixture path; also the document name that appears in loci,
/// so golden output stays machine-independent.
const FIXTURE: &str = "tests/fixtures/seeded_defects.sasedsl";

/// The seeded scenario file: each scenario rule (`SASE025`–`SASE029`)
/// fires exactly once on it.
const SCENARIO_FIXTURE: &str = "tests/fixtures/scenarios/seeded/defects.scn.json";

fn attack(id: &str, goal: &str, threat: &str, tt: ThreatType, at: AttackType) -> AttackDescription {
    AttackDescription::builder(id, "seeded attack")
        .safety_goal(goal)
        .threat_scenario(threat)
        .threat_type(tt)
        .attack_type(at)
        .precondition("p")
        .attack_success("s")
        .attack_fails("f")
        .build()
        .unwrap()
}

/// A library whose threats are deliberately mishandled by the catalog:
/// `TS-A` (Spoofing) is attacked, `TS-B` (DoS) is attacked *and*
/// justified, `TS-C` (Tampering) is left uncovered.
fn seeded_library() -> ThreatLibrary {
    let mut library = ThreatLibrary::new();
    library
        .add_asset(
            Asset::builder("A-TEST", "test asset").group(AssetGroup::Software).build().unwrap(),
        )
        .unwrap();
    for (id, description, tt) in [
        ("TS-A", "spoofed key identifiers", ThreatType::Spoofing),
        ("TS-B", "flooded communication channel", ThreatType::DenialOfService),
        ("TS-C", "manipulated allowlist", ThreatType::Tampering),
    ] {
        library
            .add_threat_scenario(
                ThreatScenario::builder(id, description, tt).asset("A-TEST").build().unwrap(),
            )
            .unwrap();
    }
    library
}

/// A catalog seeded so that every artifact rule (`SASE001`–`SASE009`)
/// fires exactly once.
fn seeded_catalog() -> UseCaseCatalog {
    let mut hara = Hara::new("seeded item");
    hara.add_function(ItemFunction::new("F1", "seeded function").unwrap()).unwrap();
    for (id, failure_mode, controllability) in [
        ("R1", FailureMode::No, Controllability::C3),
        ("R2", FailureMode::More, Controllability::C2),
        ("R3", FailureMode::Less, Controllability::C2),
    ] {
        hara.add_rating(
            HazardRating::builder(id, "F1", failure_mode)
                .hazard("seeded hazard")
                .rate(Severity::S3, Exposure::E4, controllability)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    // SG01 (ASIL D): attacked, has an FTTI — clean.
    // SG02 (ASIL C): has an FTTI but no attack — SASE006.
    // SG03 (ASIL C): attacked but no FTTI — SASE007.
    let mut goals = vec![
        SafetyGoal::builder("SG01", "g1").covers("R1").ftti(Ftti::from_millis(500)),
        SafetyGoal::builder("SG02", "g2").covers("R2").ftti(Ftti::from_millis(500)),
        SafetyGoal::builder("SG03", "g3").covers("R3"),
    ];
    for goal in goals.drain(..) {
        hara.add_safety_goal(goal.build().unwrap()).unwrap();
    }

    let attacks = vec![
        // Clean: covers SG01, attacks TS-A with a matching STRIDE type.
        attack("AD01", "SG01", "TS-A", ThreatType::Spoofing, AttackType::Spoofing),
        // Clean: covers SG03, attacks TS-B.
        attack("AD02", "SG03", "TS-B", ThreatType::DenialOfService, AttackType::Jamming),
        // SASE001: references safety goal SG99 which the HARA lacks.
        attack("AD03", "SG99", "TS-A", ThreatType::Spoofing, AttackType::Spoofing),
        // SASE002: references threat scenario TS-MISSING.
        attack("AD04", "SG01", "TS-MISSING", ThreatType::Spoofing, AttackType::Spoofing),
        // SASE008: declares Tampering but TS-A is a Spoofing threat.
        attack("AD05", "SG01", "TS-A", ThreatType::Tampering, AttackType::Manipulate),
        // SASE003: the same ID declared twice.
        attack("AD06", "SG01", "TS-A", ThreatType::Spoofing, AttackType::Spoofing),
        attack("AD06", "SG01", "TS-A", ThreatType::Spoofing, AttackType::Spoofing),
    ];
    let justifications = vec![
        // SASE005: TS-B is attacked by AD02, so this is stale.
        Justification::new("TS-B", "legacy: believed unreachable").unwrap(),
        // SASE009: TS-GONE is not in the library.
        Justification::new("TS-GONE", "dangling rationale").unwrap(),
    ];
    // TS-C stays uncovered — SASE004.
    UseCaseCatalog {
        name: "seeded-defects".to_owned(),
        hara,
        scenarios: Vec::new(),
        attacks,
        justifications,
    }
}

/// A library for the trace-graph run: `TS-P`/`TS-Q`/`TS-R` are attacked,
/// `TS-S`/`TS-T` are justified by a mutually-superseding pair (the
/// seeded `SASE019` cycle).
fn trace_library() -> ThreatLibrary {
    let mut library = ThreatLibrary::new();
    library
        .add_asset(Asset::builder("NET", "bus").group(AssetGroup::Hardware).build().unwrap())
        .unwrap();
    for (id, description, tt) in [
        ("TS-P", "spoofed control frames", ThreatType::Spoofing),
        ("TS-Q", "bus flooding", ThreatType::DenialOfService),
        ("TS-R", "tampered configuration", ThreatType::Tampering),
        ("TS-S", "replayed diagnostics", ThreatType::Repudiation),
        ("TS-T", "leaked session keys", ThreatType::InformationDisclosure),
    ] {
        library
            .add_threat_scenario(
                ThreatScenario::builder(id, description, tt).asset("NET").build().unwrap(),
            )
            .unwrap();
    }
    library
}

/// A statically-clean catalog whose *execution* record is seeded so
/// every graph rule (`SASE016`–`SASE024`) fires exactly once when
/// paired with [`trace_inputs`].
fn trace_catalog() -> UseCaseCatalog {
    let mut hara = Hara::new("seeded trace item");
    hara.add_function(ItemFunction::new("F1", "drive").unwrap()).unwrap();
    for (id, mode) in
        [("R1", FailureMode::No), ("R2", FailureMode::Unintended), ("R3", FailureMode::TooLate)]
    {
        hara.add_rating(
            HazardRating::builder(id, "F1", mode)
                .hazard("loss of control")
                .rate(Severity::S3, Exposure::E3, Controllability::C3)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    for (id, rating) in [("SG11", "R1"), ("SG12", "R2"), ("SG13", "R3")] {
        hara.add_safety_goal(
            SafetyGoal::builder(id, "goal")
                .covers(rating)
                .ftti(Ftti::from_millis(500))
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    let attacks = vec![
        // SG11's only attack, reproduced by evidence but never executed
        // — SASE016 (goal) + SASE024 (TS-P).
        attack("AD11", "SG11", "TS-P", ThreatType::Spoofing, AttackType::FakeMessages),
        // Executed (succeeded, undetected — SASE022).
        attack("AD12", "SG12", "TS-Q", ThreatType::DenialOfService, AttackType::Jamming),
        // Neither executed nor reproduced — SASE021; splits SG12 — SASE023.
        attack("AD13", "SG12", "TS-Q", ThreatType::DenialOfService, AttackType::Disable),
        // Executed with contradictory verdicts — SASE020.
        attack("AD14", "SG13", "TS-R", ThreatType::Tampering, AttackType::Manipulate),
    ];
    let justifications = vec![
        // SASE019: TS-S and TS-T supersede each other.
        Justification::new("TS-S", "replay handled by gateway filtering")
            .unwrap()
            .superseded_by("TS-T")
            .unwrap(),
        Justification::new("TS-T", "keys rotate per drive cycle")
            .unwrap()
            .superseded_by("TS-S")
            .unwrap(),
    ];
    UseCaseCatalog {
        name: "seeded-trace-defects".to_owned(),
        hara,
        scenarios: Vec::new(),
        attacks,
        justifications,
    }
}

/// The seeded dynamic inputs for [`trace_catalog`]: an untraceable
/// verdict (`SASE017`), orphan evidence (`SASE018`), a contradictory
/// pair on `AD14` (`SASE020`) and an undetected success on `AD12`
/// (`SASE022`).
fn trace_inputs() -> TraceInputs {
    let verdict =
        |attack_id: &str, label: &str, ok: bool, detected: bool, goals: &[&str]| VerdictRecord {
            attack_id: attack_id.to_owned(),
            label: label.to_owned(),
            attack_succeeded: ok,
            detected,
            violated_goals: goals.iter().map(|g| (*g).to_owned()).collect(),
        };
    TraceInputs {
        verdicts: vec![
            verdict("AD12", "flood", true, false, &["SG12"]),
            verdict("AD14", "defended", false, true, &[]),
            verdict("AD14", "defended", true, true, &["SG13"]),
            verdict("AD99", "ghost", false, false, &[]),
        ],
        evidence: vec![
            EvidenceRecord { source: "corpus".into(), id: "E1".into(), link: "AD11".into() },
            EvidenceRecord { source: "corpus".into(), id: "E2".into(), link: "AD-GONE".into() },
        ],
    }
}

fn fixture_documents() -> Vec<SourceDocument> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let source = std::fs::read_to_string(path).unwrap();
    vec![SourceDocument::new(FIXTURE.to_owned(), saseval::dsl::parse_document(&source).unwrap())]
}

fn fixture_scenarios() -> Vec<ScenarioDocument> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(SCENARIO_FIXTURE);
    let source = std::fs::read_to_string(path).unwrap();
    let file: ScenarioFile = serde_json::from_str(&source).unwrap();
    vec![ScenarioDocument::new(SCENARIO_FIXTURE.to_owned(), file)]
}

/// Lints the seeded catalog, the seeded DSL document, the seeded trace
/// graph and the seeded scenario file, returning one report per run, in
/// a fixed order.
fn seeded_reports() -> Vec<(String, LintReport)> {
    let library = seeded_library();
    let catalog = seeded_catalog();
    let documents = fixture_documents();
    let scenarios = fixture_scenarios();
    let obs = Obs::noop();
    let config = LintConfig::new();
    let graph_library = trace_library();
    let graph_catalog = trace_catalog();
    let graph_trace = trace_inputs();
    let graph_ctx =
        LintContext::for_catalog(&graph_library, &graph_catalog).with_trace(&graph_trace);
    vec![
        (
            catalog.name.clone(),
            run_lint(&LintContext::for_catalog(&library, &catalog), &config, &obs),
        ),
        (FIXTURE.to_owned(), run_lint(&LintContext::for_documents(&documents), &config, &obs)),
        (graph_catalog.name.clone(), run_lint(&graph_ctx, &config, &obs)),
        (
            SCENARIO_FIXTURE.to_owned(),
            run_lint(&LintContext::for_scenarios(&scenarios), &config, &obs),
        ),
    ]
}

fn rendered_text(runs: &[(String, LintReport)]) -> String {
    let mut out = String::new();
    for (label, report) in runs {
        out.push_str(&format!("== {label}\n"));
        out.push_str(&render_text(report));
    }
    out
}

fn compare_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
    assert_eq!(actual, expected, "output differs from golden file {name}; rerun with UPDATE_GOLDEN=1 after intentional changes");
}

#[test]
fn every_rule_fires_exactly_once_on_the_seeded_defects() {
    let runs = seeded_reports();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, report) in &runs {
        for diag in &report.diagnostics {
            *counts.entry(diag.code.as_str()).or_insert(0) += 1;
        }
    }
    for rule in registry() {
        assert_eq!(
            counts.get(rule.code()).copied().unwrap_or(0),
            1,
            "rule {} ({}) must fire exactly once; all counts: {counts:?}",
            rule.code(),
            rule.name(),
        );
    }
    assert_eq!(counts.len(), registry().len(), "no findings beyond the registry: {counts:?}");
}

#[test]
fn text_output_matches_golden_file() {
    compare_golden("seeded_defects.txt", &rendered_text(&seeded_reports()));
}

#[test]
fn json_output_matches_golden_file() {
    let runs = seeded_reports();
    let reports: Vec<&LintReport> = runs.iter().map(|(_, report)| report).collect();
    compare_golden("seeded_defects.json", &render_json(&reports));
}

#[test]
fn lint_output_is_deterministic_across_runs() {
    let first = seeded_reports();
    let second = seeded_reports();
    assert_eq!(rendered_text(&first), rendered_text(&second));
    let first_json = render_json(&first.iter().map(|(_, r)| r).collect::<Vec<_>>());
    let second_json = render_json(&second.iter().map(|(_, r)| r).collect::<Vec<_>>());
    assert_eq!(first_json, second_json);
}
