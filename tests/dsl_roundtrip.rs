//! DSL round-trip and catalog-encoding tests.

use proptest::prelude::*;

use saseval::core::catalog::{use_case_1, use_case_2};
use saseval::core::AttackDescription;
use saseval::dsl::ast::{AttackDecl, AttackSpans, Document, ExecArg, ExecSpec};
use saseval::dsl::{compile_document, parse_document, print_document};

/// Converts a validated attack description back into a DSL declaration —
/// the export direction of the DSL tooling.
fn to_decl(ad: &AttackDescription) -> AttackDecl {
    AttackDecl {
        id: ad.id().to_string(),
        description: ad.description().to_owned(),
        goals: ad.safety_goals().iter().map(|g| g.to_string()).collect(),
        interface: ad.interface().map(|i| i.to_string()),
        threat: ad.threat_scenario().to_string(),
        threat_type: ad.threat_type().to_string(),
        attack_type: ad.attack_type().to_string(),
        precondition: ad.precondition().to_owned(),
        measures: ad.expected_measures().to_owned(),
        success: ad.attack_success().to_owned(),
        fails: ad.attack_fails().to_owned(),
        comments: ad.impl_comments().to_owned(),
        attacker: ad.attacker().map(|a| a.to_string()),
        privacy: ad.is_privacy_relevant(),
        execute: None,
        spans: AttackSpans::default(),
    }
}

#[test]
fn both_catalogs_export_to_dsl_and_recompile() {
    for catalog in [use_case_1(), use_case_2()] {
        let document = Document { attacks: catalog.attacks.iter().map(to_decl).collect() };
        let source = print_document(&document);
        let reparsed = parse_document(&source).expect("printed DSL parses");
        assert_eq!(reparsed, document, "{}", catalog.name);
        let compiled = compile_document(&reparsed).expect("printed DSL compiles");
        assert_eq!(compiled.len(), catalog.attacks.len());
        for (recompiled, original) in compiled.iter().zip(&catalog.attacks) {
            assert_eq!(recompiled.description, *original, "{}", catalog.name);
        }
    }
}

fn text() -> impl Strategy<Value = String> {
    // Printable text including every character the printer must escape:
    // quotes and backslashes (in the [ -~] range) plus the control
    // characters newline, tab and carriage return.
    proptest::string::string_regex("[ -~\n\t\r]{0,40}").expect("regex")
}

fn ident() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9_.-]{0,12}").expect("regex")
}

fn exec_spec() -> impl Strategy<Value = Option<ExecSpec>> {
    proptest::option::of(
        (
            ident(),
            prop::collection::vec(
                (
                    ident(),
                    prop_oneof![
                        any::<u64>().prop_map(ExecArg::Int),
                        ident().prop_map(ExecArg::Word)
                    ],
                ),
                0..3,
            ),
        )
            .prop_map(|(name, args)| ExecSpec { name, args }),
    )
}

prop_compose! {
    fn attack_decl()(
        id in ident(),
        description in text(),
        goals in prop::collection::vec(ident(), 0..4),
        interface in proptest::option::of(ident()),
        threat in ident(),
        threat_type in text(),
        attack_type in text(),
        precondition in text(),
        measures in text(),
        success in text(),
        fails in text(),
        comments in text(),
        attacker in proptest::option::of(text()),
        privacy in any::<bool>(),
        execute in exec_spec(),
    ) -> AttackDecl {
        AttackDecl {
            id, description, goals, interface, threat, threat_type, attack_type,
            precondition, measures, success, fails, comments, attacker, privacy, execute,
            spans: AttackSpans::default(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on arbitrary well-formed documents,
    /// and printing the reparsed document is byte-identical to the first
    /// print (the pretty-printer is a fixed point of the round-trip).
    #[test]
    fn print_parse_round_trip(decls in prop::collection::vec(attack_decl(), 1..4)) {
        let document = Document { attacks: decls };
        let source = print_document(&document);
        let reparsed = parse_document(&source)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{source}")))?;
        prop_assert_eq!(&reparsed, &document);
        prop_assert_eq!(print_document(&reparsed), source);
    }
}

#[test]
fn escaped_strings_round_trip_byte_identically() {
    // The three characters the satellite names — `\n`, `\\`, `"` — plus
    // `\t` and `\r`, in every string-valued field at once.
    let nasty = "a \"quoted\" word, a back\\slash,\na second line,\ta tab,\ra return";
    let decl = AttackDecl {
        id: "AD-ESC".to_owned(),
        description: nasty.to_owned(),
        goals: vec!["SG01".to_owned()],
        interface: None,
        threat: "TS-1".to_owned(),
        threat_type: nasty.to_owned(),
        attack_type: nasty.to_owned(),
        precondition: nasty.to_owned(),
        measures: nasty.to_owned(),
        success: nasty.to_owned(),
        fails: nasty.to_owned(),
        comments: nasty.to_owned(),
        attacker: Some(nasty.to_owned()),
        privacy: false,
        execute: None,
        spans: AttackSpans::default(),
    };
    let document = Document { attacks: vec![decl] };
    let printed = print_document(&document);
    let reparsed = parse_document(&printed).expect("printed escapes parse");
    assert_eq!(reparsed, document);
    assert_eq!(print_document(&reparsed), printed, "pretty output must be a fixed point");
}
