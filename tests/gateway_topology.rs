//! Gateway topology integration: the AD09 filtering story on a realistic
//! three-segment vehicle network, end to end through the CAN substrate.

use bytes::Bytes;

use saseval::net::can::{CanBusConfig, CanFrame, CanId};
use saseval::net::gateway::{Gateway, RouteRule, RuleAction};
use saseval::types::SimTime;

const LOCK_CMD: u16 = 0x2A0;
const LOCK_STATUS: u16 = 0x4A0;

fn vehicle_topology() -> Gateway {
    let mut gw = Gateway::new();
    gw.add_segment("body", CanBusConfig::default())
        .add_segment("telematics", CanBusConfig::default())
        .add_segment("diag", CanBusConfig { bitrate_bps: 500_000, tx_queue_depth: 16 });
    // The vetted command path: telematics (where the BLE gateway app
    // lives) may send body-control commands.
    gw.add_rule(RouteRule::new("telematics", "body", 0x200..=0x2FF, RuleAction::Allow));
    // Status broadcasts flow outward.
    gw.add_rule(RouteRule::new("body", "telematics", 0x400..=0x4FF, RuleAction::Allow));
    gw.add_rule(RouteRule::new("body", "diag", 0x400..=0x4FF, RuleAction::Allow));
    // The diagnostic stub may read, never command (AD09's control).
    gw.add_rule(RouteRule::new("diag", "body", 0x000..=0x7FF, RuleAction::Deny));
    gw
}

fn frame(id: u16, payload: &'static [u8], sender: &str) -> CanFrame {
    CanFrame::new(CanId::new(id).unwrap(), Bytes::from_static(payload), sender).unwrap()
}

#[test]
fn legitimate_command_path_reaches_the_actuator() {
    let mut gw = vehicle_topology();
    let reached = gw.receive("telematics", &frame(LOCK_CMD, b"open", "ble-gw"), SimTime::ZERO);
    assert_eq!(reached, ["body"]);
    let deliveries = gw.advance_segment("body", SimTime::from_millis(10)).unwrap();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].frame.payload().as_ref(), b"open");
}

#[test]
fn ad09_stub_commands_blocked_status_reads_allowed() {
    let mut gw = vehicle_topology();
    // Attack: forged open command from the diagnostic stub.
    let reached = gw.receive("diag", &frame(LOCK_CMD, b"open", "stub"), SimTime::ZERO);
    assert!(reached.is_empty());
    assert!(gw.advance_segment("body", SimTime::from_millis(10)).unwrap().is_empty());
    assert_eq!(gw.stats().denied, 1, "drop is counted — detection evidence");
    // Legitimate status read-back still works for the tester.
    let reached = gw.receive("body", &frame(LOCK_STATUS, b"lckd", "bcm"), SimTime::ZERO);
    assert!(reached.contains(&"diag".to_owned()));
    let deliveries = gw.advance_segment("diag", SimTime::from_millis(10)).unwrap();
    assert_eq!(deliveries.len(), 1);
}

#[test]
fn stub_flood_cannot_cross_but_fills_the_deny_counter() {
    let mut gw = vehicle_topology();
    for i in 0..100 {
        gw.receive("diag", &frame(LOCK_CMD, b"open", "stub"), SimTime::from_millis(i));
    }
    assert_eq!(gw.stats().denied, 100);
    assert_eq!(gw.stats().forwarded, 0);
    assert!(gw.advance_segment("body", SimTime::from_secs(1)).unwrap().is_empty());
    // The body segment's own traffic is completely unaffected.
    gw.segment_mut("body")
        .unwrap()
        .submit(frame(LOCK_CMD, b"open", "bcm"), SimTime::from_secs(1))
        .unwrap();
    assert_eq!(gw.advance_segment("body", SimTime::from_secs(2)).unwrap().len(), 1);
}

#[test]
fn cross_segment_priority_preserved_after_forwarding() {
    let mut gw = vehicle_topology();
    // Two commands forwarded from telematics (distinct sending nodes,
    // since a node's own transmit queue is FIFO), plus local body
    // traffic: arbitration on the body segment orders by CAN ID.
    gw.receive("telematics", &frame(0x2F0, b"lo", "ble-gw"), SimTime::ZERO);
    gw.receive("telematics", &frame(0x210, b"hi", "tcu"), SimTime::ZERO);
    gw.segment_mut("body").unwrap().submit(frame(0x250, b"md", "bcm"), SimTime::ZERO).unwrap();
    let deliveries = gw.advance_segment("body", SimTime::from_millis(50)).unwrap();
    let ids: Vec<u16> = deliveries.iter().map(|d| d.frame.id().raw()).collect();
    assert_eq!(ids, [0x210, 0x250, 0x2F0]);
}
