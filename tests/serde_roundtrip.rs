//! Serde round trips for the shareable work products: the artifacts a
//! project exchanges between tools (threat libraries, HARAs, attack
//! descriptions, execution results) must survive JSON round trips with
//! all invariants intact.

use saseval::core::catalog::{use_case_1, use_case_2};
use saseval::core::AttackDescription;
use saseval::engine::builtin::ad20_cases;
use saseval::engine::campaign::run_campaign;
use saseval::engine::executor::ExecutionResult;
use saseval::hara::Hara;
use saseval::threat::builtin::automotive_library;
use saseval::threat::ThreatLibrary;

#[test]
fn threat_library_round_trip() {
    let library = automotive_library();
    let json = serde_json::to_string(&library).expect("serialize");
    let back: ThreatLibrary = serde_json::from_str(&json).expect("deserialize");
    back.validate().expect("invariants hold after round trip");
    assert_eq!(back.stats(), library.stats());
    // Spot-check a deep artifact.
    let ts = back.threat_scenario("TS-2.1.4").expect("threat");
    assert_eq!(ts.threat_type(), library.threat_scenario("TS-2.1.4").unwrap().threat_type());
}

#[test]
fn hara_round_trip_preserves_statistics_and_goals() {
    for catalog in [use_case_1(), use_case_2()] {
        let json = serde_json::to_string(&catalog.hara).expect("serialize");
        let back: Hara = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.distribution(), catalog.hara.distribution(), "{}", catalog.name);
        assert_eq!(back.rating_count(), catalog.hara.rating_count());
        assert_eq!(back.safety_goal_count(), catalog.hara.safety_goal_count());
        assert!(back.completeness().is_complete());
        for goal in back.safety_goals() {
            let original = catalog.hara.safety_goal(goal.id().as_str()).expect("goal");
            assert_eq!(back.goal_asil(goal), catalog.hara.goal_asil(original));
        }
    }
}

#[test]
fn attack_descriptions_round_trip() {
    for catalog in [use_case_1(), use_case_2()] {
        let json = serde_json::to_string(&catalog.attacks).expect("serialize");
        let back: Vec<AttackDescription> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, catalog.attacks, "{}", catalog.name);
    }
}

#[test]
fn execution_results_round_trip() {
    let report = run_campaign(&ad20_cases());
    let json = serde_json::to_string(&report.results).expect("serialize");
    let back: Vec<ExecutionResult> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), report.results.len());
    for (a, b) in back.iter().zip(&report.results) {
        assert_eq!(a.attack_id, b.attack_id);
        assert_eq!(a.attack_succeeded, b.attack_succeeded);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.violated_goals, b.violated_goals);
    }
}

#[test]
fn tampered_hara_ratings_still_classify_consistently() {
    // A HARA deserialized from external JSON re-derives its rating
    // classes from S/E/C — the class is never stored, so it cannot be
    // tampered independently of the assessment.
    let uc1 = use_case_1();
    let json = serde_json::to_string(&uc1.hara).expect("serialize");
    assert!(
        !json.contains("\"Asil\""),
        "rating classes are derived, not serialized: {}",
        &json[..200.min(json.len())]
    );
}
