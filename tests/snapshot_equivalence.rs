//! Snapshot-equivalence properties of the copy-on-write world forks
//! (the determinism contract behind warm-prefix fuzzing):
//!
//! 1. forking a world at time `T` and stepping the fork to the end is
//!    bit-identical — trace and outcome — to one uninterrupted
//!    from-scratch run of the same configuration;
//! 2. forks are independent: events injected into the parent after the
//!    fork never leak into the fork (and vice versa);
//! 3. the frozen snapshot itself never advances;
//! 4. fuzzing through the simulation oracle produces bit-identical
//!    reports whether inputs execute one by one, in batches, or across
//!    shards with batches.

use proptest::prelude::*;

use saseval::fuzz::fuzzer::Fuzzer;
use saseval::fuzz::model::keyless_command_model;
use saseval::fuzz::sim_target::SimOracle;
use saseval::sim::construction::{ConstructionConfig, ConstructionWorld};
use saseval::sim::keyless::{KeylessConfig, KeylessWorld};
use saseval::sim::ControlSelection;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::tara::AttackPath;
use saseval::types::{Ftti, SimTime};

fn paths() -> Vec<AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![
                TreeNode::leaf_on("replay recorded command", "BLE_PHONE"),
                TreeNode::leaf_on("forge command", "ECU_GW"),
            ],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

fn controls_for(selector: u8) -> ControlSelection {
    match selector % 3 {
        0 => ControlSelection::all(),
        1 => ControlSelection::none(),
        _ => ControlSelection { challenge_response: false, ..ControlSelection::all() },
    }
}

fn keyless_config(seed: u64, controls: u8, horizon_ms: u64) -> KeylessConfig {
    KeylessConfig {
        seed,
        controls: controls_for(controls),
        horizon: Ftti::from_millis(horizon_ms),
        ..Default::default()
    }
}

/// Builds the keyless world with its owner schedule — both runs of a
/// comparison must start from byte-identical worlds.
fn scheduled_keyless(config: &KeylessConfig, open_ms: u64, close_ms: u64) -> KeylessWorld {
    let mut world = KeylessWorld::new(config.clone());
    world.schedule_owner_open(SimTime::from_millis(open_ms));
    world.schedule_owner_close(SimTime::from_millis(close_ms));
    world
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

proptest! {
    // Every case steps several worlds to their horizon; keep samples low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Keyless: fork at `T`, step to the end — trace and outcome match a
    /// from-scratch run exactly, owner script (EventQueue) included, and
    /// neither the parent stepping on nor a sibling fork disturbs it.
    #[test]
    fn keyless_fork_matches_from_scratch_run(
        seed in any::<u64>(),
        controls in 0u8..3,
        fork_ms in 0u64..1_500,
        open_ms in 0u64..2_000,
        close_ms in 0u64..2_000,
    ) {
        let config = keyless_config(seed, controls, 2_000);

        let mut reference = scheduled_keyless(&config, open_ms, close_ms);
        while reference.step(&mut ()) {}
        let reference_trace = reference.trace().clone();
        let reference_outcome = json(&reference.into_outcome());

        let mut parent = scheduled_keyless(&config, open_ms, close_ms);
        parent.run_until(SimTime::from_millis(fork_ms), &mut ());
        let snapshot = parent.snapshot();
        let frozen_now = snapshot.get().now();

        let mut fork = snapshot.fork();
        // Divergence injected into the parent AFTER the fork must not
        // leak into the fork (deep Clone of the owner-script EventQueue).
        parent.schedule_owner_open(SimTime::from_millis(fork_ms + 10));
        while parent.step(&mut ()) {}
        while fork.step(&mut ()) {}

        prop_assert_eq!(fork.trace(), &reference_trace);
        prop_assert_eq!(json(&fork.into_outcome()), reference_outcome.as_str());

        // The frozen prefix never advanced, and a second fork replays
        // identically to the first.
        prop_assert_eq!(snapshot.get().now(), frozen_now);
        let mut sibling = snapshot.fork();
        while sibling.step(&mut ()) {}
        prop_assert_eq!(sibling.trace(), &reference_trace);
        prop_assert_eq!(json(&sibling.into_outcome()), reference_outcome);
    }

    /// Construction: fork at `T`, step to the end — trace, outcome and
    /// final kinematic state match a from-scratch run exactly (lossy V2X
    /// channel RNG included).
    #[test]
    fn construction_fork_matches_from_scratch_run(
        seed in any::<u64>(),
        controls in 0u8..3,
        speed in 20.0f64..35.0,
        fork_ms in 0u64..2_000,
    ) {
        let config = ConstructionConfig {
            seed,
            controls: controls_for(controls),
            initial_speed_mps: speed,
            horizon: Ftti::from_secs(3),
            ..Default::default()
        };

        let mut reference = ConstructionWorld::new(config.clone());
        while reference.step(&mut ()) {}
        let reference_trace = reference.trace().clone();
        let reference_position = reference.vehicle().position_m();
        let reference_outcome = json(&reference.into_outcome());

        let mut parent = ConstructionWorld::new(config);
        parent.run_until(SimTime::from_millis(fork_ms), &mut ());
        let mut fork = parent.snapshot().fork();
        while fork.step(&mut ()) {}

        prop_assert_eq!(fork.trace(), &reference_trace);
        prop_assert_eq!(fork.vehicle().position_m().to_bits(), reference_position.to_bits());
        prop_assert_eq!(json(&fork.into_outcome()), reference_outcome);
    }

    /// Fuzzing through the simulation oracle: sequential, batched, and
    /// sharded-batched executions all produce the identical report.
    #[test]
    fn sim_oracle_fuzzing_is_batch_invariant(
        seed in any::<u64>(),
        batch_size in 2usize..24,
        attack_ms in 0u64..200,
    ) {
        let config = KeylessConfig {
            horizon: Ftti::from_millis(300),
            controls: ControlSelection::none(),
            ..Default::default()
        };
        let oracle = SimOracle::keyless(config, SimTime::from_millis(attack_ms));
        let attack_paths = paths();

        let serial = Fuzzer::new(keyless_command_model(), seed)
            .run_target(&attack_paths, 30, &mut oracle.clone());
        let batched = Fuzzer::new(keyless_command_model(), seed)
            .with_batch_size(batch_size)
            .run_target(&attack_paths, 30, &mut oracle.clone());
        prop_assert_eq!(&serial, &batched);

        let sharded_batched = Fuzzer::new(keyless_command_model(), seed)
            .with_batch_size(batch_size)
            .run_parallel_targets(&attack_paths, 30, 1, |_| oracle.clone());
        prop_assert_eq!(&serial, &sharded_batched);
    }
}

/// Sharded + batched parallel runs stay deterministic for a fixed shard
/// count, and batching never changes the merged report at any shard
/// count.
#[test]
fn sharded_batched_fuzzing_is_deterministic_and_batch_invariant() {
    let config = KeylessConfig {
        horizon: Ftti::from_millis(300),
        controls: ControlSelection::none(),
        ..Default::default()
    };
    let oracle = SimOracle::keyless(config, SimTime::from_millis(50));
    let attack_paths = paths();
    for shards in [2usize, 3] {
        let run =
            |batch: usize| {
                Fuzzer::new(keyless_command_model(), 17)
                    .with_batch_size(batch)
                    .run_parallel_targets(&attack_paths, 48, shards, |_| oracle.clone())
            };
        let unbatched = run(1);
        assert_eq!(unbatched, run(1), "{shards} shards reproducible");
        assert_eq!(unbatched, run(8), "{shards} shards, batch 8");
    }
}
