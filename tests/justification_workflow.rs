//! The inductive-completeness escape hatch (paper §III): "If an attack is
//! not covered, the test engineer should consider either creating an
//! additional attack description or writing a justification on why the
//! threat is not applied for the given SUT."

use saseval::core::catalog::use_case_1;
use saseval::core::coverage::{inductive_coverage, ThreatCoverage};
use saseval::core::pipeline::run_pipeline;
use saseval::core::Justification;
use saseval::threat::builtin::automotive_library;

/// Use Case I without the two eavesdropping attacks (AD21/AD22): the
/// TS-V2X-EAVESDROP threat loses its coverage.
fn uc1_without_eavesdropping_attacks() -> saseval::core::catalog::UseCaseCatalog {
    let mut catalog = use_case_1();
    catalog.attacks.retain(|a| {
        let id = a.id().as_str();
        id != "AD21" && id != "AD22"
    });
    catalog
}

#[test]
fn dropping_attacks_breaks_inductive_coverage() {
    let catalog = uc1_without_eavesdropping_attacks();
    let library = automotive_library();
    let report =
        inductive_coverage(&library, &catalog.scenarios, &catalog.attacks, &catalog.justifications);
    assert!(!report.is_complete());
    let uncovered: Vec<&str> = report.uncovered().map(|t| t.as_str()).collect();
    assert_eq!(uncovered, ["TS-V2X-EAVESDROP"]);
    // The deductive direction also breaks: SG06 was only attacked by
    // AD21/AD22.
    let pipeline = run_pipeline(&catalog, &library).expect("pipeline validates");
    assert!(!pipeline.deductive.is_complete());
    assert_eq!(pipeline.deductive.uncovered[0].as_str(), "SG06");
}

#[test]
fn justification_restores_inductive_coverage() {
    let mut catalog = uc1_without_eavesdropping_attacks();
    catalog.justifications.push(
        Justification::new(
            "TS-V2X-EAVESDROP",
            "Eavesdropping is privacy-only for this SUT variant; it is validated by the \
             operator's data-protection assessment, not by safety-driven security testing",
        )
        .expect("justification"),
    );
    let library = automotive_library();
    let report =
        inductive_coverage(&library, &catalog.scenarios, &catalog.attacks, &catalog.justifications);
    assert!(report.is_complete(), "justification closes the inductive gap");
    assert_eq!(report.coverage_ratio(), 1.0);
    match &report.threats["TS-V2X-EAVESDROP"] {
        ThreatCoverage::Justified(rationale) => {
            assert!(rationale.contains("privacy-only"));
        }
        other => panic!("expected Justified, got {other:?}"),
    }
    // Note: a justification does NOT repair the deductive direction —
    // SG06 still lacks an attack, and that is correct: the engineer must
    // decide per direction.
    let pipeline = run_pipeline(&catalog, &library).expect("pipeline validates");
    assert!(pipeline.inductive.is_complete());
    assert!(!pipeline.deductive.is_complete());
}

#[test]
fn justification_for_attacked_threat_is_harmless() {
    // A redundant justification (threat already attacked) must not change
    // the classification: attacked wins.
    let mut catalog = use_case_1();
    catalog
        .justifications
        .push(Justification::new("TS-2.1.4", "redundant").expect("justification"));
    let library = automotive_library();
    let report =
        inductive_coverage(&library, &catalog.scenarios, &catalog.attacks, &catalog.justifications);
    assert!(matches!(&report.threats["TS-2.1.4"], ThreatCoverage::Attacked(_)));
    assert!(report.is_complete());
}
