//! Property: the parallel campaign runner is observationally equivalent
//! to the serial one — same verdicts in the same order — for arbitrary
//! suites and any worker count.

use proptest::prelude::*;

use saseval::engine::attacks::KeyGuessStrategy;
use saseval::engine::campaign::{run_campaign, run_campaign_parallel};
use saseval::engine::executor::{AttackKind, TestCase};
use saseval::sim::config::ControlSelection;

fn attack_kind() -> impl Strategy<Value = AttackKind> {
    prop_oneof![
        Just(AttackKind::V2xJam),
        (10u8..120).prop_map(|limit| AttackKind::V2xFakeLimit { limit }),
        Just(AttackKind::BleSpoofClose),
        Just(AttackKind::CanStubInject),
        (1u32..50)
            .prop_map(|budget| AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget }),
    ]
}

fn controls() -> impl Strategy<Value = ControlSelection> {
    prop_oneof![Just(ControlSelection::all()), Just(ControlSelection::none())]
}

fn test_case() -> impl Strategy<Value = TestCase> {
    (attack_kind(), controls(), 0u64..1_000).prop_map(|(kind, controls, seed)| TestCase {
        attack_id: "PROP".to_owned(),
        label: "prop".to_owned(),
        kind,
        controls,
        seed,
    })
}

proptest! {
    // Each case executes two whole campaigns; keep the sample count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_campaign_equals_serial(
        suite in prop::collection::vec(test_case(), 1..4),
        threads in 1usize..=8,
    ) {
        let serial = run_campaign(&suite);
        let parallel = run_campaign_parallel(&suite, threads);
        prop_assert_eq!(serial.total(), parallel.total());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            prop_assert_eq!(&s.attack_id, &p.attack_id);
            prop_assert_eq!(s.attack_succeeded, p.attack_succeeded);
            prop_assert_eq!(s.detected, p.detected);
            prop_assert_eq!(&s.violated_goals, &p.violated_goals);
        }
    }
}
