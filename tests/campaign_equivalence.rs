//! Property: the parallel campaign runner is observationally equivalent
//! to the serial one — same verdicts in the same order — for arbitrary
//! suites and any worker count; and a scenario-compiled demonstrator
//! world is observationally equivalent to the hand-built one under an
//! identical fuzzing campaign.

use proptest::prelude::*;

use saseval::engine::attacks::KeyGuessStrategy;
use saseval::engine::campaign::{run_campaign, run_campaign_parallel};
use saseval::engine::executor::{AttackKind, TestCase};
use saseval::fuzz::fuzzer::Fuzzer;
use saseval::fuzz::model::{keyless_command_model, v2x_warning_model};
use saseval::fuzz::scenario::ScenarioSpec;
use saseval::fuzz::SimOracle;
use saseval::sim::config::ControlSelection;
use saseval::sim::construction::ConstructionConfig;
use saseval::sim::keyless::KeylessConfig;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::tara::AttackPath;

fn attack_kind() -> impl Strategy<Value = AttackKind> {
    prop_oneof![
        Just(AttackKind::V2xJam),
        (10u8..120).prop_map(|limit| AttackKind::V2xFakeLimit { limit }),
        Just(AttackKind::BleSpoofClose),
        Just(AttackKind::CanStubInject),
        (1u32..50)
            .prop_map(|budget| AttackKind::KeySpoof { strategy: KeyGuessStrategy::Random, budget }),
    ]
}

fn controls() -> impl Strategy<Value = ControlSelection> {
    prop_oneof![Just(ControlSelection::all()), Just(ControlSelection::none())]
}

fn test_case() -> impl Strategy<Value = TestCase> {
    (attack_kind(), controls(), 0u64..1_000).prop_map(|(kind, controls, seed)| TestCase {
        attack_id: "PROP".to_owned(),
        label: "prop".to_owned(),
        kind,
        controls,
        seed,
    })
}

fn leaf_paths(goal: &str, step: &str, interface: &str) -> Vec<AttackPath> {
    AttackTree::new(goal, TreeNode::leaf_on(step, interface)).expect("tree").paths().expect("paths")
}

/// Both paper demonstrators, compiled from their [`ScenarioSpec`]s,
/// behave exactly like the hand-built worlds: the same seeded fuzzing
/// campaign over each pair produces equal reports — counts, coverage
/// and the full crash list — i.e. the worlds are trace-equivalent.
#[test]
fn scenario_compiled_demonstrators_equal_hand_built_worlds() {
    const ITERATIONS: usize = 200;
    const SEED: u64 = 17;

    // Use case 2: keyless entry.
    let spec = ScenarioSpec::keyless_demonstrator();
    let paths = leaf_paths("Open the vehicle", "send forged open command", "BLE_PHONE");
    let mut compiled =
        SimOracle::keyless(spec.keyless_config().expect("compiles"), spec.attack_at());
    let mut hand_built = SimOracle::keyless(
        KeylessConfig { horizon: spec.horizon(), ..KeylessConfig::default() },
        spec.attack_at(),
    );
    let from_spec =
        Fuzzer::new(keyless_command_model(), SEED).run_target(&paths, ITERATIONS, &mut compiled);
    let from_world =
        Fuzzer::new(keyless_command_model(), SEED).run_target(&paths, ITERATIONS, &mut hand_built);
    assert_eq!(from_spec, from_world, "keyless demonstrator worlds are trace-equivalent");

    // Use case 1: construction warnings.
    let spec = ScenarioSpec::construction_demonstrator();
    let paths = leaf_paths("Disrupt warnings", "spoof signage", "OBU_RSU");
    let mut compiled =
        SimOracle::construction(spec.construction_config().expect("compiles"), spec.attack_at());
    let mut hand_built = SimOracle::construction(
        ConstructionConfig { horizon: spec.horizon(), ..ConstructionConfig::default() },
        spec.attack_at(),
    );
    let from_spec =
        Fuzzer::new(v2x_warning_model(), SEED).run_target(&paths, ITERATIONS, &mut compiled);
    let from_world =
        Fuzzer::new(v2x_warning_model(), SEED).run_target(&paths, ITERATIONS, &mut hand_built);
    assert_eq!(from_spec, from_world, "construction demonstrator worlds are trace-equivalent");
}

proptest! {
    // Each case executes two whole campaigns; keep the sample count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_campaign_equals_serial(
        suite in prop::collection::vec(test_case(), 1..4),
        threads in 1usize..=8,
    ) {
        let serial = run_campaign(&suite);
        let parallel = run_campaign_parallel(&suite, threads);
        prop_assert_eq!(serial.total(), parallel.total());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            prop_assert_eq!(&s.attack_id, &p.attack_id);
            prop_assert_eq!(s.attack_succeeded, p.attack_succeeded);
            prop_assert_eq!(s.detected, p.detected);
            prop_assert_eq!(&s.violated_goals, &p.violated_goals);
        }
    }
}
