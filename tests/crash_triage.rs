//! Properties of the crash-triage subsystem: the ddmin minimizer
//! (crash-preserving, non-lengthening, 1-minimal, deterministic,
//! budget-safe) and the serial fuzz→minimize→persist→replay loop.

use proptest::prelude::*;

use saseval::fuzz::corpus::{Corpus, Replayer};
use saseval::fuzz::fuzzer::{Fuzzer, TargetResponse, TriageConfig};
use saseval::fuzz::minimize::{minimize, MinimizeConfig};
use saseval::fuzz::model::v2x_warning_model;
use saseval::obs::Obs;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::tara::AttackPath;

/// The crash predicate minimization preserves in these tests: the input
/// contains the contiguous needle pair `[0xAB, 0xCD]`. Its unique
/// 1-minimal crashing input is the bare pair.
fn has_needle(bytes: &[u8]) -> bool {
    bytes.windows(2).any(|w| w == [0xAB, 0xCD])
}

/// A crashing input: `noise` with the needle pair spliced in at `at`.
fn crashing_input(noise: &[u8], at: usize) -> Vec<u8> {
    let at = at % (noise.len() + 1);
    let mut input = noise[..at].to_vec();
    input.extend([0xAB, 0xCD]);
    input.extend(&noise[at..]);
    input
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimized_input_still_crashes_and_never_grows(
        noise in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<usize>(),
    ) {
        let input = crashing_input(&noise, at);
        let result = minimize(&input, has_needle, &MinimizeConfig::default(), &Obs::noop());
        prop_assert!(has_needle(&result.output), "minimization lost the crash");
        prop_assert!(result.output.len() <= input.len());
        prop_assert_eq!(result.original_len, input.len());
        prop_assert!((0.0..=1.0).contains(&result.reduction_ratio()));
    }

    #[test]
    fn minimized_input_is_one_minimal(
        noise in proptest::collection::vec(any::<u8>(), 0..48),
        at in any::<usize>(),
    ) {
        let input = crashing_input(&noise, at);
        let result = minimize(&input, has_needle, &MinimizeConfig::default(), &Obs::noop());
        prop_assert!(result.one_minimal);
        prop_assert!(!result.budget_exhausted);
        // The needle predicate has exactly one 1-minimal crasher.
        prop_assert_eq!(&result.output, &vec![0xAB, 0xCD]);
        // 1-minimality, checked directly: removing any single byte of
        // the output un-crashes it.
        for skip in 0..result.output.len() {
            let mut shorter = result.output.clone();
            shorter.remove(skip);
            prop_assert!(!has_needle(&shorter), "removing byte {skip} still crashes");
        }
    }

    #[test]
    fn minimization_is_deterministic(
        noise in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<usize>(),
        budget in 8usize..512,
    ) {
        let input = crashing_input(&noise, at);
        let config = MinimizeConfig { max_steps: budget };
        let first = minimize(&input, has_needle, &config, &Obs::noop());
        let second = minimize(&input, has_needle, &config, &Obs::noop());
        prop_assert_eq!(first.output, second.output);
        prop_assert_eq!(first.steps, second.steps);
        prop_assert_eq!(first.one_minimal, second.one_minimal);
        prop_assert_eq!(first.budget_exhausted, second.budget_exhausted);
    }

    /// Exhausting the step budget yields a *partial* result: still
    /// crashing, never longer — and flagged, never silently 1-minimal.
    #[test]
    fn budget_exhaustion_is_safe_and_flagged(
        noise in proptest::collection::vec(any::<u8>(), 16..64),
        at in any::<usize>(),
        budget in 1usize..8,
    ) {
        let input = crashing_input(&noise, at);
        let config = MinimizeConfig { max_steps: budget };
        let result = minimize(&input, has_needle, &config, &Obs::noop());
        prop_assert!(has_needle(&result.output));
        prop_assert!(result.output.len() <= input.len());
        prop_assert!(result.steps <= budget);
        if result.budget_exhausted {
            prop_assert!(!result.one_minimal);
        }
    }
}

fn paths() -> Vec<AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![
                TreeNode::leaf_on("replay recorded command", "BLE_PHONE"),
                TreeNode::leaf_on("forge command", "ECU_GW"),
            ],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

/// Crashes on any input containing the poison byte `0xEE` — a crash
/// that genuinely shrinks (its 1-minimal form is the single byte), so
/// the test exercises the minimized-entry path.
fn crashy_target(input: &[u8]) -> TargetResponse {
    if input.contains(&0xEE) {
        TargetResponse::Crash
    } else if input.first().is_some_and(|t| (1..=3).contains(t)) {
        TargetResponse::Accepted
    } else {
        TargetResponse::Rejected
    }
}

/// End to end: a serial run with triage persists every deduped crash
/// (plus its minimized form) into the corpus, and the corpus replays
/// clean against the oracle that produced it.
#[test]
fn serial_triage_persists_and_replays_clean() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);
    let corpus_dir = std::env::temp_dir().join(format!(
        "saseval-crash-triage-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let attack_paths = paths();
    let model = v2x_warning_model();
    let report = Fuzzer::new(model.clone(), 11).with_triage(TriageConfig::new(&corpus_dir)).run(
        &attack_paths,
        3_000,
        crashy_target,
    );
    assert!(!report.crashes.is_empty(), "the seeded bugs must fire");

    let corpus = Corpus::open(&corpus_dir);
    let entries = corpus.entries(&model.name).expect("entries");
    // Every entry still crashes, and its sidecar says so.
    for entry in &entries {
        assert_eq!(entry.meta.expected, TargetResponse::Crash, "{}", entry.meta.hash);
        assert_eq!(crashy_target(&entry.bytes), TargetResponse::Crash);
        assert_eq!(entry.meta.seed, 11);
    }
    // The corpus is exactly the deduplicated union of the crashes as
    // found plus their minimized forms.
    use saseval::fuzz::corpus::content_hash;
    let mut expected: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut shrank = 0usize;
    for finding in &report.crashes {
        expected.insert(content_hash(&finding.input));
        let result = minimize(
            &finding.input,
            |b| crashy_target(b) == TargetResponse::Crash,
            &MinimizeConfig::default(),
            &Obs::noop(),
        );
        if result.output != finding.input {
            shrank += 1;
        }
        expected.insert(content_hash(&result.output));
    }
    let stored: std::collections::BTreeSet<String> =
        entries.iter().map(|e| e.meta.hash.clone()).collect();
    assert_eq!(stored, expected);
    assert!(shrank > 0, "at least one crash must genuinely shrink");
    // minimized_from links never dangle.
    for entry in entries.iter().filter(|e| e.meta.minimized_from.is_some()) {
        let from = entry.meta.minimized_from.as_ref().unwrap();
        assert!(entries.iter().any(|e| &e.meta.hash == from), "minimized_from {from} dangles");
    }
    // The corpus replays clean against the oracle that recorded it.
    let replay = Replayer::new()
        .replay_model(&corpus, &model.name, &mut |b| crashy_target(b))
        .expect("replay");
    assert_eq!(replay.total, entries.len());
    assert!(replay.is_clean(), "{:?}", replay.regressions);

    std::fs::remove_dir_all(&corpus_dir).expect("cleanup");
}
