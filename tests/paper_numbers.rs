//! Integration check of every quantitative claim the paper makes
//! (Tables I–VII and the §IV statistics) against our reproduction.
//!
//! EXPERIMENTS.md cites this test file as the paper-vs-measured record.

use saseval::core::catalog::{use_case_1, use_case_2};
use saseval::core::pipeline::run_pipeline;
use saseval::core::report::TraceMatrix;
use saseval::fuzz::scenario::{ScenarioFile, ScenarioSpec};
use saseval::sim::construction::ConstructionConfig;
use saseval::sim::keyless::KeylessConfig;
use saseval::threat::builtin::{
    automotive_library, table_i_rows, table_ii_rows, table_iii_rows, table_v_rows,
};
use saseval::types::{attack_types_for, AsilLevel, AttackType, RatingClass, ThreatType};

#[test]
fn table_i_scenarios() {
    // 3 scenarios, 5 sub-scenarios, exactly as printed.
    let rows = table_i_rows();
    assert_eq!(rows.len(), 5);
    let scenarios: std::collections::BTreeSet<_> = rows.iter().map(|r| r.scenario).collect();
    assert_eq!(scenarios.len(), 3);
    assert!(rows[0].sub_scenario.contains("hijacked automated"));
    assert!(rows[4].sub_scenario.contains("cloud-based service"));
}

#[test]
fn table_ii_assets() {
    let rows = table_ii_rows();
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0].asset, "Gateway");
    assert_eq!(rows[2].groups.len(), 2, "ECU is Hardware/Software");
}

#[test]
fn table_iii_threat_classification() {
    let rows = table_iii_rows();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].threat_type, ThreatType::Spoofing);
    assert_eq!(rows[1].threat_type, ThreatType::ElevationOfPrivilege);
    assert_eq!(rows[2].threat_type, ThreatType::Tampering);
}

#[test]
fn table_iv_stride_to_attack_types() {
    // Row sizes as printed (EoP row gains Table V's "Gain unauthorized
    // access", see DESIGN.md).
    assert_eq!(attack_types_for(ThreatType::Spoofing).len(), 2);
    assert_eq!(attack_types_for(ThreatType::Tampering).len(), 7);
    assert_eq!(attack_types_for(ThreatType::Repudiation).len(), 3);
    assert_eq!(attack_types_for(ThreatType::InformationDisclosure).len(), 6);
    assert_eq!(attack_types_for(ThreatType::DenialOfService).len(), 3);
    assert_eq!(attack_types_for(ThreatType::ElevationOfPrivilege).len(), 3);
}

#[test]
fn table_v_full_mapping_chain() {
    let lib = automotive_library();
    let rows = table_v_rows();
    assert_eq!(rows.len(), 4);
    for row in rows {
        let ts = lib.threat_scenario(row.library_id).expect("library entry");
        assert_eq!(ts.threat_type(), row.threat_type);
        assert!(ts.attack_types().contains(&row.attack_type));
    }
}

#[test]
fn use_case_1_hara_statistics() {
    // §IV-A: 3 functions, 29 ratings: 5 N/A, 5 No ASIL, 7 A, 3 B, 7 C, 2 D.
    let uc1 = use_case_1();
    assert_eq!(uc1.hara.function_count(), 3);
    let d = uc1.hara.distribution();
    assert_eq!(
        (
            d.total(),
            d.count(RatingClass::NotApplicable),
            d.count(RatingClass::Qm),
            d.count(RatingClass::Asil(AsilLevel::A)),
            d.count(RatingClass::Asil(AsilLevel::B)),
            d.count(RatingClass::Asil(AsilLevel::C)),
            d.count(RatingClass::Asil(AsilLevel::D)),
        ),
        (29, 5, 5, 7, 3, 7, 2)
    );
}

#[test]
fn use_case_1_safety_goals() {
    // §IV-A: SG01(C) SG02(C) SG03(D) SG04(C) SG05(B) SG06(A).
    let uc1 = use_case_1();
    let expected = [
        ("SG01", AsilLevel::C),
        ("SG02", AsilLevel::C),
        ("SG03", AsilLevel::D),
        ("SG04", AsilLevel::C),
        ("SG05", AsilLevel::B),
        ("SG06", AsilLevel::A),
    ];
    assert_eq!(uc1.hara.safety_goal_count(), expected.len());
    for (id, asil) in expected {
        let goal = uc1.hara.safety_goal(id).expect(id);
        assert_eq!(uc1.hara.goal_asil(goal), Some(asil), "{id}");
    }
}

#[test]
fn use_case_1_yields_23_attack_descriptions() {
    let uc1 = use_case_1();
    assert_eq!(uc1.attacks.len(), 23);
    let report = run_pipeline(&uc1, &automotive_library()).expect("pipeline");
    assert!(report.is_complete(), "RQ1 deductive + inductive completeness");
}

#[test]
fn use_case_1_rat01_matches_paper_excerpt() {
    // §III-B: Rat01, failure mode NO, E=3 S=3 C=3 → ASIL C, SG01.
    let uc1 = use_case_1();
    let rat01 = uc1.hara.rating("Rat01").expect("Rat01");
    let (s, e, c) = rat01.assessment().expect("assessed");
    assert_eq!((s.value(), e.value(), c.value()), (3, 3, 3));
    assert_eq!(rat01.rating_class(), RatingClass::Asil(AsilLevel::C));
    let sg01 = uc1.hara.safety_goal("SG01").expect("SG01");
    assert!(sg01.covered_ratings().iter().any(|r| r.as_str() == "Rat01"));
}

#[test]
fn table_vi_ad20_fields() {
    let uc1 = use_case_1();
    let ad20 = uc1.attacks.iter().find(|a| a.id().as_str() == "AD20").expect("AD20");
    let goals: Vec<&str> = ad20.safety_goals().iter().map(|g| g.as_str()).collect();
    assert_eq!(goals, ["SG01", "SG02", "SG03"]);
    assert_eq!(ad20.interface().unwrap().as_str(), "OBU_RSU");
    assert_eq!(ad20.threat_scenario().as_str(), "TS-2.1.4");
    assert_eq!(ad20.threat_type(), ThreatType::DenialOfService);
    assert_eq!(ad20.attack_type(), AttackType::Disable);
    assert_eq!(ad20.precondition(), "Vehicle is approaching the construction side");
    assert_eq!(ad20.expected_measures(), "Message counter for broken messages");
    assert_eq!(ad20.attack_success(), "Shutdown of service");
}

#[test]
fn use_case_2_hara_statistics() {
    // §IV-B: 2 functions, 20 ratings: 7 N/A, 5 No ASIL, 2 A, 4 B, 1 C, 1 D.
    let uc2 = use_case_2();
    assert_eq!(uc2.hara.function_count(), 2);
    let d = uc2.hara.distribution();
    assert_eq!(
        (
            d.total(),
            d.count(RatingClass::NotApplicable),
            d.count(RatingClass::Qm),
            d.count(RatingClass::Asil(AsilLevel::A)),
            d.count(RatingClass::Asil(AsilLevel::B)),
            d.count(RatingClass::Asil(AsilLevel::C)),
            d.count(RatingClass::Asil(AsilLevel::D)),
        ),
        (20, 7, 5, 2, 4, 1, 1)
    );
}

#[test]
fn use_case_2_safety_goals() {
    // §IV-B: SG01(D) SG02(B) SG03(A) SG04(A).
    let uc2 = use_case_2();
    let expected = [
        ("SG01", AsilLevel::D),
        ("SG02", AsilLevel::B),
        ("SG03", AsilLevel::A),
        ("SG04", AsilLevel::A),
    ];
    assert_eq!(uc2.hara.safety_goal_count(), expected.len());
    for (id, asil) in expected {
        let goal = uc2.hara.safety_goal(id).expect(id);
        assert_eq!(uc2.hara.goal_asil(goal), Some(asil), "{id}");
    }
}

#[test]
fn use_case_2_yields_27_plus_2_attacks() {
    // §IV-B: "27 possible attacks with safety critical impact and
    // additionally two attacks, which deal with privacy issues".
    let uc2 = use_case_2();
    assert_eq!(uc2.safety_attacks().count(), 27);
    assert_eq!(uc2.privacy_attacks().count(), 2);
    let report = run_pipeline(&uc2, &automotive_library()).expect("pipeline");
    assert!(report.is_complete());
}

#[test]
fn table_vii_ad08_fields() {
    let uc2 = use_case_2();
    let ad08 = uc2.attacks.iter().find(|a| a.id().as_str() == "AD08").expect("AD08");
    assert_eq!(ad08.safety_goals()[0].as_str(), "SG01");
    assert_eq!(ad08.interface().unwrap().as_str(), "ECU_GW");
    assert_eq!(ad08.threat_scenario().as_str(), "TS-3.1.4");
    assert_eq!(ad08.threat_type(), ThreatType::Spoofing);
    assert_eq!(ad08.attack_type(), AttackType::Spoofing);
    assert_eq!(
        ad08.precondition(),
        "Vehicle is closed. Attacker has an authenticated communication link"
    );
    assert_eq!(ad08.attack_success(), "Open the vehicle");
    assert_eq!(ad08.attack_fails(), "Opening is rejected");
}

#[test]
fn rq2_higher_asil_gets_more_attacks() {
    // §III-B: "A higher ASIL rating may be used to justify a greater
    // testing effort."
    let uc2 = use_case_2();
    let matrix = TraceMatrix::from_catalog(&uc2);
    let per_goal = matrix.attacks_per_goal();
    // SG01 is ASIL D and receives the most attack descriptions.
    let sg01 = per_goal["SG01"];
    for goal in ["SG02", "SG03", "SG04"] {
        assert!(sg01 > per_goal[goal], "SG01 ({sg01}) vs {goal} ({})", per_goal[goal]);
    }
}

/// §IV: both paper demonstrators are expressible as scenario specs —
/// the committed `.scn.json` use-case fixtures lead with exactly the
/// demonstrator parameters, and those specs compile to the same world
/// configurations the demonstrators hand-build (only the horizon is
/// derived from the scenario's attacker placement and FTTI variant).
#[test]
fn paper_demonstrators_are_expressible_as_scenarios() {
    let load = |path: &str| -> ScenarioFile {
        let full = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        serde_json::from_str(&std::fs::read_to_string(full).unwrap()).unwrap()
    };

    // Use case 2 (§IV-B): the keyless-entry demonstrator.
    let keyless = load("tests/fixtures/scenarios/keyless_use_case.scn.json");
    assert_eq!(keyless.scenarios[0].spec, ScenarioSpec::keyless_demonstrator());
    keyless.space.validate().expect("declared space is well-formed");
    for scenario in &keyless.scenarios {
        keyless.space.validate_spec(&scenario.spec).expect("fixture scenario in range");
    }
    let spec = keyless.scenarios[0].spec;
    let compiled = spec.keyless_config().expect("keyless spec compiles");
    let hand_built = KeylessConfig { horizon: spec.horizon(), ..KeylessConfig::default() };
    assert_eq!(
        serde_json::to_string(&compiled).unwrap(),
        serde_json::to_string(&hand_built).unwrap(),
        "compiled keyless demonstrator is the hand-built default world"
    );

    // Use case 1 (§IV-A): the construction-warning demonstrator.
    let construction = load("tests/fixtures/scenarios/construction_sweep.scn.json");
    assert_eq!(construction.scenarios[0].spec, ScenarioSpec::construction_demonstrator());
    construction.space.validate().expect("declared space is well-formed");
    for scenario in &construction.scenarios {
        construction.space.validate_spec(&scenario.spec).expect("fixture scenario in range");
    }
    let spec = construction.scenarios[0].spec;
    let compiled = spec.construction_config().expect("construction spec compiles");
    let hand_built =
        ConstructionConfig { horizon: spec.horizon(), ..ConstructionConfig::default() };
    assert_eq!(
        serde_json::to_string(&compiled).unwrap(),
        serde_json::to_string(&hand_built).unwrap(),
        "compiled construction demonstrator is the hand-built default world"
    );
}

#[test]
fn named_prose_attacks_exist() {
    // §IV-A: "Repudiation - Replay ... warnings are replayed from other
    // locations ... violation of SG05".
    let uc1 = use_case_1();
    assert!(uc1.attacks.iter().any(|a| {
        a.attack_type() == AttackType::Replay
            && a.safety_goals().iter().any(|g| g.as_str() == "SG05")
    }));
    // §IV-B: "Flooding of the CAN bus, by forwarded Bluetooth request,
    // reducing availability of the function (SG03)".
    let uc2 = use_case_2();
    assert!(uc2.attacks.iter().any(|a| {
        a.threat_scenario().as_str() == "TS-BLE-FLOOD"
            && a.safety_goals().iter().any(|g| g.as_str() == "SG03")
    }));
    // §IV-B: "Replaying of the opening command by an attacker".
    assert!(uc2
        .attacks
        .iter()
        .any(|a| a.attack_type() == AttackType::Replay && a.description().contains("opening")));
}
