//! Properties of the sharded parallel fuzzing engine:
//!
//! 1. `run_parallel` with one shard is byte-identical to the serial
//!    `Fuzzer::run` for the same seed;
//! 2. for any fixed shard count the merged report is identical across
//!    repeated executions (thread scheduling never leaks into results);
//! 3. merged coverage percentages equal a serial recount over the union
//!    of all shard input streams (computed here by running the same
//!    configuration at one shard per sub-range — the recount path the
//!    unit suite cross-checks against regenerated mutator streams).

use proptest::prelude::*;

use saseval::fuzz::coverage::CoverageMap;
use saseval::fuzz::fuzzer::{Fuzzer, TargetResponse, TriageConfig};
use saseval::fuzz::model::{keyless_command_model, v2x_warning_model, ProtocolModel};
use saseval::fuzz::mutate::Mutator;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::tara::AttackPath;

fn paths() -> Vec<AttackPath> {
    AttackTree::new(
        "open the vehicle",
        TreeNode::or(
            "ways",
            vec![
                TreeNode::leaf_on("replay recorded command", "BLE_PHONE"),
                TreeNode::leaf_on("forge command", "ECU_GW"),
                TreeNode::leaf_on("inject on CAN", "CAN_GW"),
            ],
        ),
    )
    .expect("tree")
    .paths()
    .expect("paths")
}

/// A target with a seeded boundary crash, so determinism is exercised on
/// the findings path too, not only on counts.
fn crashy_target(input: &[u8]) -> TargetResponse {
    match input {
        [] => TargetResponse::Crash,
        [2, 0, ..] => TargetResponse::Crash,
        [t, ..] if (1..=3).contains(t) => TargetResponse::Accepted,
        _ => TargetResponse::Rejected,
    }
}

fn model_for(selector: bool) -> ProtocolModel {
    if selector {
        keyless_command_model()
    } else {
        v2x_warning_model()
    }
}

proptest! {
    // Each case runs several full fuzzing campaigns; keep samples low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn one_shard_equals_serial(
        seed in 0u64..10_000,
        iterations in 0usize..2_000,
        keyless in any::<bool>(),
    ) {
        let attack_paths = paths();
        let mut serial = Fuzzer::new(model_for(keyless), seed);
        let serial_report = serial.run(&attack_paths, iterations, crashy_target);
        let parallel = Fuzzer::new(model_for(keyless), seed);
        let parallel_report =
            parallel.run_parallel(&attack_paths, iterations, 1, |_| crashy_target);
        prop_assert_eq!(serial_report, parallel_report);
    }

    #[test]
    fn fixed_shard_count_is_reproducible(
        seed in 0u64..10_000,
        iterations in 0usize..2_000,
        shards in 1usize..=8,
        keyless in any::<bool>(),
    ) {
        let attack_paths = paths();
        let run = || {
            Fuzzer::new(model_for(keyless), seed)
                .run_parallel(&attack_paths, iterations, shards, |_| crashy_target)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn merged_counts_and_coverage_are_consistent(
        seed in 0u64..10_000,
        iterations in 1usize..2_000,
        shards in 1usize..=8,
    ) {
        let attack_paths = paths();
        let report = Fuzzer::new(v2x_warning_model(), seed)
            .run_parallel(&attack_paths, iterations, shards, |_| crashy_target);
        prop_assert_eq!(report.iterations, iterations);
        // Accepted + rejected + unique crashes never exceeds the input
        // count (duplicate crash inputs fall into no bucket).
        prop_assert!(report.accepted + report.rejected + report.crashes.len() <= iterations);
        prop_assert!((0.0..=100.0).contains(&report.field_coverage_percent()));
        prop_assert!((0.0..=100.0).contains(&report.path_coverage_percent()));
        // Findings arrive in canonical order, deduplicated by input.
        let mut seen = std::collections::HashSet::new();
        for pair in report.crashes.windows(2) {
            prop_assert!(pair[0].iteration <= pair[1].iteration);
        }
        for finding in &report.crashes {
            prop_assert!(seen.insert(finding.input.clone()));
        }
    }

    /// Attaching triage minimizes/persists crashes strictly after the
    /// merge, so the returned report — coverage, counts, and crash
    /// ordering — is byte-identical with and without it.
    #[test]
    fn triage_does_not_perturb_the_merged_report(
        seed in 0u64..10_000,
        iterations in 1usize..1_500,
        shards in 1usize..=4,
        keyless in any::<bool>(),
    ) {
        let attack_paths = paths();
        let plain = Fuzzer::new(model_for(keyless), seed)
            .run_parallel(&attack_paths, iterations, shards, |_| crashy_target);
        let corpus_dir = unique_corpus_dir();
        let triaged = Fuzzer::new(model_for(keyless), seed)
            .with_triage(TriageConfig::new(&corpus_dir))
            .run_parallel(&attack_paths, iterations, shards, |_| crashy_target);
        let _ = std::fs::remove_dir_all(&corpus_dir);
        prop_assert_eq!(plain, triaged);
    }

    /// Shard-map union is a join: `CoverageMap::merge` is commutative and
    /// idempotent, so merge order (and re-merging a shard) can never
    /// change the merged report.
    #[test]
    fn coverage_merge_is_commutative_and_idempotent(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        inputs in 1usize..200,
        keyless in any::<bool>(),
    ) {
        let model = model_for(keyless);
        let total_paths = paths().len();
        let build = |seed: u64| {
            let mut mutator = Mutator::new(model.clone(), seed);
            let mut map = CoverageMap::new(&model, total_paths);
            for i in 0..inputs {
                let input = mutator.generate();
                map.record(i % total_paths, &input);
            }
            map
        };
        let (a, b) = (build(seed_a), build(seed_b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
        // Merging is monotone in the exercised-cell count.
        prop_assert!(ab.cells() >= a.cells().max(b.cells()));
    }
}

/// A per-case unique corpus directory (proptest cases run in one
/// process; the counter keeps them from colliding).
fn unique_corpus_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("saseval-triage-determinism-{}-{unique}", std::process::id()))
}

/// Exhaustive small-case check (not proptest-sampled): every shard count
/// from 1 to 12 over a fixed workload yields the serial coverage
/// percentages, because every global iteration is fuzzed exactly once and
/// the serial stream is shard 0's stream.
#[test]
fn all_small_shard_counts_cover_the_full_iteration_space() {
    let attack_paths = paths();
    let iterations = 600;
    for shards in 1..=12usize {
        let report = Fuzzer::new(v2x_warning_model(), 3).run_parallel(
            &attack_paths,
            iterations,
            shards,
            |_| crashy_target,
        );
        assert_eq!(report.iterations, iterations, "{shards} shards");
        assert_eq!(
            report.path_coverage_percent(),
            100.0,
            "{shards} shards: all paths round-robined"
        );
        assert!(report.field_coverage_percent() >= 75.0, "{shards} shards");
    }
}
