//! TARA ↔ HARA ↔ fuzzing integration: the §II-B workflow end to end.

use saseval::controls::mac::MacKey;
use saseval::controls::{ControlStack, Envelope};
use saseval::core::catalog::use_case_1;
use saseval::fuzz::fuzzer::{Fuzzer, TargetResponse};
use saseval::fuzz::model::v2x_warning_model;
use saseval::tara::tree::{AttackTree, TreeNode};
use saseval::tara::{
    cross_check, risk_level, AttackFeasibility, CrossCheckOutcome, DamageScenario,
    FeasibilityFactors, ImpactCategory, ImpactLevel,
};
use saseval::types::SimTime;

fn damage_scenarios() -> Vec<DamageScenario> {
    vec![
        // Aligns with Use Case I's Rat01 hazard.
        DamageScenario::builder("DS-CRASH", "Manipulated warnings cause a crash into road works")
            .impact(ImpactCategory::Safety, ImpactLevel::Severe)
            .impact(ImpactCategory::Operational, ImpactLevel::Major)
            .asset("V2X_COMM")
            .build()
            .unwrap(),
        // Cybersecurity-only: not a fault-induced hazard.
        DamageScenario::builder(
            "DS-RANSOM",
            "Ransomware renders the infotainment backend unusable until payment",
        )
        .impact(ImpactCategory::Safety, ImpactLevel::Moderate)
        .impact(ImpactCategory::Financial, ImpactLevel::Major)
        .build()
        .unwrap(),
        // Privacy-only: excluded from the safety cross-check.
        DamageScenario::builder("DS-PROFILE", "Movement profiles of the vehicle are built")
            .impact(ImpactCategory::Privacy, ImpactLevel::Major)
            .build()
            .unwrap(),
    ]
}

#[test]
fn tara_hara_cross_check_classifies_paper_style() {
    // §II-B: damage scenarios either align with hazardous events
    // (refine via HARA) or are cybersecurity-only.
    let uc1 = use_case_1();
    let report = cross_check(&damage_scenarios(), &uc1.hara);
    let (comparable, cyber_only, not_safety) = report.counts();
    assert_eq!((comparable, cyber_only, not_safety), (1, 1, 1));

    let crash = &report.matches[0];
    assert_eq!(crash.outcome, CrossCheckOutcome::Comparable);
    assert!(
        crash.matched_hazards.iter().any(|r| r.as_str() == "Rat01"),
        "aligned with the paper's Rat01 excerpt: {crash:?}"
    );
}

#[test]
fn risk_assessment_prioritizes_easy_high_impact_attacks() {
    // Replay with an off-the-shelf radio: high feasibility.
    let replay = FeasibilityFactors::new(0, 1, 0, 1, 1);
    // Multi-expert bespoke relay setup: low feasibility.
    let relay = FeasibilityFactors::new(3, 4, 3, 2, 3);
    assert_eq!(replay.feasibility(), AttackFeasibility::High);
    assert_eq!(relay.feasibility(), AttackFeasibility::Low);

    let severe_easy = risk_level(ImpactLevel::Severe, replay.feasibility());
    let severe_hard = risk_level(ImpactLevel::Severe, relay.feasibility());
    assert!(severe_easy > severe_hard);
    assert_eq!(severe_easy.value(), 5);
    assert!(severe_hard.needs_treatment());
}

fn uc1_attack_tree() -> AttackTree {
    AttackTree::new(
        "Prevent the take-over at the construction site",
        TreeNode::or(
            "disruption strategies",
            vec![
                TreeNode::leaf_on("jam the V2X channel", "OBU_RSU"),
                TreeNode::and(
                    "flood the OBU",
                    vec![
                        TreeNode::leaf_on("obtain credentials", "OBU_RSU"),
                        TreeNode::leaf_on("send extra messages at high frequency", "OBU_RSU"),
                    ],
                ),
                TreeNode::and(
                    "suppress warnings",
                    vec![
                        TreeNode::leaf_on("intercept RSU frames", "OBU_RSU"),
                        TreeNode::leaf_on("forward corrupted copies", "OBU_RSU"),
                    ],
                ),
            ],
        ),
    )
    .unwrap()
}

#[test]
fn attack_tree_paths_drive_fuzzer_with_full_path_coverage() {
    // §II-B testing type 2: TARA attack paths define the fuzzed
    // interfaces; coverage is measured in percent.
    let tree = uc1_attack_tree();
    let paths = tree.paths().unwrap();
    assert_eq!(paths.len(), 3);
    assert_eq!(tree.interfaces().len(), 1, "all paths act on OBU_RSU");

    // Target: the OBU admission stack over the V2X warning payload,
    // with the same signage-plausibility predicate the construction
    // world deploys. Isolation is disabled: a fuzzer hammers one sender
    // by design.
    let key = MacKey::new(0xA11CE);
    let mut stack = ControlStack::new("OBU-fuzz");
    stack.set_isolation_threshold(u32::MAX);
    stack.push(saseval::controls::controls::PlausibilityCheck::new(
        "signage-plausibility",
        |env, _| match env.payload() {
            [2, limit, ..] if !(5..=130).contains(limit) => {
                Err(format!("speed limit {limit} outside [5, 130]"))
            }
            _ => Ok(()),
        },
    ));
    let mut fuzzer = Fuzzer::new(v2x_warning_model(), 99);
    let report = fuzzer.run(&paths, 5_000, |input| {
        let envelope = Envelope::new("fuzz", SimTime::ZERO, input.to_vec());
        // Plausibility check applies to the first byte = limit semantics
        // of the simplified model; rejection is the expected response.
        if stack.admit(&envelope, SimTime::ZERO).is_accepted() {
            TargetResponse::Accepted
        } else {
            TargetResponse::Rejected
        }
    });
    let _ = key;
    assert_eq!(report.path_coverage_percent(), 100.0);
    assert!(report.field_coverage_percent() >= 75.0);
    assert!(report.crashes.is_empty());
    assert!(report.accepted > 0 && report.rejected > 0);
}

#[test]
fn fuzzer_finds_seeded_decoder_bug_from_attack_paths() {
    // A deliberately buggy OBU decoder: panics (modelled as Crash) when a
    // signage frame carries limit zero — the classic missed boundary.
    let tree = uc1_attack_tree();
    let paths = tree.paths().unwrap();
    let mut fuzzer = Fuzzer::new(v2x_warning_model(), 1234);
    let report = fuzzer.run(&paths, 5_000, |input| match input {
        [2, 0] => TargetResponse::Crash,
        [t, _] if (1..=3).contains(t) => TargetResponse::Accepted,
        _ => TargetResponse::Rejected,
    });
    assert!(!report.crashes.is_empty(), "seeded bug found");
    let finding = &report.crashes[0];
    assert_eq!(finding.input, [2, 0]);
    assert!(finding.path_goal.contains("take-over"));
}

#[test]
fn path_limit_guards_combinatorial_trees() {
    // An AND of 5 ORs with 8 children each would yield 32 768 paths;
    // enumeration must stop at the bound instead of exploding.
    let ors: Vec<TreeNode> = (0..5)
        .map(|i| {
            TreeNode::or(
                format!("stage-{i}"),
                (0..8).map(|j| TreeNode::leaf(format!("step-{i}-{j}"))).collect(),
            )
        })
        .collect();
    let tree = AttackTree::new("combinatorial", TreeNode::and("all stages", ors)).unwrap();
    assert!(tree.paths().is_err(), "default limit (10k) exceeded");
    assert_eq!(tree.paths_bounded(40_000).unwrap().len(), 32_768);
}
